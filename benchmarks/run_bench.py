#!/usr/bin/env python
"""The perf-trajectory bench harness.

Runs the paper's parameterised workload families
(:mod:`repro.workloads.scaling` plus the Figure 1 file protocol) at
several scaling sizes and writes a schema-stable ``BENCH_*.json`` so
every subsequent PR can be compared against this one's baseline.

Per run it records, via the :mod:`repro.obs` tracer:

* per-stage wall-clock seconds — ``derive`` (state/marking space),
  ``assemble`` (generator build), ``solve`` (steady state);
* state and transition counts (from the metrics registry);
* peak RSS (``resource.getrusage``, kilobytes on Linux).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py                 # full sweep
    PYTHONPATH=src python benchmarks/run_bench.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --label PR3     # BENCH_PR3.json
    PYTHONPATH=src python benchmarks/run_bench.py --quick \
        --baseline BENCH_PR2.json                 # self-compare, exit 1 on regression

The schema (``repro-bench/1``) is part of the repo's public surface:
``benchmarks/run_bench.py --quick`` runs in CI and the golden keys are
asserted by ``tests/obs/test_bench_harness.py``.  With ``--baseline``
the run is compared against an earlier snapshot through
:mod:`repro.obs.regress` and the exit status reflects the verdict.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from contextlib import ExitStack
from pathlib import Path

# Allow running straight from a checkout without installing.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.exists() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
# Batch workers resolve the ``run_bench:bench_call`` task target by
# importing this file as a module, so its directory must be on sys.path
# in every process (fork inherits this; spawn re-propagates sys.path).
_HERE = str(Path(__file__).resolve().parent)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

import numpy
import scipy

from repro.fluid.crossval import client_server_family, message_bus_model
from repro.obs import observe
from repro.utils.sysinfo import peak_rss_kib
from repro.pepa.ctmcgen import ctmc_from_statespace
from repro.pepa.parser import parse_model
from repro.pepa.statespace import derive
from repro.pepanets.measures import ctmc_of_net
from repro.ctmc.steady import steady_state
from repro.scenarios import corpus_net
from repro.workloads import (
    client_server_model,
    courier_ring_net,
    roaming_fleet_net,
    tandem_queue_model,
)

SCHEMA = "repro-bench/1"

FILE_PROTOCOL_TEMPLATE = """
r_o = 2.0; r_r = 10.0; r_w = 4.0; r_c = 1.0;
File = (openread, r_o).InStream + (openwrite, r_o).OutStream;
InStream = (read, r_r).InStream + (close, r_c).File;
OutStream = (write, r_w).OutStream + (close, r_c).File;
FileReader = (openread, T).Reading + (openwrite, T).Writing;
Reading = (read, T).Reading + (close, T).FileReader;
Writing = (write, T).Writing + (close, T).FileReader;
{system}
"""


def file_protocol_model(n_readers: int):
    """The quickstart file protocol scaled to ``n_readers`` independent
    reader components competing for one file."""
    readers = " || ".join(["FileReader"] * n_readers)
    system = f"File <openread, openwrite, read, write, close> ({readers})"
    return parse_model(FILE_PROTOCOL_TEMPLATE.format(system=system))


def fluid_client_server_model(replicas: int):
    """Two-replica client/server template for the fluid rows.

    The NVF dimension depends only on the local-state count, so the
    template is built once at the smallest size and ``run_one`` applies
    the ``replicas`` override at solve time — exactly the O(1)-in-N
    property the paired bench sizes gate.
    """
    return client_server_family(2)


def fluid_message_bus_model(replicas: int):
    """Two-replica message-bus template (linear flows, exact limit)."""
    return message_bus_model(2)


#: workload name -> (kind, builder, {label: size_kwargs}).  ``quick``
#: sizes are the first entry of each dict; the full sweep runs all.
WORKLOADS = {
    "file_protocol": (
        "pepa",
        file_protocol_model,
        [{"n_readers": 1}, {"n_readers": 2}, {"n_readers": 3}],
    ),
    "client_server": (
        "pepa",
        client_server_model,
        [{"n_clients": 3}, {"n_clients": 5}, {"n_clients": 7}],
    ),
    "tandem_queue": (
        "pepa",
        tandem_queue_model,
        [{"stages": 2, "capacity": 3}, {"stages": 3, "capacity": 3},
         {"stages": 3, "capacity": 5}],
    ),
    "courier_ring": (
        "net",
        courier_ring_net,
        [{"n_places": 3, "n_couriers": 2}, {"n_places": 4, "n_couriers": 2},
         {"n_places": 5, "n_couriers": 3}],
    ),
    "roaming_fleet": (
        "net",
        roaming_fleet_net,
        [{"n_sessions": 2, "n_transmitters": 3},
         {"n_sessions": 3, "n_transmitters": 3},
         {"n_sessions": 3, "n_transmitters": 4}],
    ),
    # Matrix-free variants: same models, assembled as a compositional
    # Kronecker descriptor instead of a materialised CSR matrix, so the
    # ``assemble`` stage and the ``generator_bytes`` column track the
    # matrix-free path release over release.
    "client_server_descriptor": (
        "pepa-descriptor",
        client_server_model,
        [{"n_clients": 3}, {"n_clients": 5}, {"n_clients": 7}],
    ),
    "tandem_queue_descriptor": (
        "pepa-descriptor",
        tandem_queue_model,
        [{"stages": 2, "capacity": 3}, {"stages": 3, "capacity": 3},
         {"stages": 3, "capacity": 5}],
    ),
    # Exploration throughput (states/sec) of the repro.core.explore
    # kernel on the exploding scaling model — derive only, no solve, so
    # the ``derive`` stage time gates kernel regressions directly.
    "explore_throughput": (
        "explore",
        client_server_model,
        [{"n_clients": 7}, {"n_clients": 8}, {"n_clients": 9}],
    ),
    # Mean-field (fluid) route: NVF compile + ODE steady solve.  The
    # replica count N only rescales the initial vector, so the paired
    # sizes must cost the same — the regression gate holds the fluid
    # promise (solve time O(1) in N) release over release.
    "fluid_client_server": (
        "fluid",
        fluid_client_server_model,
        [{"replicas": 1_000}, {"replicas": 1_000_000}],
    ),
    "fluid_message_bus": (
        "fluid",
        fluid_message_bus_model,
        [{"replicas": 1_000}, {"replicas": 1_000_000}],
    ),
    # Generated-scenario corpus (repro.scenarios): seeds picked for the
    # largest marking spaces in the first two hundred, so the bench
    # covers machine-drawn topologies none of the curated families hit.
    "corpus": (
        "net",
        corpus_net,
        [{"seed": 148}, {"seed": 116}, {"seed": 142}],
    ),
}

#: span name -> bench stage name
STAGE_SPANS = {
    "pepa.statespace": "derive",
    "pepanet.markingspace": "derive",
    "ctmc.assemble": "assemble",
    "ctmc.assemble.descriptor": "assemble",
    "ctmc.solve": "solve",
    "ctmc.solve.fallback": "solve",
    "fluid.compile": "compile",
    "fluid.solve": "solve",
}


def run_one(workload: str, kind: str, builder, size: dict, solver: str, *,
            generator: str = "csr") -> dict:
    """One benchmark run: build, derive, assemble, solve, all traced.

    ``kind == "explore"`` measures pure state-space exploration
    throughput: derive only, and the solver identity is pinned to
    ``"none"`` so the run matches across sweeps regardless of
    ``--solver``.  ``kind == "fluid"`` compiles the numerical vector
    form and solves the fluid steady state at ``size["replicas"]``
    (stages ``compile`` + ``solve``; the solver identity records the
    fluid method that converged).  ``kind == "pepa-descriptor"`` is the PEPA pipeline
    assembled through the matrix-free Kronecker backend (``generator``
    may also force the representation directly).  Chain-building runs
    report the generator representation and its stored size
    (``generator`` / ``generator_bytes``) so regressions in generator
    memory are as visible as regressions in time.
    """
    if kind == "pepa-descriptor":
        generator = "descriptor"
    model = builder(**size)
    chain = None
    t0 = time.perf_counter()
    with observe() as (tracer, metrics):
        if kind == "explore":
            space = derive(model)
        elif kind == "fluid":
            from repro.fluid.nvf import nvf_of_model
            from repro.fluid.ode import steady_fluid

            nvf, _shape, n_replicas = nvf_of_model(
                model, replicas=size.get("replicas"))
            _x, fluid_diagnostics = steady_fluid(nvf, n_replicas)
        elif kind in ("pepa", "pepa-descriptor"):
            space = derive(model)
            chain = ctmc_from_statespace(
                space, generator=generator, environment=model.environment
            )
        else:
            space, chain = ctmc_of_net(model)
        if chain is not None:
            generator_bytes = int(chain.generator.stored_bytes)
            generator_used = (
                "descriptor" if not chain.materialized else "csr"
            )
            steady_state(chain, method=solver, reducible="bscc")
    total = time.perf_counter() - t0
    if kind == "explore":
        solver = "none"
    elif kind == "fluid":
        solver = fluid_diagnostics.method or "none"

    stages: dict[str, float] = {}
    for root in tracer.roots:
        for span in root.iter_spans():
            stage = STAGE_SPANS.get(span.name)
            if stage is not None:
                stages[stage] = stages.get(stage, 0.0) + span.duration
    # Counts come from the returned space, not the exploration counters:
    # a derivation-cache hit skips exploration (no counter ticks) but
    # still yields the full space.  Fluid rows report the NVF dimension
    # and flow count — the quantities the solve cost actually scales in.
    if kind == "fluid":
        n_states, n_transitions = int(nvf.dimension), int(nvf.n_flows)
    else:
        n_states, n_transitions = int(space.size), int(len(space.arcs))
    record = {
        "workload": workload,
        "kind": kind,
        "size": size,
        "solver": solver,
        "n_states": n_states,
        "n_transitions": n_transitions,
        "stages": {name: round(seconds, 6) for name, seconds in sorted(stages.items())},
        "total_s": round(total, 6),
        "peak_rss_kb": peak_rss_kib(),
    }
    if chain is not None:
        record["generator"] = generator_used
        record["generator_bytes"] = generator_bytes
    return record


def bench_call(workload: str, size: dict, solver: str) -> dict:
    """Worker-side entry point for ``--jobs``: one bench run by name.

    Referenced as the batch-task target ``run_bench:bench_call``, so it
    takes only JSON-able arguments and resolves the builder itself.
    """
    kind, builder, _sizes = WORKLOADS[workload]
    return run_one(workload, kind, builder, size, solver)


def _chosen_runs(quick: bool, sizes_per_workload: int | None):
    """The (workload, kind, size) sweep in its canonical order."""
    n_sizes = 2 if quick else (sizes_per_workload or None)
    for workload, (kind, builder, sizes) in WORKLOADS.items():
        for size in sizes[:n_sizes] if n_sizes else sizes:
            yield workload, kind, builder, size


def _progress_line(record: dict) -> str:
    line = (f"    {record['n_states']} states in {record['total_s']:.3f}s "
            f"{record['stages']}")
    if record["kind"] == "explore" and record["stages"].get("derive"):
        line += (f" ({record['n_states'] / record['stages']['derive']:,.0f}"
                 " states/s)")
    return line


def run_suite(*, quick: bool, solver: str, label: str = "local",
              sizes_per_workload: int | None = None, progress=print,
              jobs: int = 1, cache_dir: str | None = None,
              cache_max_bytes: int | None = None) -> dict:
    """Run the whole sweep and return the JSON-ready document.

    ``jobs > 1`` fans the runs out across worker processes via the
    batch engine; ``cache_dir`` (any jobs count) reuses previously
    derived state spaces through the content-addressed cache, bounded
    by ``cache_max_bytes`` when given.  Both leave the sweep order —
    and hence the document's ``runs`` order — unchanged.  The document
    records the run's ``fault_counters`` (supervised retries,
    quarantines, cache evictions/corruption) — all zero in a healthy
    sweep, so the regression gate surfaces accidental retries as a
    perf signal.
    """
    sweep = list(_chosen_runs(quick, sizes_per_workload))
    runs = []
    fault_counters = {"retries": 0, "quarantined": 0,
                      "cache_evictions": 0, "cache_corrupt": 0}
    if jobs > 1 or cache_dir:
        from repro.batch import BatchTask, run_batch

        tasks = [
            BatchTask(
                id=f"{i}-{workload}", kind="call",
                payload={"target": "run_bench:bench_call",
                         "kwargs": {"workload": workload, "size": size,
                                    "solver": solver}},
            )
            for i, (workload, kind, builder, size) in enumerate(sweep)
        ]
        report = run_batch(tasks, jobs=jobs, cache_dir=cache_dir,
                           cache_max_bytes=cache_max_bytes)
        for result, (workload, kind, builder, size) in zip(report.results, sweep):
            size_label = ", ".join(f"{k}={v}" for k, v in size.items())
            progress(f"  {workload} ({size_label}) ...")
            if not result.ok:
                raise RuntimeError(
                    f"bench task {result.task_id} failed: {result.error}")
            progress(_progress_line(result.measures))
            runs.append(result.measures)
        totals = report.cache_totals()
        fault_counters["retries"] = report.retries
        fault_counters["quarantined"] = len(report.quarantined)
        fault_counters["cache_evictions"] = totals.get("evictions", 0)
        fault_counters["cache_corrupt"] = totals.get("corrupt", 0)
        if totals:
            progress(f"  cache: {totals.get('hits', 0)} hits, "
                     f"{totals.get('misses', 0)} misses, "
                     f"{totals.get('evictions', 0)} evicted")
    else:
        for workload, kind, builder, size in sweep:
            size_label = ", ".join(f"{k}={v}" for k, v in size.items())
            progress(f"  {workload} ({size_label}) ...")
            record = run_one(workload, kind, builder, size, solver)
            progress(_progress_line(record))
            runs.append(record)
    return {
        "schema": SCHEMA,
        "label": label,
        "created_unix": int(time.time()),
        "quick": quick,
        "solver": solver,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "scipy": scipy.__version__,
        },
        "fault_counters": fault_counters,
        "runs": runs,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="2 sizes per workload (the CI smoke sweep)")
    parser.add_argument("--solver", default="direct",
                        help="steady-state method for every solve (default: direct)")
    parser.add_argument("--label", default="local",
                        help="snapshot label recorded in the document and used "
                             "for the default output name BENCH_<label>.json")
    parser.add_argument("-o", "--output", type=Path,
                        help="where to write the JSON document "
                             "(default: BENCH_<label>.json in the repo root)")
    parser.add_argument("--baseline", type=Path, metavar="FILE",
                        help="compare this run against an earlier repro-bench/1 "
                             "snapshot and exit 1 if any stage regressed")
    parser.add_argument("--threshold", type=float, default=None,
                        help="relative slow-down factor for --baseline "
                             "(default: repro.obs.regress.DEFAULT_THRESHOLD)")
    parser.add_argument("--min-seconds", type=float, default=None,
                        help="absolute-seconds floor for --baseline "
                             "(default: repro.obs.regress.DEFAULT_MIN_SECONDS)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for the sweep (default: 1, "
                             "runs inline)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed derivation cache; repeated "
                             "sweeps skip state-space exploration entirely")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        metavar="BYTES",
                        help="LRU-evict cache entries beyond this total size")
    parser.add_argument("--ledger", type=Path, default=None, metavar="DIR",
                        help="also record this sweep as a repro-run/1 document "
                             "in the run ledger at DIR ('choreographer runs "
                             "trend' then gates the time series)")
    parser.add_argument("--profile", action="store_true",
                        help="sample the sweep with the wall-clock profiler")
    parser.add_argument("--profile-interval", type=float, default=None,
                        metavar="SECONDS",
                        help="profiler sampling period (default: 0.005)")
    parser.add_argument("--profile-out", type=Path, default=None, metavar="FILE",
                        help="write collapsed-stack samples here")
    args = parser.parse_args(argv)
    created_unix = time.time()

    output = args.output
    if output is None:
        output = (Path(__file__).resolve().parent.parent
                  / f"BENCH_{args.label}.json")

    print(f"bench sweep ({'quick' if args.quick else 'full'}, "
          f"solver={args.solver}, label={args.label}, jobs={args.jobs})")
    profiler = None
    with ExitStack() as stack:
        if args.profile or args.profile_interval or args.profile_out:
            from repro.obs import (
                ProfileConfig, SamplingProfiler, SpanResourceProbe,
                use_profile_config, use_profiler, use_resource_probe,
            )
            from repro.obs.profile import DEFAULT_INTERVAL

            config = ProfileConfig(
                interval=args.profile_interval or DEFAULT_INTERVAL)
            profiler = SamplingProfiler(config.interval)
            stack.enter_context(use_profiler(profiler))
            stack.enter_context(use_resource_probe(SpanResourceProbe()))
            stack.enter_context(use_profile_config(config))
            stack.enter_context(profiler)
        document = run_suite(quick=args.quick, solver=args.solver,
                             label=args.label, jobs=args.jobs,
                             cache_dir=args.cache_dir,
                             cache_max_bytes=args.cache_max_bytes)
    output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {len(document['runs'])} runs to {output}")
    if profiler is not None and args.profile_out:
        args.profile_out.write_text(profiler.collapsed())
        print(f"collapsed profile written to {args.profile_out}")

    if args.ledger:
        from repro.obs import RunLedger, build_run_document

        run_document = build_run_document(
            command="bench",
            created_unix=created_unix,
            label=args.label,
            config={"quick": args.quick, "solver": args.solver,
                    "jobs": args.jobs},
            bench=document,
            profile=profiler.to_dict() if profiler is not None else None,
            extra={"output": str(output)},
        )
        run_id = RunLedger(args.ledger).record(run_document)
        print(f"run {run_id} recorded in ledger {args.ledger}")

    if args.baseline:
        from repro.obs.regress import (
            DEFAULT_MIN_SECONDS, DEFAULT_THRESHOLD, compare_benchmarks,
            load_bench, markdown_report,
        )

        comparison = compare_benchmarks(
            load_bench(args.baseline), document,
            threshold=args.threshold or DEFAULT_THRESHOLD,
            min_seconds=(DEFAULT_MIN_SECONDS if args.min_seconds is None
                         else args.min_seconds),
        )
        print()
        print(markdown_report(comparison))
        return 0 if comparison.ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
