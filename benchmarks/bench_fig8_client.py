"""E7 — Figure 8: the client state diagram.

Reproduces: statechart → PEPA extraction, composition with the server,
and the client's steady-state probabilities — the measure the paper
reflects onto state diagrams.  Asserts the qualitative shape: with the
uncached Tomcat server, the client spends most of its time waiting.
"""

import math

from conftest import record

from repro.workloads import build_client_statechart, build_server_statechart


def test_fig8_client_probabilities(benchmark, platform):
    outcome = benchmark(
        lambda: platform.analyse_state_diagrams(
            [build_client_statechart(), build_server_statechart(cached=False)]
        )
    )
    p_generate = outcome.probability_of("Client", "GenerateRequest")
    p_wait = outcome.probability_of("Client", "WaitForResponse")
    p_process = outcome.probability_of("Client", "ProcessResponse")
    assert math.isclose(p_generate + p_wait + p_process, 1.0, rel_tol=1e-9)
    # the uncached server makes waiting dominate
    assert p_wait > p_generate and p_wait > p_process
    assert p_wait > 0.5
    # think time is half the processing time (rates 2.0 vs 1.0)
    assert math.isclose(p_process / p_generate, 2.0, rel_tol=1e-6)
    record(benchmark, p_wait=p_wait, p_generate=p_generate, p_process=p_process)


def test_fig8_states_annotated(benchmark, platform):
    from repro.uml.model import TAG_PROBABILITY

    client = build_client_statechart()
    server = build_server_statechart()
    benchmark(lambda: platform.analyse_state_diagrams([client, server]))
    values = [float(s.tag(TAG_PROBABILITY)) for s in client.simple_states()]
    assert math.isclose(sum(values), 1.0, rel_tol=1e-4)
