"""A1a — solver ablation.

"Exact solution is an advantage, susceptibility to state-space
explosion a disadvantage" — this bench quantifies the trade-off on a
scaled client/server family: every steady-state method of the Workbench
menu is timed on the same chain and checked against the direct solver.
"""

import numpy as np
import pytest

from conftest import record

from repro.ctmc.steady import steady_state
from repro.pepa.ctmcgen import ctmc_of_model
from repro.workloads import client_server_model

#: 8 clients -> 512 client configurations x 2 server phases.
N_CLIENTS = 8

# Stationary per-state sweeps in Python are orders slower; keep them on
# a smaller instance so the bench suite stays laptop-scale.
SMALL_N_CLIENTS = 5

_chain_cache: dict[int, object] = {}


def chain_for(n: int):
    if n not in _chain_cache:
        _, chain = ctmc_of_model(client_server_model(n))
        _chain_cache[n] = chain
    return _chain_cache[n]


@pytest.mark.parametrize("method", ["direct", "gmres", "bicgstab", "power"])
def test_solver_on_large_instance(benchmark, method):
    chain = chain_for(N_CLIENTS)
    pi = benchmark(lambda: steady_state(chain, method, tol=1e-10))
    reference = steady_state(chain, "direct")
    assert np.allclose(pi, reference, atol=1e-6)
    record(benchmark, states=chain.n_states)


@pytest.mark.parametrize("method", ["gauss_seidel", "jacobi"])
def test_stationary_iterations_small_instance(benchmark, method):
    chain = chain_for(SMALL_N_CLIENTS)
    pi = benchmark(lambda: steady_state(chain, method, tol=1e-10))
    reference = steady_state(chain, "direct")
    assert np.allclose(pi, reference, atol=1e-6)
    record(benchmark, states=chain.n_states)


def test_derivation_dominates_small_models(benchmark):
    """For paper-scale models the state-space derivation, not the linear
    solve, is the cost centre — worth knowing before optimising."""
    def derive_and_solve():
        space, chain = ctmc_of_model(client_server_model(SMALL_N_CLIENTS))
        return steady_state(chain)

    pi = benchmark(derive_and_solve)
    assert abs(pi.sum() - 1.0) < 1e-9
