"""A1b — state-space growth: the explosion the paper warns about.

Measures marking-space size and derivation time as the courier-ring
net grows in places and in tokens, and as the client/server model grows
in clients.  Asserts the growth *shape*: exponential in clients,
combinatorial in tokens, linear in places for a single token.
"""

import pytest

from conftest import record

from repro.pepa.statespace import derive
from repro.pepanets.semantics import explore_net
from repro.workloads import client_server_model, courier_ring_net, roaming_fleet_net


@pytest.mark.parametrize("n_clients", [2, 4, 6, 8])
def test_client_growth(benchmark, n_clients):
    space = benchmark(lambda: derive(client_server_model(n_clients)))
    # free interleaving of Think/Ready plus one optional outstanding
    # request: 2^(n-1) * (n + 2) states
    assert space.size == 2 ** (n_clients - 1) * (n_clients + 2)
    record(benchmark, states=space.size)


@pytest.mark.parametrize("n_places", [3, 6, 12, 24])
def test_single_token_ring_growth_is_linear(benchmark, n_places):
    space = benchmark(lambda: explore_net(courier_ring_net(n_places, 1)))
    assert space.size == n_places
    record(benchmark, markings=space.size)


@pytest.mark.parametrize("n_tokens", [1, 2, 3])
def test_multi_token_growth_is_combinatorial(benchmark, n_tokens):
    space = benchmark(lambda: explore_net(courier_ring_net(4, n_tokens)))
    record(benchmark, markings=space.size)
    if n_tokens == 1:
        assert space.size == 4
    else:
        # distinguishable cells make the count exceed the multiset bound
        from math import comb

        assert space.size >= comb(n_tokens + 3, 3)


@pytest.mark.parametrize("n_sessions", [1, 2, 3])
def test_roaming_fleet_growth(benchmark, n_sessions):
    """The paper's Figure 5 scenario scaled: sessions roaming a ring of
    4 transmitters with per-transmitter capacity."""
    space = benchmark(lambda: explore_net(roaming_fleet_net(n_sessions, 4)))
    record(benchmark, markings=space.size)
    assert space.deadlocks() == []


def test_growth_curve_summary(benchmark):
    """One call that produces the whole series (for the JSON record)."""
    def curve():
        return {
            f"clients_{n}": derive(client_server_model(n)).size for n in (2, 4, 6)
        } | {
            f"tokens_{k}": explore_net(courier_ring_net(4, k)).size for k in (1, 2, 3)
        }

    sizes = benchmark(curve)
    assert sizes["clients_6"] > sizes["clients_4"] > sizes["clients_2"]
    assert sizes["tokens_3"] > sizes["tokens_2"] > sizes["tokens_1"]
    record(benchmark, **sizes)
