"""E5 — Figure 5: the PDA-user-on-a-train model.

Reproduces: the two-transmitter PEPA net, the equiprobable handover
outcomes ("it is as likely that the connection will be dropped as it is
that it will survive"), and the equal per-cycle throughput of the
pre-handover activities.  Benchmarks the extract+solve path and a
success-probability sweep.
"""

import math

from conftest import record

from repro.workloads import PDA_RATES, build_pda_activity_diagram


def test_fig5_extraction_and_structure(benchmark, platform):
    outcome = benchmark(
        lambda: platform.analyse_activity_diagram(build_pda_activity_diagram(), PDA_RATES)
    )
    net = outcome.extraction.net
    assert set(net.places) == {"transmitter_1", "transmitter_2"}
    handover = [t for t in net.transitions.values() if t.action == "handover"]
    assert len(handover) == 1
    assert handover[0].inputs == ("transmitter_1",)
    assert handover[0].outputs == ("transmitter_2",)

    # equiprobable outcomes
    abort = outcome.throughput_of("abort download")
    cont = outcome.throughput_of("continue download")
    assert math.isclose(abort, cont, rel_tol=1e-9)
    # every pre-handover activity completes once per cycle
    cycle = outcome.throughput_of("handover")
    for name in ("download file", "detect weak signal", "search for other transmitters"):
        assert math.isclose(outcome.throughput_of(name), cycle, rel_tol=1e-9)
    assert math.isclose(abort + cont, cycle, rel_tol=1e-9)
    record(benchmark, markings=outcome.analysis.n_states, handover=cycle)


def test_fig5_time_to_handover(benchmark, platform):
    """Extension: the expected time for the session to reach
    transmitter_2 equals the sum of the pipeline stage means, and the
    transient probability curve approaches 1 (the handover *must*
    happen — the train is moving)."""
    import math as _math

    from repro.extract import extract_activity_diagram
    from repro.pepanets import analyse_net

    extraction = extract_activity_diagram(build_pda_activity_diagram(), PDA_RATES)
    analysis = analyse_net(extraction.net)

    import numpy as _np

    from repro.ctmc.passage import passage_time_cdf

    targets = [
        i
        for i, m in enumerate(analysis.space.markings)
        if analysis._count(m, "transmitter_2", None) > 0
    ]

    def measures():
        mean = analysis.mean_time_to_reach("transmitter_2")
        p10 = float(
            passage_time_cdf(analysis.chain, analysis.chain.initial, targets,
                             _np.array([10.0]))[0]
        )
        return mean, p10

    mean, p10 = benchmark(measures)
    expected = sum(
        1.0 / PDA_RATES[a]
        for a in ("download_file", "detect_weak_signal",
                  "search_for_other_transmitters", "handover")
    )
    assert _math.isclose(mean, expected, rel_tol=1e-9)
    # the handover must happen: the first-passage CDF heads to 1
    assert p10 > 0.9
    record(benchmark, mean_time_to_handover=mean, p_handover_by_10s=p10)


def test_fig5_success_probability_sweep(benchmark, platform):
    """Extension sweep: the continue/abort split follows the configured
    branch weights while the handover rate itself is unchanged."""
    total = PDA_RATES["abort_download"] + PDA_RATES["continue_download"]

    def sweep():
        out = []
        for p_success in (0.1, 0.5, 0.9):
            rates = dict(PDA_RATES)
            rates["continue_download"] = total * p_success
            rates["abort_download"] = total * (1 - p_success)
            outcome = platform.analyse_activity_diagram(build_pda_activity_diagram(), rates)
            out.append(
                (p_success, outcome.throughput_of("continue download"),
                 outcome.throughput_of("abort download"),
                 outcome.throughput_of("handover"))
            )
        return out

    series = benchmark(sweep)
    for p_success, cont, abort, handover in series:
        assert math.isclose(cont / (cont + abort), p_success, rel_tol=1e-9)
    handovers = [h for _, _, _, h in series]
    assert math.isclose(min(handovers), max(handovers), rel_tol=1e-9)
