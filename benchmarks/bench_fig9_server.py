"""E8 — Figure 9: the Tomcat server's JSP lifecycle state diagram.

Reproduces: the server-side steady-state probabilities before the
direct-servlet-lookup optimisation.  The shape the model must show:
residence concentrates on the expensive stages — translation dominates,
then compilation — while lookup/execute/response are negligible; the
server is never idle-bound.
"""

import math

from conftest import record

from repro.workloads import TOMCAT_RATES, build_client_statechart, build_server_statechart


def test_fig9_server_probabilities(benchmark, platform):
    outcome = benchmark(
        lambda: platform.analyse_state_diagrams(
            [build_client_statechart(), build_server_statechart(cached=False)]
        )
    )
    p = {
        name: outcome.probability_of("Server", name)
        for name in (
            "ServerIdle", "ProcessRequest", "AccessJSPFile",
            "GeneratedJavaCode", "CompiledJavaCode", "SendHTTPResponse",
        )
    }
    assert math.isclose(sum(p.values()), 1.0, rel_tol=1e-9)
    # translation (leaving AccessJSPFile, rate 0.5) dominates residence,
    # compilation (leaving GeneratedJavaCode, rate 1.0) is second among
    # the working states
    working = {k: v for k, v in p.items() if k != "ServerIdle"}
    ordered = sorted(working, key=working.get, reverse=True)
    assert ordered[0] == "AccessJSPFile"
    assert ordered[1] == "GeneratedJavaCode"
    # residence ratio tracks the rate ratio of the two slow stages
    assert math.isclose(
        p["AccessJSPFile"] / p["GeneratedJavaCode"],
        TOMCAT_RATES["compile"] / TOMCAT_RATES["translate"],
        rel_tol=1e-6,
    )
    record(benchmark, **{f"p_{k}": v for k, v in p.items()})


def test_fig9_request_response_conservation(benchmark, platform):
    outcome = benchmark(
        lambda: platform.analyse_state_diagrams(
            [build_client_statechart(), build_server_statechart(cached=False)]
        )
    )
    ths = outcome.analysis.all_throughputs()
    # one response per request, one full lifecycle per request
    assert math.isclose(ths["request"], ths["response"], rel_tol=1e-9)
    for stage in ("locatejsp", "translate", "compile", "execute"):
        assert math.isclose(ths[stage], ths["request"], rel_tol=1e-9)
