"""A5 — transient-analysis ablation: uniformization vs expm_multiply.

Both methods compute the same distributions (asserted to 1e-8); the
bench records which is faster at which horizon — uniformization's cost
grows with Λt (more Poisson terms), expm's with the Krylov behaviour of
the scaled generator.
"""

import numpy as np
import pytest

from conftest import record

from repro.ctmc.transient import transient_distribution
from repro.pepa.ctmcgen import ctmc_of_model
from repro.workloads import client_server_model

_chain = None


def chain():
    global _chain
    if _chain is None:
        _, _chain = ctmc_of_model(client_server_model(7))
    return _chain


@pytest.mark.parametrize("t", [0.5, 5.0, 50.0])
@pytest.mark.parametrize("method", ["uniformization", "expm"])
def test_transient_method(benchmark, method, t):
    c = chain()
    dist = benchmark(lambda: transient_distribution(c, t, 0, method=method))
    reference = transient_distribution(c, t, 0, method="uniformization")
    assert np.allclose(dist, reference, atol=1e-8)
    record(benchmark, states=c.n_states, horizon=t)


def test_transient_curve_incremental_advantage(benchmark):
    """The incremental curve over k points costs roughly one long pass,
    not k independent solves."""
    from repro.ctmc.transient import transient_curve

    c = chain()
    times = np.linspace(0.5, 20.0, 10)

    curve = benchmark(lambda: transient_curve(c, times, 0))
    for row, t in zip(curve[::4], times[::4]):
        assert np.allclose(row, transient_distribution(c, float(t), 0), atol=1e-8)
