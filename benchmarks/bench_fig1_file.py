"""E1 — Figure 1: the file-operations activity diagram (no mobility).

Reproduces: extraction of the diagram to a one-place PEPA net, the
protocol properties the paper derives from the PEPA model ("it is not
possible to write to a closed file", "read and write operations cannot
be interleaved"), and the steady-state throughput of every activity.
Benchmarks the full extract+solve path.
"""

import math

from conftest import record

from repro.pepa import derive, enabled_actions, parse_model
from repro.workloads import FILE_PEPA_SOURCE, FILE_RATES, build_file_activity_diagram


def test_fig1_extract_and_solve(benchmark, platform):
    outcome = benchmark(
        lambda: platform.analyse_activity_diagram(build_file_activity_diagram(), FILE_RATES)
    )
    # one implicit location, no movements
    assert list(outcome.extraction.net.places) == ["local"]
    assert outcome.extraction.reset_actions == []

    # flow balance: every open is matched by a close
    opens = outcome.throughput_of("openread") + outcome.throughput_of("openwrite")
    closes = outcome.results.value("activity", "close", "throughput")
    assert math.isclose(opens, closes, rel_tol=1e-9)

    # symmetric decision: both open modes equally likely
    assert math.isclose(
        outcome.throughput_of("openread"), outcome.throughput_of("openwrite"), rel_tol=1e-9
    )
    record(
        benchmark,
        states=outcome.analysis.n_states,
        throughput_read=outcome.throughput_of("read"),
        throughput_close=closes,
    )


def test_fig1_protocol_properties(benchmark):
    """The published PEPA component of Section 2.2: the protocol
    properties hold in its derivation graph."""

    def derive_and_check():
        model = parse_model(FILE_PEPA_SOURCE)
        env = model.environment
        space = derive(model)
        for state in space.states:
            acts = enabled_actions(state, env)
            # never both read and write available (no interleaving)
            assert not ({"read", "write"} <= acts)
            # writing requires having opened for writing first
            if "write" in acts:
                assert "openwrite" not in acts
        return space

    space = benchmark(derive_and_check)
    assert space.size == 3
    assert space.deadlocks() == []
