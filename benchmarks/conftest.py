"""Shared helpers for the benchmark suite.

Every benchmark regenerates one figure/experiment of the paper (see
DESIGN.md's experiment index) and *asserts the reproduced shape* —
who wins, by roughly what factor — in addition to timing the pipeline
stage under pytest-benchmark.  Numbers print with ``-s``.
"""

from __future__ import annotations

import pytest


def record(benchmark, **values: float) -> None:
    """Attach reproduced values to the benchmark record (shown in the
    saved JSON and with --benchmark-verbose)."""
    for key, value in values.items():
        benchmark.extra_info[key] = value


@pytest.fixture(scope="session")
def platform():
    from repro.choreographer import Choreographer

    return Choreographer()
