#!/usr/bin/env python
"""Compare two ``repro-bench/1`` snapshots and fail on regressions.

The command-line gate over :mod:`repro.obs.regress`: runs are matched
on (workload, size, solver), every stage plus the run total is compared
against a relative threshold *and* an absolute-seconds floor (both must
trip — sub-millisecond stages double with scheduler noise and are not
signal), and the verdict is printed as a markdown report.

Usage::

    PYTHONPATH=src python benchmarks/compare_bench.py BENCH_PR2.json current.json
    PYTHONPATH=src python benchmarks/compare_bench.py base.json new.json \
        --threshold 2.0 --min-seconds 0.25 --output report.md

Exit status: 0 when no stage regressed, 1 when at least one did, 2 on
unreadable/ill-formed input.  CI runs the quick sweep and gates every
PR against the committed baseline with this script.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.exists() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.regress import (
    DEFAULT_MIN_SECONDS,
    DEFAULT_THRESHOLD,
    compare_benchmarks,
    load_bench,
    markdown_report,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="baseline repro-bench/1 JSON")
    parser.add_argument("current", type=Path, help="current repro-bench/1 JSON")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative slow-down factor that counts as a "
                             f"regression (default {DEFAULT_THRESHOLD})")
    parser.add_argument("--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
                        help="absolute floor a delta must also clear "
                             f"(default {DEFAULT_MIN_SECONDS}s)")
    parser.add_argument("-o", "--output", type=Path,
                        help="also write the markdown report here")
    args = parser.parse_args(argv)

    try:
        baseline = load_bench(args.baseline)
        current = load_bench(args.current)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    comparison = compare_benchmarks(
        baseline, current,
        threshold=args.threshold, min_seconds=args.min_seconds,
    )
    report = markdown_report(comparison)
    print(report)
    if args.output:
        args.output.write_text(report)
    return 0 if comparison.ok else 1


if __name__ == "__main__":
    sys.exit(main())
