"""E4 — Figure 4: the extraction/reflection tool chain.

Times the complete pipeline — Poseidon project → preprocessor → MDR →
extractor → PEPA Workbench for PEPA nets → reflector → postprocessor —
and asserts the two properties the figure encodes: results land in the
reflected model as tagged values, and the original diagram layout
survives untouched.
"""

from conftest import record

from repro.uml.model import TAG_THROUGHPUT, UmlModel
from repro.uml.xmi import add_synthetic_layout, extract_layout, preprocess, read_model, write_model
from repro.workloads import IM_RATES, PDA_RATES, build_instant_message_diagram, build_pda_activity_diagram


def poseidon_project(builder, name):
    model = UmlModel(name=name)
    model.add_activity_graph(builder())
    return add_synthetic_layout(write_model(model))


def test_fig4_full_pipeline_instant_message(benchmark, platform):
    project = poseidon_project(build_instant_message_diagram, "im")

    reflected, outcomes, _ = benchmark(lambda: platform.process_xmi(project, IM_RATES))
    assert len(outcomes) == 1
    # layout preserved block-for-block
    assert extract_layout(reflected).keys() == extract_layout(project).keys()
    # throughputs present in the reflected document
    restored = read_model(preprocess(reflected))
    for action in restored.activity_graph("instant-message").actions():
        assert action.tag(TAG_THROUGHPUT) is not None
    record(benchmark, layout_blocks=len(extract_layout(project)))


def test_fig4_full_pipeline_pda(benchmark, platform):
    project = poseidon_project(build_pda_activity_diagram, "pda")
    reflected, outcomes, _ = benchmark(lambda: platform.process_xmi(project, PDA_RATES))
    assert outcomes[0].analysis.n_states == 6
    assert extract_layout(reflected).keys() == extract_layout(project).keys()


def test_fig4_preprocessor_only(benchmark):
    """The preprocessor in isolation (the cheap stage)."""
    project = poseidon_project(build_pda_activity_diagram, "pda-pre")
    clean = benchmark(lambda: preprocess(project))
    assert "Poseidon" not in clean
    read_model(clean)
