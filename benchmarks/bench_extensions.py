"""A4 — ablations of the extensions implemented beyond the paper's
evaluation: fork/join extraction, the multi-token rendezvous, the
classical abstraction + coverability pre-analysis, and the sensitivity
profile.  Each bench asserts the reproduced property and times the
stage.
"""

import math

from conftest import record

from repro.extract import extract_activity_diagram
from repro.pepa.ctmcgen import ctmc_of_model
from repro.pepa.sensitivity import sensitivity_profile
from repro.pepanets import analyse_net, explore_net
from repro.pepanets.abstraction import to_petri_net
from repro.petri import build_coverability_graph, p_invariants
from repro.workloads import MEETING_RATES, build_meeting_diagram, build_web_model


def test_multitoken_rendezvous_pipeline(benchmark):
    def run():
        extraction = extract_activity_diagram(build_meeting_diagram(), MEETING_RATES)
        return extraction, analyse_net(extraction.net)

    extraction, analysis = benchmark(run)
    # the joint move exists and both tokens are conserved
    home = next(t for t in extraction.net.transitions.values() if t.action == "travel_home")
    assert home.inputs == ("hub", "hub")
    total = sum(analysis.location_distribution().values())
    assert math.isclose(total, 2.0, rel_tol=1e-9)
    record(benchmark, markings=analysis.n_states)


def test_abstraction_preanalysis(benchmark):
    extraction = extract_activity_diagram(build_meeting_diagram(), MEETING_RATES)

    def run():
        abstract = to_petri_net(extraction.net)
        graph = build_coverability_graph(abstract)
        invariants = p_invariants(abstract)
        return abstract, graph, invariants

    abstract, graph, invariants = benchmark(run)
    # structurally bounded: every place has finite capacity
    assert graph.is_bounded()
    # the abstraction is far smaller than the concrete marking space
    concrete = explore_net(extraction.net)
    assert graph.size <= concrete.size
    record(benchmark, abstract_nodes=graph.size, concrete_markings=concrete.size,
           invariants=len(invariants))


def test_sensitivity_profile_cost(benchmark):
    model, _ = build_web_model(cached=False)
    space, chain = ctmc_of_model(model)

    profile = benchmark(lambda: sensitivity_profile(space, chain, "request"))
    # the slow stages dominate the tuning guide for the uncached server
    top_two = list(profile)[:2]
    assert "translate" in top_two
    record(benchmark, top=list(profile)[0])
