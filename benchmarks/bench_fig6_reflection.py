"""E6 — Figures 6/7: reflecting throughput results onto the diagram.

Figure 6 shows Choreographer writing results back; Figure 7 shows the
annotated diagram in Poseidon.  This bench isolates the reflection
stage: given a solved model, annotate every action state and verify
the tags agree with the analysis to the formatted precision.
"""

from conftest import record

from repro.extract import extract_activity_diagram
from repro.pepanets import analyse_net
from repro.reflect import reflect_activity_results, results_of_net_analysis
from repro.uml.model import TAG_THROUGHPUT
from repro.workloads import PDA_RATES, build_pda_activity_diagram


def test_fig6_reflection_stage(benchmark):
    graph = build_pda_activity_diagram()
    extraction = extract_activity_diagram(graph, PDA_RATES)
    analysis = analyse_net(extraction.net)

    def reflect():
        table = results_of_net_analysis(extraction, analysis)
        reflect_activity_results(extraction, table)
        return table

    table = benchmark(reflect)
    for action in graph.actions():
        tagged = float(action.tag(TAG_THROUGHPUT))
        exact = analysis.throughput(extraction.pepa_action_of(action))
        assert abs(tagged - exact) <= 1e-5 * max(1.0, abs(exact))
    # the result table carries activities, the handover firing and places
    assert table.subjects("firing")
    assert set(table.subjects("place")) == {"transmitter_1", "transmitter_2"}
    record(benchmark, rows=len(table))


def test_fig7_annotated_document_round_trip(benchmark):
    """Figure 7 is the annotated model as a Poseidon artefact: verify
    the tags survive XMI serialisation."""
    from repro.uml.model import UmlModel
    from repro.uml.xmi import read_model, write_model

    graph = build_pda_activity_diagram()
    extraction = extract_activity_diagram(graph, PDA_RATES)
    analysis = analyse_net(extraction.net)
    reflect_activity_results(extraction, results_of_net_analysis(extraction, analysis))
    model = UmlModel(name="annotated")
    model.add_activity_graph(graph)

    restored = benchmark(lambda: read_model(write_model(model)))
    for action in restored.activity_graph("pda-handover").actions():
        assert action.tag(TAG_THROUGHPUT) is not None
