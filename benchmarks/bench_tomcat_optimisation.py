"""E9 — the paper's closing experiment: the Tomcat resident-servlet
optimisation, "solved the model with and without the locate servlet
optimisation ... the reduction in the delay spent waiting for the
response from the server".

Shape asserted (absolute numbers are ours, the paper reports none):

* the optimisation wins, by an order of magnitude at our rates;
* request throughput rises;
* the payoff grows monotonically as compilation gets slower;
* the baseline delay equals the analytic sum of stage means.
"""

import math

from conftest import record

from repro.ctmc.passage import mean_time_per_visit
from repro.pepa.measures import analyse
from repro.workloads import TOMCAT_RATES, build_web_model


def waiting_delay(cached: bool, rates: dict | None = None) -> tuple[float, float]:
    model, _ = build_web_model(cached=cached, rates=rates)
    analysis = analyse(model)
    wait = [i for i, lbl in enumerate(analysis.chain.labels) if "WaitForResponse" in lbl]
    return (
        mean_time_per_visit(analysis.chain, wait, analysis.pi),
        analysis.throughput("request"),
    )


def test_tomcat_optimisation_headline(benchmark):
    def run_both():
        return waiting_delay(False), waiting_delay(True)

    (base_delay, base_tp), (opt_delay, opt_tp) = benchmark(run_both)

    # the optimisation wins, decisively
    assert opt_delay < base_delay
    reduction = base_delay / opt_delay
    assert reduction > 10.0
    # and the client gets more pages through
    assert opt_tp > base_tp

    # analytic cross-check of the baseline: the wait is one pass of the
    # locate-translate-compile-execute-respond pipeline
    r = TOMCAT_RATES
    analytic = sum(1.0 / r[a] for a in ("locatejsp", "translate", "compile",
                                        "execute", "response"))
    assert math.isclose(base_delay, analytic, rel_tol=1e-9)
    record(benchmark, base_delay=base_delay, opt_delay=opt_delay, reduction=reduction)


def test_tomcat_payoff_grows_with_compile_cost(benchmark):
    def sweep():
        out = []
        for compile_rate in (4.0, 1.0, 0.25):
            override = {"compile": compile_rate}
            d0, _ = waiting_delay(False, override)
            d1, _ = waiting_delay(True, override)
            out.append((compile_rate, d0 / d1))
        return out

    series = benchmark(sweep)
    reductions = [red for _, red in series]
    # slower compilation (left to right in the sweep) -> bigger payoff
    assert reductions[0] < reductions[1] < reductions[2]


def test_tomcat_cache_hit_ratio_sweep(benchmark):
    """The optimised delay interpolates between the hit and miss costs
    as the cache hit ratio varies."""
    lookup_total = TOMCAT_RATES["servlethit"] + TOMCAT_RATES["servletmiss"]

    def sweep():
        out = []
        for hit_fraction in (0.5, 0.9, 0.99):
            override = {
                "servlethit": lookup_total * hit_fraction,
                "servletmiss": lookup_total * (1 - hit_fraction),
            }
            delay, _ = waiting_delay(True, override)
            out.append((hit_fraction, delay))
        return out

    series = benchmark(sweep)
    delays = [d for _, d in series]
    assert delays[0] > delays[1] > delays[2]
