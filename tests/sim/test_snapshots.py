"""Tests for simulation snapshots and the transient estimator —
cross-validating uniformization with an entirely independent method."""

import math

import pytest

from repro.ctmc.transient import transient_distribution
from repro.exceptions import SimulationError
from repro.pepa.ctmcgen import ctmc_of_model
from repro.pepa.parser import parse_model
from repro.sim import (
    estimate_transient_probability,
    pepa_transition_fn,
    replicate,
    simulate_pepa,
)

TWO_STATE = parse_model("On = (off, 1.0).Off; Off = (on, 3.0).On; On")


class TestSnapshots:
    def test_snapshot_at_zero_is_initial_state(self):
        r = simulate_pepa(TWO_STATE, 10.0, seed=1, snapshot_times=[0.0])
        assert str(r.snapshots[0.0]) == "On"

    def test_all_requested_snapshots_taken(self):
        times = [0.5, 1.0, 7.5]
        r = simulate_pepa(TWO_STATE, 10.0, seed=2, snapshot_times=times)
        assert sorted(r.snapshots) == times

    def test_snapshots_out_of_range_rejected(self):
        with pytest.raises(SimulationError, match="within"):
            simulate_pepa(TWO_STATE, 5.0, seed=0, snapshot_times=[6.0])
        with pytest.raises(SimulationError, match="within"):
            simulate_pepa(TWO_STATE, 5.0, seed=0, snapshot_times=[-1.0])

    def test_snapshots_taken_in_deadlocked_run(self):
        model = parse_model(
            """
            X = (a, 1).Y;  Y = (b, 1).Y;
            Z = (a, T).W;  W = (c, 1).W;
            X <a, b, c> Z
            """
        )
        from repro.sim import simulate_pepa as sim

        r = sim(model, 50.0, seed=0, snapshot_times=[0.1, 49.0])
        assert r.deadlocked
        assert sorted(r.snapshots) == [0.1, 49.0]

    def test_reproducible(self):
        a = simulate_pepa(TWO_STATE, 20.0, seed=9, snapshot_times=[5.0])
        b = simulate_pepa(TWO_STATE, 20.0, seed=9, snapshot_times=[5.0])
        assert a.snapshots == b.snapshots


class TestTransientEstimator:
    def test_interval_covers_uniformization(self):
        """The Monte-Carlo transient estimate must cover the exact
        uniformization value — two fully independent computations of
        P(On at t)."""
        t = 0.4
        space, chain = ctmc_of_model(TWO_STATE)
        exact = transient_distribution(chain, t, 0)
        on_index = chain.labels.index("On")
        p_exact = float(exact[on_index])

        results = replicate(
            pepa_transition_fn(TWO_STATE), TWO_STATE.system, 1.0,
            n_replications=600, base_seed=7, snapshot_times=[t],
        )
        estimate = estimate_transient_probability(
            results, t, lambda s: str(s) == "On", confidence=0.99
        )
        assert estimate.covers(p_exact)
        # and the estimate is informative, not vacuous
        assert estimate.half_width < 0.2

    def test_missing_snapshot_rejected(self):
        results = replicate(
            pepa_transition_fn(TWO_STATE), TWO_STATE.system, 1.0,
            n_replications=3, base_seed=1,
        )
        with pytest.raises(SimulationError, match="snapshot"):
            estimate_transient_probability(results, 0.5, lambda s: True)
