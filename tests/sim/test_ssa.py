"""Unit tests for the stochastic simulation engine."""

import math

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.pepa.parser import parse_model
from repro.pepa.measures import analyse
from repro.pepanets.parser import parse_net
from repro.pepanets.measures import analyse_net
from repro.sim import (
    estimate_probability,
    estimate_throughput,
    net_transition_fn,
    pepa_transition_fn,
    replicate,
    simulate,
    simulate_net,
    simulate_pepa,
)


TWO_STATE = parse_model("On = (off, 1.0).Off; Off = (on, 3.0).On; On")

RING_NET = parse_net(
    """
    Courier = (hop, 2.0).Courier;
    A[Courier] = Courier[_];
    B[_] = Courier[_];
    C[_] = Courier[_];
    ab = (hop, 2.0) : A -> B;
    bc = (hop, 2.0) : B -> C;
    ca = (hop, 2.0) : C -> A;
    """
)


class TestEngine:
    def test_reproducible_with_same_seed(self):
        r1 = simulate_pepa(TWO_STATE, 100.0, seed=42)
        r2 = simulate_pepa(TWO_STATE, 100.0, seed=42)
        assert r1.action_counts == r2.action_counts
        assert r1.residence == r2.residence

    def test_different_seeds_differ(self):
        r1 = simulate_pepa(TWO_STATE, 200.0, seed=1)
        r2 = simulate_pepa(TWO_STATE, 200.0, seed=2)
        assert r1.action_counts != r2.action_counts

    def test_residence_sums_to_horizon(self):
        r = simulate_pepa(TWO_STATE, 50.0, seed=7)
        assert math.isclose(sum(r.residence.values()), 50.0, rel_tol=1e-9)

    def test_warmup_excluded_from_counts(self):
        r_cold = simulate_pepa(TWO_STATE, 50.0, seed=3, warmup=0.0)
        r_warm = simulate_pepa(TWO_STATE, 50.0, seed=3, warmup=10.0)
        assert math.isclose(sum(r_warm.residence.values()), 50.0, rel_tol=1e-9)
        assert r_cold.t_end == r_warm.t_end

    def test_deadlock_detected(self):
        model = parse_model(
            """
            X = (a, 1).Y;  Y = (b, 1).Y;
            Z = (a, T).W;  W = (c, 1).W;
            X <a, b, c> Z
            """
        )
        r = simulate_pepa(model, 10.0, seed=0)
        assert r.deadlocked
        assert math.isclose(sum(r.residence.values()), 10.0, rel_tol=1e-9)

    def test_bad_horizon_rejected(self):
        with pytest.raises(SimulationError):
            simulate_pepa(TWO_STATE, 0.0)

    def test_event_cap(self):
        with pytest.raises(SimulationError, match="events"):
            simulate_pepa(TWO_STATE, 1e7, max_events=100)

    def test_passive_top_level_rejected(self):
        model = parse_model("P = (a, T).P; P")
        with pytest.raises(SimulationError, match="passive"):
            simulate_pepa(model, 1.0)


class TestAgreementWithNumericalSolution:
    """The headline property: SSA and the CTMC solver agree."""

    def test_two_state_probability(self):
        exact = analyse(TWO_STATE)
        p_on_exact = exact.probability_of_local_state("On")
        r = simulate_pepa(TWO_STATE, 5000.0, seed=11, warmup=50.0)
        p_on_sim = r.probability(lambda s: str(s) == "On")
        assert math.isclose(p_on_sim, p_on_exact, abs_tol=0.02)

    def test_two_state_throughput(self):
        exact = analyse(TWO_STATE)
        r = simulate_pepa(TWO_STATE, 5000.0, seed=13, warmup=50.0)
        assert math.isclose(r.throughput("off"), exact.throughput("off"), rel_tol=0.05)

    def test_net_throughput(self):
        exact = analyse_net(RING_NET, reducible="error")
        r = simulate_net(RING_NET, 3000.0, seed=5, warmup=20.0)
        assert math.isclose(r.throughput("hop"), exact.throughput("hop"), rel_tol=0.05)


class TestEstimators:
    def test_confidence_interval_covers_exact_value(self):
        exact = analyse(TWO_STATE)
        results = replicate(
            pepa_transition_fn(TWO_STATE), TWO_STATE.system, 800.0,
            n_replications=8, warmup=20.0, base_seed=17,
        )
        est = estimate_throughput(results, "off", confidence=0.99)
        assert est.covers(exact.throughput("off"))
        assert est.half_width > 0

    def test_probability_estimator(self):
        exact = analyse(TWO_STATE)
        results = replicate(
            pepa_transition_fn(TWO_STATE), TWO_STATE.system, 800.0,
            n_replications=8, warmup=20.0, base_seed=23,
        )
        est = estimate_probability(results, lambda s: str(s) == "On", confidence=0.99)
        assert est.covers(exact.probability_of_local_state("On"))

    def test_estimate_formatting(self):
        results = replicate(
            pepa_transition_fn(TWO_STATE), TWO_STATE.system, 100.0,
            n_replications=4, base_seed=3,
        )
        est = estimate_throughput(results, "off")
        text = str(est)
        assert "±" in text and "95%" in text

    def test_too_few_replications_rejected(self):
        with pytest.raises(SimulationError):
            replicate(pepa_transition_fn(TWO_STATE), TWO_STATE.system, 10.0,
                      n_replications=1)

    def test_replications_are_independent_but_reproducible(self):
        kwargs = dict(n_replications=3, base_seed=9)
        a = replicate(pepa_transition_fn(TWO_STATE), TWO_STATE.system, 100.0, **kwargs)
        b = replicate(pepa_transition_fn(TWO_STATE), TWO_STATE.system, 100.0, **kwargs)
        assert [r.action_counts for r in a] == [r.action_counts for r in b]
        assert a[0].action_counts != a[1].action_counts
