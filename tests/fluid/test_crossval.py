"""Tests for the three-way cross-validation battery."""

import pytest

from repro.exceptions import ReproError
from repro.fluid import FAMILIES, CrossValidationReport, run_crossval

LIGHT = dict(
    small_ns=(3, 5), convergence_ns=(4, 16, 64),
    ssa_replicas=150, ssa_t_end=8.0, ssa_warmup=2.0,
    ssa_replications=4, base_seed=11,
)


class TestBattery:
    def test_all_families_pass_light_settings(self):
        report = run_crossval(**LIGHT)
        assert report.ok, report.as_table()
        assert "all checks passed" in report.summary()

    def test_family_subset(self):
        report = run_crossval(["roaming_sessions"], include_ssa=False,
                              small_ns=(4,))
        assert report.ok
        assert {r.family for r in report.results} == {"roaming_sessions"}

    def test_unknown_family_rejected(self):
        with pytest.raises(ReproError, match="ghost_family"):
            run_crossval(["ghost_family"])

    def test_exact_families_marked(self):
        assert FAMILIES["file_sink"].exact
        assert not FAMILIES["client_server"].exact

    def test_markdown_report_structure(self):
        report = run_crossval(["message_bus"], include_ssa=False,
                              small_ns=(3,))
        md = report.markdown()
        assert md.startswith("# Fluid cross-validation report")
        assert "| family | check | status | detail |" in md
        assert "message_bus" in md


class TestReport:
    def test_failure_is_named_in_the_summary(self):
        report = CrossValidationReport()
        report.record("fam_a", "exact", True, "fine")
        report.record("fam_b", "ssa", False, "outside the interval")
        assert not report.ok
        summary = report.summary()
        assert "1/2 checks passed" in summary
        assert "FAILED" in summary and "fam_b/ssa" in summary

    def test_empty_report_is_ok(self):
        assert CrossValidationReport().ok
