"""Tests for the numerical vector form compiler."""

import numpy as np
import pytest

from repro.exceptions import WellFormednessError
from repro.fluid import FluidUnsupported, nvf_of_model
from repro.fluid.crossval import client_server_family, file_sink_model
from repro.pepa import parse_model


class TestCompilation:
    def test_coordinates_are_replica_then_environment(self):
        nvf, shape, n = nvf_of_model(client_server_family(4))
        assert set(nvf.names[:3]) == {"Think", "Ready", "Wait"}
        assert set(nvf.names[3:]) == {"Idle", "Serve"}
        assert nvf.n_replica_states == 3
        assert nvf.dimension == 5
        assert n == 4

    def test_initial_vector_masses(self):
        nvf, _, _ = nvf_of_model(client_server_family(1))
        x0 = nvf.initial_vector(1000)
        assert x0[: nvf.n_replica_states].sum() == pytest.approx(1000.0)
        assert x0[nvf.n_replica_states:].sum() == pytest.approx(1.0)
        assert x0[nvf.names.index("Think")] == pytest.approx(1000.0)

    def test_vector_field_conserves_both_classes(self):
        nvf, _, _ = nvf_of_model(client_server_family(1))
        rng = np.random.default_rng(7)
        for _ in range(20):
            x = np.empty(nvf.dimension)
            repl = rng.random(nvf.n_replica_states)
            x[: nvf.n_replica_states] = 50.0 * repl / repl.sum()
            env = rng.random(nvf.dimension - nvf.n_replica_states)
            x[nvf.n_replica_states:] = env / env.sum()
            dx = nvf.vector_field(x)
            assert dx[: nvf.n_replica_states].sum() == pytest.approx(0.0, abs=1e-9)
            assert dx[nvf.n_replica_states:].sum() == pytest.approx(0.0, abs=1e-12)

    def test_action_flows_cover_the_alphabet(self):
        nvf, _, _ = nvf_of_model(client_server_family(1))
        flows = nvf.action_flows(nvf.initial_vector(10))
        assert set(flows) == {"think", "request", "respond", "reset"}

    def test_activity_matrices_name_coordinates(self):
        nvf, _, _ = nvf_of_model(file_sink_model(1))
        matrices = nvf.activity_matrices()
        assert ("Reader", "Writer", 1.5) in matrices["read"]
        # the shared action lists both sides; the passive side carries
        # its weight
        sources = {src for src, _, _ in matrices["write"]}
        assert {"Writer", "Sink"} <= sources

    def test_conservation_classes(self):
        nvf, _, _ = nvf_of_model(file_sink_model(1))
        classes = nvf.conservation_classes()
        (repl_idx, repl_target), (env_idx, env_target) = classes
        assert repl_target is None and env_target == 1.0
        assert len(repl_idx) == nvf.n_replica_states


class TestRateDiscipline:
    def test_multi_state_passive_side_is_unsupported(self):
        model = parse_model(
            "Work = (go, 1.0).Rest; Rest = (pause, 2.0).Work;"
            "Srv = (go, T).Busy; Busy = (done, 3.0).Srv;"
            "(Work || Work) <go> Srv"
        )
        with pytest.raises(FluidUnsupported, match="single-state"):
            nvf_of_model(model)

    def test_both_sides_passive_rejected(self):
        model = parse_model(
            "P = (go, T).P; Q = (go, T).Q; (P || P) <go> Q"
        )
        with pytest.raises(WellFormednessError):
            nvf_of_model(model)

    def test_passive_individual_activity_rejected(self):
        model = parse_model("P = (lonely, T).P; P || P")
        with pytest.raises(WellFormednessError, match="passive"):
            nvf_of_model(model)
