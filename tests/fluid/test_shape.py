"""Tests for the population-shape recogniser."""

import pytest

from repro.fluid import FluidUnsupported, population_shape
from repro.pepa import parse_model

DEFS = """
Think = (think, 1.0).Ready;
Ready = (request, 2.0).Wait;
Wait  = (respond, 4.0).Think;
Idle  = (request, 10.0).Serve;
Serve = (reset, 5.0).Idle;
"""


def shape_of(system: str):
    return population_shape(parse_model(DEFS + system))


class TestRecognition:
    def test_pure_interleaving_has_no_environment(self):
        shape = shape_of("Think || Think || Think")
        assert shape.replica == "Think"
        assert shape.n_replicas == 3
        assert shape.environment is None
        assert shape.cooperation == frozenset()

    def test_single_constant_is_one_replica(self):
        shape = shape_of("Think")
        assert (shape.replica, shape.n_replicas) == ("Think", 1)

    def test_replica_block_with_environment(self):
        shape = shape_of("(Think || Think) <request> Idle")
        assert shape.replica == "Think"
        assert shape.n_replicas == 2
        assert str(shape.environment) == "Idle"
        assert shape.cooperation == frozenset({"request"})

    def test_replica_block_on_the_right(self):
        shape = shape_of("Idle <request> (Think || Think)")
        assert shape.replica == "Think"
        assert str(shape.environment) == "Idle"

    def test_larger_block_wins_when_both_sides_replicate(self):
        shape = shape_of("(Idle || Idle || Idle) <request> (Think || Think)")
        assert shape.replica == "Idle"
        assert shape.n_replicas == 3

    def test_ties_go_left(self):
        shape = shape_of("(Idle || Idle) <request> (Think || Think)")
        assert shape.replica == "Idle"

    def test_describe_is_readable(self):
        shape = shape_of("(Think || Think) <request> Idle")
        assert shape.describe() == "Think^2 <request> Idle"


class TestDiagnostics:
    def test_mixed_interleaving_rejected(self):
        with pytest.raises(FluidUnsupported, match="population shape"):
            shape_of("(Think || Idle) <request> (Serve || Wait)")

    def test_single_component_environment_is_a_one_replica_block(self):
        # a mixed interleaving paired with a single constant is fine:
        # the constant is a 1-replica population, the mix the environment
        shape = shape_of("(Think || Idle) <request> Serve")
        assert (shape.replica, shape.n_replicas) == ("Serve", 1)

    def test_non_cooperation_system_rejected(self):
        with pytest.raises(FluidUnsupported, match="replicated population"):
            population_shape(parse_model("P = (a, 1.0).P; (a, 1.0).P"))

    def test_diagnostic_names_the_offending_term(self):
        with pytest.raises(FluidUnsupported, match="Think"):
            shape_of("(Think || Idle) <request> (Serve || Wait)")
