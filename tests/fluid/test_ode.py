"""Tests for the fluid ODE / steady-state analyzer."""

import math
import time

import numpy as np
import pytest

from repro.batch.cache import DerivationCache, use_cache
from repro.ctmc import steady_state
from repro.exceptions import SolverError
from repro.fluid import analyse_fluid, nvf_of_model, steady_fluid, trajectory
from repro.fluid.crossval import (
    client_server_family,
    file_sink_model,
    roaming_sessions_model,
)
from repro.obs import EventStream, use_events
from repro.pepa.population import population_ctmc


class TestExactness:
    """Linear families: fluid equals the exact population CTMC at any N."""

    @pytest.mark.parametrize("n", [1, 3, 6])
    def test_file_sink_matches_population_ctmc(self, n):
        model = file_sink_model(n)
        analysis = analyse_fluid(model)
        from repro.fluid import population_shape

        shape = population_shape(model)
        states, chain = population_ctmc(
            model.environment, shape.replica, n, shape.environment,
            shape.cooperation,
        )
        pi = steady_state(chain)
        for name in ("Reader", "Writer"):
            exact = sum(p * s.count_of(name) for p, s in zip(pi, states))
            assert analysis.occupancy(name) == pytest.approx(exact, abs=1e-8)

    def test_throughputs_balance_around_the_cycle(self):
        analysis = analyse_fluid(roaming_sessions_model(4))
        assert analysis.throughput("download") == pytest.approx(
            analysis.throughput("handover"), rel=1e-9
        )
        # πSession = r_h/(r_d + r_h) per replica; throughput = N·r_d·π
        assert analysis.throughput("download") == pytest.approx(4 / 3, rel=1e-9)


class TestScaling:
    def test_replicas_override_scales_masses(self):
        analysis = analyse_fluid(roaming_sessions_model(2), replicas=10**6)
        assert analysis.replicas == 10**6
        total = sum(analysis.occupancies().values())
        assert total == pytest.approx(1e6, rel=1e-9)

    def test_solve_time_independent_of_replica_count(self):
        model = client_server_family(2)

        def solve(n):
            nvf, _, _ = nvf_of_model(model, replicas=n)
            t0 = time.perf_counter()
            steady_fluid(nvf, n)
            return time.perf_counter() - t0

        solve(10)  # warm-up
        small, large = solve(10**3), solve(10**9)
        # generous: catches O(N) regressions, ignores scheduler noise
        assert large < 50 * small + 1.0


class TestAccessors:
    def test_occupancy_and_probability(self):
        analysis = analyse_fluid(client_server_family(1), replicas=100)
        # replica coordinates: probability is occupancy / N
        assert analysis.probability_of_local_state("Think") == pytest.approx(
            analysis.occupancy("Think") / 100
        )
        # environment coordinates are already probabilities
        assert analysis.probability_of_local_state("Idle") == pytest.approx(
            analysis.occupancy("Idle")
        )
        assert analysis.occupancy("Idle") + analysis.occupancy("Serve") == \
            pytest.approx(1.0, abs=1e-8)

    def test_unknown_local_state_is_solver_error(self):
        analysis = analyse_fluid(roaming_sessions_model(2))
        with pytest.raises(SolverError, match="Ghost"):
            analysis.occupancy("Ghost")

    def test_diagnostics_record_the_converged_method(self):
        analysis = analyse_fluid(file_sink_model(3))
        assert analysis.solver in ("newton", "ode", "damped")
        assert analysis.diagnostics is not None
        assert analysis.diagnostics.method == analysis.solver


class TestMethods:
    @pytest.mark.parametrize("method", ["newton", "ode", "damped"])
    def test_each_method_alone_converges(self, method):
        nvf, _, n = nvf_of_model(roaming_sessions_model(3))
        x, diag = steady_fluid(nvf, n, methods=(method,))
        assert diag.method == method
        assert np.abs(nvf.vector_field(x)).max() < 1e-6

    def test_unknown_method_rejected(self):
        nvf, _, n = nvf_of_model(roaming_sessions_model(2))
        with pytest.raises(SolverError, match="unknown"):
            steady_fluid(nvf, n, methods=("simplex",))

    def test_methods_accept_comma_string(self):
        nvf, _, n = nvf_of_model(roaming_sessions_model(2))
        _, diag = steady_fluid(nvf, n, methods="ode,damped")
        assert diag.method == "ode"


class TestTrajectory:
    def test_transient_approaches_steady_state(self):
        nvf, _, n = nvf_of_model(client_server_family(5))
        times, xs = trajectory(nvf, n, t_end=60.0, n_points=50)
        assert times[0] == 0.0 and xs.shape == (50, nvf.dimension)
        x_star, _ = steady_fluid(nvf, n)
        assert np.abs(xs[-1] - x_star).max() < 1e-4

    def test_mass_conserved_along_the_way(self):
        nvf, _, _ = nvf_of_model(roaming_sessions_model(2))
        _, xs = trajectory(nvf, 50, t_end=10.0, n_points=20)
        assert np.allclose(xs.sum(axis=1), 50.0, atol=1e-6)


class TestCachingAndEvents:
    def test_cache_roundtrip_skips_recompute(self, tmp_path):
        model = file_sink_model(2)
        with use_cache(DerivationCache(tmp_path)):
            first = analyse_fluid(model, replicas=500)
            assert first.cache_key is not None
            assert first.nvf is not None  # computed fresh
            second = analyse_fluid(model, replicas=500)
        assert second.nvf is None  # rebuilt from the cached payload
        assert second.cache_key == first.cache_key
        np.testing.assert_allclose(second.x, first.x)
        assert second.all_throughputs() == first.all_throughputs()
        assert second.solver == first.solver

    def test_cache_key_distinguishes_replica_counts(self, tmp_path):
        model = file_sink_model(2)
        with use_cache(DerivationCache(tmp_path)):
            a = analyse_fluid(model, replicas=10)
            b = analyse_fluid(model, replicas=20)
        assert a.cache_key != b.cache_key
        assert not math.isclose(a.occupancy("Reader"), b.occupancy("Reader"))

    def test_fluid_step_events_emitted(self):
        nvf, _, _ = nvf_of_model(client_server_family(2))
        events = EventStream()
        with use_events(events):
            trajectory(nvf, 1000, t_end=500.0, n_points=400)
        steps = events.by_name("fluid.step")
        assert steps, "expected sampled fluid.step events"
        assert all("dx_inf" in e.fields and "nfev" in e.fields for e in steps)
