"""Unit tests for statechart → PEPA extraction and composition."""

import math

import pytest

from repro.exceptions import ExtractionError
from repro.extract import compose_state_machines, extract_state_machine
from repro.pepa.measures import analyse
from repro.pepa.semantics import derivatives
from repro.uml.statechart import StateMachine
from repro.workloads import build_client_statechart, build_server_statechart


class TestSingleMachine:
    def test_client_states_become_constants(self):
        extraction = extract_state_machine(build_client_statechart())
        env = extraction.environment
        for name in ("GenerateRequest", "WaitForResponse", "ProcessResponse"):
            assert extraction.constant_of_state(name) in env.components

    def test_start_constant_follows_initial(self):
        extraction = extract_state_machine(build_client_statechart())
        assert extraction.constant_of_state("GenerateRequest") == extraction.start_constant

    def test_transition_becomes_prefix_with_rate(self):
        extraction = extract_state_machine(build_client_statechart())
        env = extraction.environment
        body = env.resolve(extraction.constant_of_state("GenerateRequest"))
        [t] = derivatives(body, env)
        assert t.action == "request"
        assert math.isclose(t.rate.value, 2.0)

    def test_passive_rate_tag(self):
        extraction = extract_state_machine(build_client_statechart())
        env = extraction.environment
        body = env.resolve(extraction.constant_of_state("WaitForResponse"))
        [t] = derivatives(body, env)
        assert t.action == "response"
        assert t.rate.is_passive()

    def test_branching_state_becomes_choice(self):
        extraction = extract_state_machine(build_server_statechart(cached=True))
        env = extraction.environment
        body = env.resolve(extraction.constant_of_state("ProcessRequest"))
        actions = {t.action for t in derivatives(body, env)}
        assert actions == {"servlethit", "servletmiss"}

    def test_empty_machine_rejected(self):
        sm = StateMachine("Empty")
        sm.add_initial()
        with pytest.raises(ExtractionError, match="no simple states"):
            extract_state_machine(sm)

    def test_sink_state_rejected(self):
        sm = StateMachine("Sink")
        init = sm.add_initial()
        a = sm.add_state("A")
        b = sm.add_state("B")
        sm.add_transition(init, a, "")
        sm.add_transition(a, b, "go")
        with pytest.raises(ExtractionError, match="no outgoing"):
            extract_state_machine(sm)

    def test_missing_trigger_rejected(self):
        sm = StateMachine("M")
        init = sm.add_initial()
        a = sm.add_state("A")
        b = sm.add_state("B")
        sm.add_transition(init, a, "")
        sm.add_transition(a, b, "")
        sm.add_transition(b, a, "back")
        with pytest.raises(ExtractionError, match="no.*trigger"):
            extract_state_machine(sm)


class TestComposition:
    def test_shared_triggers_synchronise(self):
        model, extractions = compose_state_machines(
            [build_client_statechart(), build_server_statechart()]
        )
        from repro.pepa.syntax import Cooperation

        assert isinstance(model.system, Cooperation)
        assert model.system.actions == frozenset({"request", "response"})

    def test_none_policy_interleaves(self):
        model, _ = compose_state_machines(
            [build_client_statechart(), build_server_statechart()],
            cooperation="none",
        )
        assert model.system.actions == frozenset()

    def test_composed_model_solves(self):
        model, _ = compose_state_machines(
            [build_client_statechart(), build_server_statechart()]
        )
        analysis = analyse(model)
        assert analysis.n_states == 7
        total = sum(p for _, p in analysis.state_probabilities())
        assert math.isclose(total, 1.0, rel_tol=1e-9)

    def test_name_collisions_get_prefixes(self):
        m1 = build_client_statechart()
        m2 = build_client_statechart()
        m2.name = "Client2"
        # both machines have a GenerateRequest state; constants must differ
        model, extractions = compose_state_machines([m1, m2], cooperation="none")
        c1 = extractions[0].constant_of_state("GenerateRequest")
        c2 = extractions[1].constant_of_state("GenerateRequest")
        assert c1 != c2
        assert c1 in model.environment.components
        assert c2 in model.environment.components

    def test_no_machines_rejected(self):
        with pytest.raises(ExtractionError, match="no state machines"):
            compose_state_machines([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(ExtractionError, match="policy"):
            compose_state_machines([build_client_statechart()], cooperation="psychic")
