"""Unit tests for rate tables and .rates files."""

import pytest

from repro.exceptions import ExtractionError
from repro.extract import RateTable, load_rates, parse_rates
from repro.pepa.rates import ActiveRate, PassiveRate


class TestRateTable:
    def test_lookup_precedence_table_over_tag(self):
        table = RateTable.from_numbers({"go": 5.0})
        assert table.lookup("go", tagged="1.0") == ActiveRate(5.0)

    def test_lookup_tag_over_default(self):
        table = RateTable.from_numbers({})
        assert table.lookup("go", tagged="2.5") == ActiveRate(2.5)

    def test_lookup_default(self):
        table = RateTable.from_numbers({}, default=3.0)
        assert table.lookup("go") == ActiveRate(3.0)

    def test_passive_in_mapping(self):
        table = RateTable.from_numbers({"response": "T"})
        assert table.lookup("response") == PassiveRate(1.0)

    def test_passive_in_tag(self):
        table = RateTable.from_numbers({})
        assert table.lookup("response", tagged="infty") == PassiveRate(1.0)

    def test_bad_string_value_rejected(self):
        with pytest.raises(ExtractionError, match="number or 'T'"):
            RateTable.from_numbers({"go": "fast"})

    def test_bad_tag_rejected(self):
        table = RateTable.from_numbers({})
        with pytest.raises(ExtractionError, match="unparsable"):
            table.lookup("go", tagged="quick")

    def test_unused_tracking(self):
        table = RateTable.from_numbers({"a": 1.0, "b": 2.0})
        table.lookup("a")
        assert table.unused == {"b"}


class TestRatesFile:
    def test_parse_basic(self):
        table = parse_rates("a = 1.5\nb=2\n")
        assert table.lookup("a") == ActiveRate(1.5)
        assert table.lookup("b") == ActiveRate(2.0)

    def test_comments_and_blanks(self):
        table = parse_rates("# header\n\na = 1.0  # trailing\n")
        assert "a" in table
        assert len(table) == 1

    def test_passive_and_semicolons(self):
        table = parse_rates("response = T\nrequest = 2.0;\n")
        assert table.lookup("response").is_passive()
        assert table.lookup("request") == ActiveRate(2.0)

    def test_missing_equals_rejected(self):
        with pytest.raises(ExtractionError, match="line 1"):
            parse_rates("just a name")

    def test_duplicate_rejected(self):
        with pytest.raises(ExtractionError, match="duplicate"):
            parse_rates("a = 1\na = 2")

    def test_empty_name_rejected(self):
        with pytest.raises(ExtractionError, match="empty"):
            parse_rates(" = 2")

    def test_unparsable_value_rejected(self):
        with pytest.raises(ExtractionError, match="unparsable"):
            parse_rates("a = fast")

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "m.rates"
        path.write_text("x = 4.0\n")
        table = load_rates(path)
        assert table.lookup("x") == ActiveRate(4.0)


class TestDegenerateRates:
    """Zero/negative rates and passive-only cooperations — the edge
    cases the scenario fuzzer's rate regimes skirt, pinned explicitly."""

    def test_zero_rate_in_mapping_rejected(self):
        from repro.exceptions import RateError

        with pytest.raises(RateError, match="positive finite real"):
            RateTable.from_numbers({"go": 0.0})

    def test_negative_rate_in_mapping_rejected(self):
        from repro.exceptions import RateError

        with pytest.raises(RateError, match="positive finite real"):
            RateTable.from_numbers({"go": -1.0})

    def test_zero_rate_tag_rejected(self):
        from repro.exceptions import RateError

        table = RateTable.from_numbers({})
        with pytest.raises(RateError, match="positive finite real"):
            table.lookup("go", tagged="0")

    def test_zero_rate_in_rates_file_rejected(self):
        from repro.exceptions import RateError

        with pytest.raises(RateError, match="positive finite real"):
            parse_rates("a = 0\n")

    def test_passive_only_activity_fails_at_analysis_not_extraction(self):
        # a token whose only activity is passive extracts fine (the
        # paper defers rate checks to the solver), but the place-level
        # cooperation has no active partner, so analysis rejects it
        from repro.exceptions import WellFormednessError
        from repro.extract import extract_activity_diagram
        from repro.pepanets.measures import analyse_net
        from repro.uml.activity import ActivityGraph

        g = ActivityGraph("g")
        init = g.add_initial()
        act = g.add_action("ping")
        before = g.add_object("c: Client", atloc="Home")
        after = g.add_object("c*: Client", atloc="Home")
        g.connect(init, act)
        g.connect(before, act)
        g.connect(act, after)
        g.connect(act, g.add_final())
        result = extract_activity_diagram(
            g, RateTable.from_numbers({"ping": "T"}))
        with pytest.raises(WellFormednessError, match="no partner"):
            analyse_net(result.net)

    def test_passive_with_active_partner_is_fine(self):
        # the same passive activity synchronised with an active static
        # partner solves normally — passivity is relative, not absolute
        from repro.extract import extract_activity_diagram
        from repro.pepanets.measures import analyse_net
        from repro.uml.activity import ActivityGraph

        g = ActivityGraph("g")
        init = g.add_initial()
        act = g.add_action("ping")
        before = g.add_object("c: Client", atloc="Home")
        after = g.add_object("c*: Client", atloc="Home")
        g.connect(init, act)
        g.connect(before, act)
        g.connect(act, after)
        server = g.add_action("ping")
        server.set_tag("performedBy", "Home")
        g.connect(act, server)
        g.connect(server, g.add_final())
        result = extract_activity_diagram(
            g, RateTable.from_numbers({"ping": 3.0}))
        analysis = analyse_net(result.net)
        assert analysis.throughput("ping") > 0
