"""Tests for multi-token extraction (the rendezvous workload) and the
unordered-selection firing rule it depends on."""

import math

import pytest

from repro.extract import extract_activity_diagram
from repro.pepanets import (
    DerivativeSets,
    analyse_net,
    check_net,
    firing_instances,
    parse_net,
)
from repro.workloads import MEETING_RATES, build_meeting_diagram


@pytest.fixture(scope="module")
def meeting():
    return extract_activity_diagram(build_meeting_diagram(), MEETING_RATES)


class TestMeetingExtraction:
    def test_two_tokens(self, meeting):
        assert set(meeting.token_families) == {"a", "b"}
        assert meeting.token_families["a"] != meeting.token_families["b"]

    def test_places(self, meeting):
        assert set(meeting.net.places) == {"lab", "hub", "office"}

    def test_shared_activity_in_cooperation_set(self, meeting):
        """exchange_data must synchronise the two agents' cells."""
        hub = meeting.net.places["hub"]
        assert "exchange_data" in str(hub.template)
        from repro.pepa.syntax import Cooperation

        assert isinstance(hub.template, Cooperation)
        assert "exchange_data" in hub.template.actions

    def test_joint_move_is_multi_arc_transition(self, meeting):
        home = next(
            t for t in meeting.net.transitions.values() if t.action == "travel_home"
        )
        assert home.inputs == ("hub", "hub")
        assert home.outputs == ("lab", "lab")
        assert home.is_balanced()

    def test_net_well_formed(self, meeting):
        report = check_net(meeting.net)
        assert report.ok
        assert report.warnings == []

    def test_cycle_throughputs_all_equal(self, meeting):
        analysis = analyse_net(meeting.net)
        values = list(analysis.all_throughputs().values())
        for v in values[1:]:
            assert math.isclose(v, values[0], rel_tol=1e-9)

    def test_two_tokens_conserved(self, meeting):
        analysis = analyse_net(meeting.net)
        total = sum(analysis.location_distribution().values())
        assert math.isclose(total, 2.0, rel_tol=1e-9)

    def test_rendezvous_requires_both_agents(self, meeting):
        """exchange_data only ever happens in markings where both cells
        at the hub are occupied."""
        analysis = analyse_net(meeting.net)
        space = analysis.space
        for arc in space.arcs:
            if arc.action == "exchange_data":
                marking = space.markings[arc.source]
                hub = str(marking.state_of("hub"))
                assert "[_]" not in hub.replace(" ", "")


class TestUnorderedSelectionRule:
    def test_joint_move_no_double_counting(self):
        net = parse_net(
            """
            Tok = (swap, 1).Tok;
            A[Tok, Tok] = Tok[_] || Tok[_];
            B[_, _] = Tok[_] || Tok[_];
            swap = (swap, 1) : A, A -> B, B;
            """
        )
        instances = firing_instances(
            net, net.initial_marking(), net.environment, DerivativeSets(net.environment)
        )
        # one physical selection (both tokens), two phi bijections
        assert len(instances) == 2
        assert math.isclose(sum(i.rate for i in instances), 1.0, rel_tol=1e-12)

    def test_choose_two_of_three_weights(self):
        """Three eligible tokens with rates 1, 1, 2: the pair weights
        are proportional to the rate products 1, 2, 2."""
        net = parse_net(
            """
            Slow = (go, 1).Slow;
            Fast = (go, 2).Fast;
            A[Slow, Slow, Fast] = Slow[_] || (Slow[_] || Fast[_]);
            B[_, _] = Slow[_] || Fast[_];
            move = (go, 10) : A, A -> B, B;
            """
        )
        instances = firing_instances(
            net, net.initial_marking(), net.environment, DerivativeSets(net.environment)
        )
        # raw selections and product weights: {s1,s2} w=1, {s1,f} w=2,
        # {s2,f} w=2 (total 5).  B offers one Slow and one Fast cell, so
        # the all-Slow pair is type-blocked and only the mixed pairs fire.
        assert len(instances) == 2
        assert math.isclose(instances[0].rate, instances[1].rate, rel_tol=1e-12)
        # floor = min(label 10, place apparent 1+1+2) = 4; each mixed
        # pair carries share 2/5 of it.
        total = sum(i.rate for i in instances)
        assert math.isclose(total, 4.0 * 4.0 / 5.0, rel_tol=1e-12)

    def test_single_place_rule_unchanged(self):
        """k=1 reduces to the classic apparent-rate ratio."""
        net = parse_net(
            """
            Tok = (go, 1).Done + (go, 3).Done;
            Done = (rest, 1).Done;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            move = (go, 8) : A -> B;
            """
        )
        instances = firing_instances(
            net, net.initial_marking(), net.environment, DerivativeSets(net.environment)
        )
        rates = sorted(i.rate for i in instances)
        assert math.isclose(rates[0], 1.0)
        assert math.isclose(rates[1], 3.0)
