"""Unit tests for the Section 3 mapping (activity diagram → PEPA net)."""

import math

import pytest

from repro.exceptions import ExtractionError
from repro.extract import extract_activity_diagram
from repro.pepanets import analyse_net, check_net, explore_net
from repro.uml.activity import ActivityGraph
from repro.workloads import (
    FILE_RATES,
    IM_RATES,
    PDA_RATES,
    build_file_activity_diagram,
    build_instant_message_diagram,
    build_pda_activity_diagram,
)


class TestMappingRules:
    """Each row of the paper's translation table."""

    def test_locations_become_places(self):
        result = extract_activity_diagram(build_instant_message_diagram(), IM_RATES)
        assert set(result.net.places) == {"p1", "p2"}

    def test_moves_become_net_transitions(self):
        result = extract_activity_diagram(build_instant_message_diagram(), IM_RATES)
        moves = [t for t in result.net.transitions.values() if t.action == "transmit"]
        assert len(moves) == 1
        assert moves[0].inputs == ("p1",)
        assert moves[0].outputs == ("p2",)

    def test_objects_become_tokens(self):
        result = extract_activity_diagram(build_instant_message_diagram(), IM_RATES)
        assert list(result.token_families) == ["f"]
        family = result.token_families["f"]
        assert family in result.net.environment.components

    def test_object_activities_become_token_activities(self):
        result = extract_activity_diagram(build_instant_message_diagram(), IM_RATES)
        family = result.token_families["f"]
        env = result.net.environment
        alphabet = env.alphabet(env.resolve(family))
        for action in ("openwrite", "write", "close", "transmit", "openread", "read"):
            assert action in alphabet

    def test_first_location_hosts_initial_token(self):
        result = extract_activity_diagram(build_instant_message_diagram(), IM_RATES)
        marking = result.net.initial_marking()
        from repro.pepanets import find_cells

        p1_cells = find_cells(marking.state_of("p1"))
        p2_cells = find_cells(marking.state_of("p2"))
        assert any(c.content is not None for _, c in p1_cells)
        assert all(c.content is None for _, c in p2_cells)

    def test_no_atloc_yields_single_place(self):
        result = extract_activity_diagram(build_file_activity_diagram(), FILE_RATES)
        assert list(result.net.places) == ["local"]
        assert not [t for t in result.net.transitions.values() if t.action != "reset_f"]

    def test_extracted_net_is_well_formed(self):
        for build, rates in (
            (build_file_activity_diagram, FILE_RATES),
            (build_instant_message_diagram, IM_RATES),
            (build_pda_activity_diagram, PDA_RATES),
        ):
            result = extract_activity_diagram(build(), rates)
            assert check_net(result.net).ok


class TestRecurrence:
    def test_reset_firing_added_for_displaced_token(self):
        result = extract_activity_diagram(build_instant_message_diagram(), IM_RATES)
        assert result.reset_actions == ["reset_f"]
        resets = [t for t in result.net.transitions.values() if t.action == "reset_f"]
        assert len(resets) == 1
        assert resets[0].inputs == ("p2",)
        assert resets[0].outputs == ("p1",)

    def test_no_reset_for_home_token(self):
        result = extract_activity_diagram(build_file_activity_diagram(), FILE_RATES)
        assert result.reset_actions == []

    def test_loop_false_rejects_acyclic_diagram(self):
        with pytest.raises(ExtractionError, match="loop"):
            extract_activity_diagram(build_file_activity_diagram(), FILE_RATES, loop=False)

    def test_extracted_nets_are_recurrent(self):
        result = extract_activity_diagram(build_pda_activity_diagram(), PDA_RATES)
        analysis = analyse_net(result.net, reducible="error")
        assert analysis.n_states > 0


class TestRates:
    def test_rates_applied_to_token_activities(self):
        result = extract_activity_diagram(build_instant_message_diagram(), IM_RATES)
        env = result.net.environment
        family = result.token_families["f"]
        from repro.pepa.semantics import derivatives

        [first] = derivatives(env.resolve(family), env)
        assert first.action == "openwrite"
        assert math.isclose(first.rate.value, IM_RATES["openwrite"])

    def test_default_rate_when_unspecified(self):
        result = extract_activity_diagram(build_instant_message_diagram(), {})
        env = result.net.environment
        from repro.pepa.semantics import derivatives

        [first] = derivatives(env.resolve(result.token_families["f"]), env)
        assert math.isclose(first.rate.value, 1.0)

    def test_rate_tags_used(self):
        g = ActivityGraph("tagged")
        init = g.add_initial()
        a = g.add_action("work", rate=7.0)
        obj = g.add_object("o: OBJ")
        g.connect(init, a)
        g.connect(obj, a)
        result = extract_activity_diagram(g)
        env = result.net.environment
        from repro.pepa.semantics import derivatives

        [t] = derivatives(env.resolve(result.token_families["o"]), env)
        assert math.isclose(t.rate.value, 7.0)


class TestChoice:
    def test_decision_produces_choice(self):
        result = extract_activity_diagram(build_file_activity_diagram(), FILE_RATES)
        env = result.net.environment
        family = result.token_families["f"]
        from repro.pepa.semantics import derivatives

        first = derivatives(env.resolve(family), env)
        assert {t.action for t in first} == {"openread", "openwrite"}

    def test_implicit_choice_after_move(self):
        result = extract_activity_diagram(build_pda_activity_diagram(), PDA_RATES)
        space = explore_net(result.net)
        actions = space.actions()
        assert "abort_download" in actions and "continue_download" in actions


class TestStaticComponents:
    def build_with_static(self) -> ActivityGraph:
        """An object-less 'log' activity between two object activities."""
        g = ActivityGraph("with-static")
        init = g.add_initial()
        work = g.add_action("work")
        log = g.add_action("log")  # no object flow: static component
        done = g.add_action("finish")
        g.connect(init, work)
        g.connect(work, log)
        g.connect(log, done)
        o1 = g.add_object("o: OBJ", atloc="site")
        o2 = g.add_object("o*: OBJ", atloc="site")
        g.connect(o1, work)
        g.connect(work, o2)
        o3 = g.add_object("o**: OBJ", atloc="site")
        g.connect(o2, done)
        g.connect(done, o3)
        return g

    def test_objectless_activity_becomes_static_component(self):
        result = extract_activity_diagram(self.build_with_static())
        assert "site" in result.static_components
        static = result.static_components["site"]
        env = result.net.environment
        assert "log" in env.alphabet(env.resolve(static))

    def test_static_component_lives_in_place_context(self):
        result = extract_activity_diagram(self.build_with_static())
        template = str(result.net.places["site"].template)
        assert result.static_components["site"] in template

    def test_performed_by_tag_overrides_heuristic(self):
        """Section 6's suggested refinement: an explicit performedBy tag
        places the object-less activity regardless of control flow."""
        g = self.build_with_static()
        # add a remote location and pin 'log' to it
        remote_obj = g.add_object("r: OBJ", atloc="datacentre")
        g.connect(g.action_by_name("finish"), remote_obj)
        g.action_by_name("log").set_tag("performedBy", "datacentre")
        result = extract_activity_diagram(g)
        assert "datacentre" in result.static_components
        assert "site" not in result.static_components

    def test_performed_by_unknown_location_rejected(self):
        g = self.build_with_static()
        g.action_by_name("log").set_tag("performedBy", "narnia")
        with pytest.raises(ExtractionError, match="narnia"):
            extract_activity_diagram(g)

    def test_static_assigned_to_last_moved_location(self):
        """An object-less activity after a move belongs to the move's
        target location."""
        g = ActivityGraph("moving-static")
        init = g.add_initial()
        move = g.add_action("go", move=True)
        log = g.add_action("log_arrival")  # object-less, after the move
        g.connect(init, move)
        g.connect(move, log)
        a0 = g.add_object("o: OBJ", atloc="here")
        a1 = g.add_object("o: OBJ", atloc="there")
        g.connect(a0, move)
        g.connect(move, a1)
        result = extract_activity_diagram(g)
        assert "there" in result.static_components
        assert "here" not in result.static_components


class TestDiagnostics:
    def test_invalid_diagram_rejected(self):
        g = ActivityGraph("bad")
        g.add_action("a")  # no initial node
        with pytest.raises(ExtractionError, match="restrictions"):
            extract_activity_diagram(g)

    def test_no_objects_rejected(self):
        g = ActivityGraph("empty")
        init = g.add_initial()
        a = g.add_action("a")
        g.connect(init, a)
        with pytest.raises(ExtractionError, match="no object flows"):
            extract_activity_diagram(g)

    def test_conflicting_classes_rejected(self):
        g = ActivityGraph("conflict")
        init = g.add_initial()
        a = g.add_action("a")
        g.connect(init, a)
        g.connect(g.add_object("o: FIRST"), a)
        g.connect(a, g.add_object("o: SECOND"))
        with pytest.raises(ExtractionError, match="two classes"):
            extract_activity_diagram(g)

    def test_move_and_plain_name_clash_rejected(self):
        g = ActivityGraph("clash")
        init = g.add_initial()
        mv = g.add_action("jump", move=True)
        plain = g.add_action("jump")
        g.connect(init, mv)
        g.connect(mv, plain)
        o0 = g.add_object("o: OBJ", atloc="a")
        o1 = g.add_object("o: OBJ", atloc="b")
        g.connect(o0, mv)
        g.connect(mv, o1)
        g.connect(o1, plain)
        with pytest.raises(ExtractionError, match="rename"):
            extract_activity_diagram(g)

    def test_pepa_action_of_unknown_node(self):
        result = extract_activity_diagram(build_file_activity_diagram(), FILE_RATES)
        with pytest.raises(ExtractionError):
            result.pepa_action_of("no-such-id")
