"""Tests for fork/join extraction (the paper's Section 6 future-work
item, implemented here)."""

import math

import pytest

from repro.exceptions import ExtractionError
from repro.extract import extract_activity_diagram
from repro.pepanets import analyse_net, explore_net
from repro.uml.activity import ActivityGraph
from repro.uml.validate import validate_for_extraction


def parallel_prep_diagram() -> ActivityGraph:
    """Two objects prepared on concurrent branches, then a joint step:

        init → fork →(branch 1) cook   →(join)→ serve
                    →(branch 2) brew   →
    both at one location, so the join synchronises through the place.
    """
    g = ActivityGraph("kitchen")
    init = g.add_initial()
    fork = g.add_fork()
    cook = g.add_action("cook")
    brew = g.add_action("brew")
    join = g.add_join()
    serve = g.add_action("serve")
    g.connect(init, fork)
    g.connect(fork, cook)
    g.connect(fork, brew)
    g.connect(cook, join)
    g.connect(brew, join)
    g.connect(join, serve)

    d0 = g.add_object("d: DISH", atloc="kitchen")
    d1 = g.add_object("d*: DISH", atloc="kitchen")
    g.connect(d0, cook)
    g.connect(cook, d1)
    t0 = g.add_object("t: TEA", atloc="kitchen")
    t1 = g.add_object("t*: TEA", atloc="kitchen")
    g.connect(t0, brew)
    g.connect(brew, t1)
    # both objects take part in serving
    d2 = g.add_object("d**: DISH", atloc="kitchen")
    t2 = g.add_object("t**: TEA", atloc="kitchen")
    g.connect(d1, serve)
    g.connect(t1, serve)
    g.connect(serve, d2)
    g.connect(serve, t2)
    return g


RATES = {"cook": 2.0, "brew": 3.0, "serve": 5.0}


class TestValidation:
    def test_diagram_passes_validation(self):
        assert validate_for_extraction(parallel_prep_diagram()) == []

    def test_degenerate_fork_flagged(self):
        g = ActivityGraph("g")
        init = g.add_initial()
        fork = g.add_fork()
        a = g.add_action("a")
        g.connect(init, fork)
        g.connect(fork, a)
        problems = validate_for_extraction(g)
        assert any("fork" in p for p in problems)

    def test_degenerate_join_flagged(self):
        g = ActivityGraph("g")
        init = g.add_initial()
        join = g.add_join()
        a = g.add_action("a")
        g.connect(init, a)
        g.connect(a, join)
        problems = validate_for_extraction(g)
        assert any("join" in p for p in problems)


class TestExtraction:
    def test_tokens_follow_their_branches(self):
        result = extract_activity_diagram(parallel_prep_diagram(), RATES)
        env = result.net.environment
        dish = result.token_families["d"]
        tea = result.token_families["t"]
        dish_alpha = env.alphabet(env.resolve(dish))
        tea_alpha = env.alphabet(env.resolve(tea))
        assert "cook" in dish_alpha and "brew" not in dish_alpha
        assert "brew" in tea_alpha and "cook" not in tea_alpha

    def test_join_action_shared(self):
        result = extract_activity_diagram(parallel_prep_diagram(), RATES)
        env = result.net.environment
        for obj in ("d", "t"):
            family = result.token_families[obj]
            assert "join_1" in env.alphabet(env.resolve(family))
        # the place context synchronises on it
        place = result.net.places["kitchen"]
        assert "join_1" in place.template.actions

    def test_barrier_semantics(self):
        """Neither token can serve before both finish their branch: no
        marking enables serve together with cook or brew pending."""
        result = extract_activity_diagram(parallel_prep_diagram(), RATES)
        space = explore_net(result.net)
        # serve only ever follows the synchronised join
        serve_sources = {a.source for a in space.arcs if a.action == "serve"}
        join_targets = {a.target for a in space.arcs if a.action == "join_1"}
        assert serve_sources <= join_targets

    def test_cycle_throughputs(self):
        result = extract_activity_diagram(parallel_prep_diagram(), RATES)
        analysis = analyse_net(result.net)
        ths = analysis.all_throughputs()
        # one cook, one brew, one join, one serve per cycle
        assert math.isclose(ths["cook"], ths["brew"], rel_tol=1e-9)
        assert math.isclose(ths["cook"], ths["serve"], rel_tol=1e-9)
        assert math.isclose(ths["cook"], ths["join_1"], rel_tol=1e-9)

    def test_parallelism_speeds_up_vs_sequential(self):
        """The whole point of the fork: mean cycle time is shorter than
        the sequential cook-then-brew arrangement."""
        parallel = extract_activity_diagram(parallel_prep_diagram(), RATES,
                                            join_rate=1e6)
        tp_parallel = analyse_net(parallel.net).throughput("serve")

        g = ActivityGraph("sequential")
        init = g.add_initial()
        cook = g.add_action("cook")
        brew = g.add_action("brew")
        serve = g.add_action("serve")
        g.connect(init, cook)
        g.connect(cook, brew)
        g.connect(brew, serve)
        d0 = g.add_object("d: DISH", atloc="kitchen")
        d1 = g.add_object("d*: DISH", atloc="kitchen")
        d2 = g.add_object("d**: DISH", atloc="kitchen")
        g.connect(d0, cook)
        g.connect(cook, d1)
        g.connect(d1, brew)
        g.connect(brew, d2)
        g.connect(d2, serve)
        d3 = g.add_object("d***: DISH", atloc="kitchen")
        g.connect(serve, d3)
        tp_sequential = analyse_net(
            extract_activity_diagram(g, RATES).net
        ).throughput("serve")
        assert tp_parallel > tp_sequential


class TestRestrictions:
    def test_object_spanning_branches_rejected(self):
        g = parallel_prep_diagram()
        # wire the dish into the brew branch too
        brew = g.action_by_name("brew")
        extra = g.add_object("d*: DISH", atloc="kitchen")
        g.connect(extra, brew)
        with pytest.raises(ExtractionError, match="branches"):
            extract_activity_diagram(g, RATES)

    def test_nested_forks_rejected(self):
        g = ActivityGraph("nested")
        init = g.add_initial()
        outer = g.add_fork()
        inner = g.add_fork()
        a, b, c = g.add_action("a"), g.add_action("b"), g.add_action("c")
        join = g.add_join()
        g.connect(init, outer)
        g.connect(outer, inner)
        g.connect(outer, a)
        g.connect(inner, b)
        g.connect(inner, c)
        g.connect(a, join)
        g.connect(b, join)
        g.connect(c, join)
        obj = g.add_object("o: OBJ", atloc="p")
        g.connect(obj, a)
        with pytest.raises(ExtractionError, match="nested"):
            extract_activity_diagram(g, RATES)

    def test_branches_to_different_joins_rejected(self):
        g = ActivityGraph("diverging")
        init = g.add_initial()
        fork = g.add_fork()
        a, b = g.add_action("a"), g.add_action("b")
        j1, j2 = g.add_join(), g.add_join()
        g.connect(init, fork)
        g.connect(fork, a)
        g.connect(fork, b)
        g.connect(a, j1)
        g.connect(b, j2)
        # make each join structurally valid (>= 2 incoming)
        x, y = g.add_action("x"), g.add_action("y")
        g.connect(x, j1)
        g.connect(y, j2)
        obj = g.add_object("o: OBJ", atloc="p")
        g.connect(obj, a)
        with pytest.raises(ExtractionError, match="exactly one join"):
            extract_activity_diagram(g, RATES)

    def test_dislocated_join_participants_rejected(self):
        """One branch moves its object elsewhere: the participants are
        no longer co-located at the join."""
        g = ActivityGraph("dislocated")
        init = g.add_initial()
        fork = g.add_fork()
        stay = g.add_action("stay_work")
        move = g.add_action("go", move=True)
        join = g.add_join()
        after = g.add_action("after")
        g.connect(init, fork)
        g.connect(fork, stay)
        g.connect(fork, move)
        g.connect(stay, join)
        g.connect(move, join)
        g.connect(join, after)
        a0 = g.add_object("a: OBJ", atloc="here")
        a1 = g.add_object("a*: OBJ", atloc="here")
        g.connect(a0, stay)
        g.connect(stay, a1)
        b0 = g.add_object("b: OBJ", atloc="here")
        b1 = g.add_object("b: OBJ", atloc="there")
        g.connect(b0, move)
        g.connect(move, b1)
        # both continue into 'after' so both participate in the join
        g.connect(a1, after)
        g.connect(b1, after)
        a2 = g.add_object("a**: OBJ", atloc="here")
        b2 = g.add_object("b*: OBJ", atloc="there")
        g.connect(after, a2)
        g.connect(after, b2)
        with pytest.raises(ExtractionError, match="co-located"):
            extract_activity_diagram(g, RATES)
