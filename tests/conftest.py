"""Shared fixtures: canonical models used across the test suite, plus
the golden-file comparison helper (``--update-goldens`` regenerates the
checked-in expectations under ``tests/goldens/``)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.pepa import parse_model

GOLDENS_DIR = Path(__file__).resolve().parent / "goldens"


@pytest.fixture(autouse=True)
def _ambient_isolation():
    """Every test starts and ends with the ambient installations off.

    The obs collectors and the derivation cache are process-wide
    singletons; a test that installs one and fails before restoring it
    would poison every later test in the same process.  Under
    ``pytest-xdist`` each worker runs an arbitrary slice of the suite,
    so cross-test leakage turns into order-dependent flakiness — this
    fixture makes leakage impossible instead of unlikely.
    """
    from repro.batch.cache import set_cache
    from repro.obs import reset_ambient
    from repro.resilience.faultinject import set_batch_faults

    reset_ambient()
    set_cache(None)
    set_batch_faults(None)
    yield
    reset_ambient()
    set_cache(None)
    set_batch_faults(None)


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current pipeline output "
        "instead of comparing against them",
    )


def _assert_matches(expected, actual, path="$", rtol=1e-9, atol=1e-12):
    """Recursive structural equality with float tolerance."""
    if isinstance(expected, float) or isinstance(actual, float):
        assert isinstance(actual, (int, float)) and isinstance(expected, (int, float)), (
            f"{path}: type mismatch {expected!r} vs {actual!r}"
        )
        assert abs(actual - expected) <= atol + rtol * abs(expected), (
            f"{path}: {actual!r} != golden {expected!r}"
        )
    elif isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected an object"
        assert sorted(expected) == sorted(actual), (
            f"{path}: keys {sorted(actual)} != golden {sorted(expected)}"
        )
        for key in expected:
            _assert_matches(expected[key], actual[key], f"{path}.{key}", rtol, atol)
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected a list"
        assert len(expected) == len(actual), (
            f"{path}: {len(actual)} items != golden {len(expected)}"
        )
        for i, (e, a) in enumerate(zip(expected, actual)):
            _assert_matches(e, a, f"{path}[{i}]", rtol, atol)
    else:
        assert expected == actual, f"{path}: {actual!r} != golden {expected!r}"


@pytest.fixture
def golden(request):
    """Compare a JSON-ready document against ``tests/goldens/<name>.json``.

    Run ``pytest --update-goldens`` after an intentional numerical or
    structural change to regenerate the expectation files.
    """
    update = request.config.getoption("--update-goldens")

    def check(name: str, document, *, rtol: float = 1e-9) -> None:
        # names may carry subdirectories, e.g. "corpus/seed-17"
        path = GOLDENS_DIR / f"{name}.json"
        if update:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publication: concurrent xdist workers regenerating
            # the same golden must never interleave partial writes.
            import os
            import tempfile

            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{path.stem}.", suffix=".tmp"
            )
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(document, indent=2, sort_keys=True) + "\n")
            os.replace(tmp_name, path)
            return
        if not path.exists():
            pytest.fail(
                f"golden file {path} is missing; run pytest --update-goldens "
                "to create it, then review and commit the result"
            )
        _assert_matches(json.loads(path.read_text()), document, rtol=rtol)

    return check


FILE_MODEL_SRC = """
// Figure 1 of the paper: the File protocol with a passive reader.
r_o = 2.0; r_r = 10.0; r_w = 4.0; r_c = 1.0;
File = (openread, r_o).InStream + (openwrite, r_o).OutStream;
InStream = (read, r_r).InStream + (close, r_c).File;
OutStream = (write, r_w).OutStream + (close, r_c).File;
FileReader = (openread, T).Reading + (openwrite, T).Writing;
Reading = (read, T).Reading + (close, T).FileReader;
Writing = (write, T).Writing + (close, T).FileReader;
File <openread, openwrite, read, write, close> FileReader
"""

TWO_STATE_SRC = """
r_up = 3.0; r_down = 1.0;
On = (switch_off, r_down).Off;
Off = (switch_on, r_up).On;
On
"""


@pytest.fixture
def file_model():
    return parse_model(FILE_MODEL_SRC)


@pytest.fixture
def two_state_model():
    return parse_model(TWO_STATE_SRC)
