"""Shared fixtures: canonical models used across the test suite."""

from __future__ import annotations

import pytest

from repro.pepa import parse_model


FILE_MODEL_SRC = """
// Figure 1 of the paper: the File protocol with a passive reader.
r_o = 2.0; r_r = 10.0; r_w = 4.0; r_c = 1.0;
File = (openread, r_o).InStream + (openwrite, r_o).OutStream;
InStream = (read, r_r).InStream + (close, r_c).File;
OutStream = (write, r_w).OutStream + (close, r_c).File;
FileReader = (openread, T).Reading + (openwrite, T).Writing;
Reading = (read, T).Reading + (close, T).FileReader;
Writing = (write, T).Writing + (close, T).FileReader;
File <openread, openwrite, read, write, close> FileReader
"""

TWO_STATE_SRC = """
r_up = 3.0; r_down = 1.0;
On = (switch_off, r_down).Off;
Off = (switch_on, r_up).On;
On
"""


@pytest.fixture
def file_model():
    return parse_model(FILE_MODEL_SRC)


@pytest.fixture
def two_state_model():
    return parse_model(TWO_STATE_SRC)
