"""Cross-formalism integration tests.

The same system modelled three ways must agree:

* a single-token courier ring as a **PEPA net** (tokens with identity),
* the identitiless **stochastic Petri net** of its abstraction,
* the plain **PEPA** cycle the token's behaviour reduces to.

This triangulates the three derivation pipelines — any systematic error
in one shows up as disagreement here.
"""

import math

import numpy as np
import pytest

from repro.ctmc import steady_state, throughput
from repro.pepa.ctmcgen import ctmc_of_model
from repro.pepa.parser import parse_model
from repro.pepanets.abstraction import to_petri_net
from repro.pepanets.measures import ctmc_of_net
from repro.petri import StochasticPetriNet, spn_to_ctmc
from repro.workloads import courier_ring_net

N_PLACES = 5
HOP_RATE = 2.0


@pytest.fixture(scope="module")
def three_chains():
    # 1. PEPA net
    net = courier_ring_net(N_PLACES, 1, hop_rate=HOP_RATE)
    _, net_chain = ctmc_of_net(net)
    # 2. identitiless SPN via the abstraction
    spn = StochasticPetriNet(to_petri_net(net))
    _, spn_chain = spn_to_ctmc(spn)
    # 3. plain PEPA: the token's location as a 5-state cycle
    lines = [
        f"L{i} = (hop, {HOP_RATE}).L{(i + 1) % N_PLACES};" for i in range(N_PLACES)
    ]
    lines.append("L0")
    _, pepa_chain = ctmc_of_model(parse_model("\n".join(lines)))
    return net_chain, spn_chain, pepa_chain


class TestAgreement:
    def test_state_counts_agree(self, three_chains):
        net_chain, spn_chain, pepa_chain = three_chains
        assert net_chain.n_states == spn_chain.n_states == pepa_chain.n_states == N_PLACES

    def test_stationary_distributions_agree(self, three_chains):
        net_chain, spn_chain, pepa_chain = three_chains
        # all uniform by symmetry; compare as sorted vectors
        for chain in three_chains:
            pi = steady_state(chain)
            assert np.allclose(pi, np.full(N_PLACES, 1 / N_PLACES), atol=1e-9)

    def test_hop_throughput_agrees(self, three_chains):
        net_chain, spn_chain, pepa_chain = three_chains
        values = [throughput(net_chain, "hop"), throughput(pepa_chain, "hop")]
        # the SPN names transitions hop_0..hop_4; total them
        spn_total = sum(
            throughput(spn_chain, f"hop_{i}") for i in range(N_PLACES)
        )
        values.append(spn_total)
        for v in values[1:]:
            assert math.isclose(v, values[0], rel_tol=1e-9)

    def test_generators_are_isomorphic(self, three_chains):
        """Same sorted off-diagonal rate multiset and exit-rate multiset
        — the chains are the same up to state relabelling."""
        signatures = []
        for chain in three_chains:
            _, _, vals = chain.to_coo_triplets()
            signatures.append(
                (sorted(np.round(vals, 12)), sorted(np.round(chain.exit_rates(), 12)))
            )
        assert signatures[0] == signatures[1] == signatures[2]


class TestDivergenceWhereExpected:
    def test_token_state_distinguishes_pepa_net_from_spn(self):
        """Give the token internal state (work-then-hop): the PEPA net
        tracks it (2x states), the identitiless abstraction cannot."""
        from repro.pepanets import parse_net, explore_net

        net = parse_net(
            """
            Tok = (work, 1.0).Ready;
            Ready = (hop, 2.0).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            ab = (hop, 2.0) : A -> B;
            ba = (hop, 2.0) : B -> A;
            """
        )
        concrete = explore_net(net)
        from repro.petri import build_reachability_graph

        abstract_graph = build_reachability_graph(to_petri_net(net))
        assert concrete.size == 4      # (A|B) x (Tok|Ready)
        assert abstract_graph.size == 2  # token position only
