"""Merging per-task observability snapshots, and the ambient reset."""

from __future__ import annotations

import pytest

from repro.obs import (
    EventStream,
    MetricsRegistry,
    Tracer,
    get_events,
    get_metrics,
    get_tracer,
    merge_events,
    merge_metrics,
    merge_traces,
    reset_ambient,
    set_events,
    set_metrics,
    set_tracer,
)


def _metrics_snapshot(counter=0, gauge=None, histogram=()):
    registry = MetricsRegistry()
    if counter:
        registry.counter("requests").inc(counter)
    if gauge is not None:
        registry.gauge("residual").set(gauge)
    for value in histogram:
        registry.histogram("latency").observe(value)
    return registry.as_dict()


def test_merge_metrics_sums_counters():
    merged = merge_metrics([_metrics_snapshot(counter=2), _metrics_snapshot(counter=3)])
    assert merged["schema"] == "repro-metrics/1"
    assert merged["metrics"]["requests"]["value"] == 5


def test_merge_metrics_gauge_takes_last_non_none():
    merged = merge_metrics([_metrics_snapshot(gauge=1.5), _metrics_snapshot(counter=1)])
    assert merged["metrics"]["residual"]["value"] == 1.5


def test_merge_metrics_combines_histograms():
    merged = merge_metrics([
        _metrics_snapshot(histogram=[1.0, 3.0]),
        _metrics_snapshot(histogram=[5.0]),
    ])
    histogram = merged["metrics"]["latency"]
    assert histogram["count"] == 3
    assert histogram["min"] == 1.0
    assert histogram["max"] == 5.0
    assert histogram["mean"] == pytest.approx(3.0)


def test_merge_metrics_rejects_foreign_schema():
    with pytest.raises(ValueError):
        merge_metrics([{"schema": "something-else", "metrics": {}}])


def test_merge_traces_concatenates_in_order():
    documents = []
    for name in ("first", "second"):
        tracer = Tracer()
        with tracer.span(name):
            pass
        documents.append(tracer.to_dict())
    merged = merge_traces(documents)
    assert merged["schema"] == "repro-trace/1"
    assert [root["name"] for root in merged["traces"]] == ["first", "second"]


def test_merge_events_tags_each_event_with_its_task():
    def events_of(name):
        stream = EventStream()
        stream.emit(name, value=1)
        return stream.to_dicts()

    merged = merge_events([("a", events_of("x")), ("b", events_of("y"))])
    assert [(e["task"], e["event"]) for e in merged] == [("a", "x"), ("b", "y")]


def test_reset_ambient_restores_null_collectors():
    from repro.obs import NULL_EVENTS, NULL_METRICS, NULL_TRACER

    set_tracer(Tracer())
    set_metrics(MetricsRegistry())
    set_events(EventStream())
    assert get_tracer() is not NULL_TRACER
    reset_ambient()
    assert get_tracer() is NULL_TRACER
    assert get_metrics() is NULL_METRICS
    assert get_events() is NULL_EVENTS


def test_reset_ambient_is_idempotent():
    from repro.obs import NULL_TRACER

    reset_ambient()
    reset_ambient()
    assert get_tracer() is NULL_TRACER
