"""Merging per-task observability snapshots, and the ambient reset."""

from __future__ import annotations

import pytest

from repro.obs import (
    EventStream,
    MetricsRegistry,
    Tracer,
    get_events,
    get_metrics,
    get_tracer,
    merge_events,
    merge_metrics,
    merge_profiles,
    merge_traces,
    reset_ambient,
    set_events,
    set_metrics,
    set_tracer,
)


def _metrics_snapshot(counter=0, gauge=None, histogram=()):
    registry = MetricsRegistry()
    if counter:
        registry.counter("requests").inc(counter)
    if gauge is not None:
        registry.gauge("residual").set(gauge)
    for value in histogram:
        registry.histogram("latency").observe(value)
    return registry.as_dict()


def test_merge_metrics_sums_counters():
    merged = merge_metrics([_metrics_snapshot(counter=2), _metrics_snapshot(counter=3)])
    assert merged["schema"] == "repro-metrics/1"
    assert merged["metrics"]["requests"]["value"] == 5


def test_merge_metrics_gauge_takes_last_non_none():
    merged = merge_metrics([_metrics_snapshot(gauge=1.5), _metrics_snapshot(counter=1)])
    assert merged["metrics"]["residual"]["value"] == 1.5


def test_merge_metrics_combines_histograms():
    merged = merge_metrics([
        _metrics_snapshot(histogram=[1.0, 3.0]),
        _metrics_snapshot(histogram=[5.0]),
    ])
    histogram = merged["metrics"]["latency"]
    assert histogram["count"] == 3
    assert histogram["min"] == 1.0
    assert histogram["max"] == 5.0
    assert histogram["mean"] == pytest.approx(3.0)


def test_merge_metrics_rejects_foreign_schema():
    with pytest.raises(ValueError):
        merge_metrics([{"schema": "something-else", "metrics": {}}])


def test_merge_traces_concatenates_in_order():
    documents = []
    for name in ("first", "second"):
        tracer = Tracer()
        with tracer.span(name):
            pass
        documents.append(tracer.to_dict())
    merged = merge_traces(documents)
    assert merged["schema"] == "repro-trace/1"
    assert [root["name"] for root in merged["traces"]] == ["first", "second"]


def test_merge_events_tags_each_event_with_its_task():
    def events_of(name):
        stream = EventStream()
        stream.emit(name, value=1)
        return stream.to_dicts()

    merged = merge_events([("a", events_of("x")), ("b", events_of("y"))])
    assert [(e["task"], e["event"]) for e in merged] == [("a", "x"), ("b", "y")]


def test_reset_ambient_restores_null_collectors():
    from repro.obs import NULL_EVENTS, NULL_METRICS, NULL_TRACER

    set_tracer(Tracer())
    set_metrics(MetricsRegistry())
    set_events(EventStream())
    assert get_tracer() is not NULL_TRACER
    reset_ambient()
    assert get_tracer() is NULL_TRACER
    assert get_metrics() is NULL_METRICS
    assert get_events() is NULL_EVENTS


def test_reset_ambient_is_idempotent():
    from repro.obs import NULL_TRACER

    reset_ambient()
    reset_ambient()
    assert get_tracer() is NULL_TRACER


# ---------------------------------------------------------------------------
# Empty snapshots: the crashed-before-span case the batch retry path
# produces (a quarantined task contributes default-constructed
# trace/metrics/events documents).
# ---------------------------------------------------------------------------
def test_merge_traces_tolerates_empty_snapshots():
    tracer = Tracer()
    with tracer.span("work"):
        pass
    empty = Tracer().to_dict()
    merged = merge_traces([empty, tracer.to_dict(), empty])
    assert merged["schema"] == "repro-trace/1"
    assert [root["name"] for root in merged["traces"]] == ["work"]


def test_merge_traces_all_empty_yields_empty_forest():
    merged = merge_traces([Tracer().to_dict(), Tracer().to_dict()])
    assert merged == {"schema": "repro-trace/1", "traces": []}


def test_merge_metrics_tolerates_empty_snapshots():
    merged = merge_metrics([
        MetricsRegistry().as_dict(),
        _metrics_snapshot(counter=4),
        MetricsRegistry().as_dict(),
    ])
    assert merged["metrics"]["requests"]["value"] == 4


def test_merge_metrics_all_empty_yields_empty_registry():
    merged = merge_metrics([MetricsRegistry().as_dict()])
    assert merged == {"schema": "repro-metrics/1", "metrics": {}}


def test_merge_events_tolerates_empty_streams():
    stream = EventStream()
    stream.emit("alive", value=1)
    merged = merge_events([
        ("crashed", EventStream().to_dicts()),
        ("healthy", stream.to_dicts()),
    ])
    assert [(e["task"], e["event"]) for e in merged] == [("healthy", "alive")]


def test_merge_quarantined_batch_result_snapshots():
    """End-to-end shape check: the exact default documents a quarantined
    BatchResult carries merge cleanly alongside a healthy task's."""
    from repro.batch.engine import BatchResult

    quarantined = BatchResult(task_id="q", kind="pepa", ok=False,
                              error="WorkerCrash: ...", quarantined=True)
    tracer = Tracer()
    with tracer.span("derive"):
        pass
    healthy = BatchResult(task_id="h", kind="pepa", ok=True,
                          trace=tracer.to_dict())
    merged = merge_traces([quarantined.trace, healthy.trace])
    assert len(merged["traces"]) == 1
    assert merge_metrics([quarantined.metrics, healthy.metrics])["metrics"] == {}
    assert merge_events([("q", quarantined.events), ("h", healthy.events)]) == []


def _profile_doc(samples, interval=0.005, timeline=()):
    return {
        "schema": "repro-profile/1",
        "interval_s": interval,
        "sample_count": sum(samples.values()),
        "samples": dict(samples),
        "timeline": [list(entry) for entry in timeline],
        "timeline_dropped": 0,
    }


class TestMergeProfiles:
    def test_sample_counts_sum_exactly(self):
        merged = merge_profiles([
            _profile_doc({"a;b": 3, "a;c": 1}),
            _profile_doc({"a;b": 2, "d": 5}),
        ])
        assert merged["samples"] == {"a;b": 5, "a;c": 1, "d": 5}
        assert merged["sample_count"] == 11
        assert merged["schema"] == "repro-profile/1"

    def test_samples_are_sorted_for_determinism(self):
        merged = merge_profiles([_profile_doc({"z": 1, "a": 1, "m": 1})])
        assert list(merged["samples"]) == ["a", "m", "z"]

    def test_timelines_are_dropped_and_accounted(self):
        # worker clocks start at their own task; timelines don't align
        merged = merge_profiles([
            _profile_doc({"a": 2}, timeline=[(0.0, "a"), (0.005, "a")]),
            _profile_doc({"b": 1}, timeline=[(0.0, "b")]),
        ])
        assert merged["timeline"] == []
        assert merged["timeline_dropped"] == 3

    def test_interval_from_first_enabled_document(self):
        merged = merge_profiles([
            _profile_doc({}, interval=0.0),   # a task that never sampled
            _profile_doc({"a": 1}, interval=0.002),
        ])
        assert merged["interval_s"] == 0.002

    def test_empty_input_merges_to_empty_profile(self):
        merged = merge_profiles([])
        assert merged["sample_count"] == 0
        assert merged["samples"] == {}

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="repro-profile/1"):
            merge_profiles([{"schema": "repro-trace/1"}])
