"""Unit tests for the hierarchical span tracer (:mod:`repro.obs.tracing`)."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)
from repro.obs.tracing import _NULL_SPAN


class TestSpan:
    def test_duration_and_closed(self):
        span = Span("work")
        assert not span.closed
        assert span.duration >= 0.0
        span.close()
        assert span.closed
        frozen = span.duration
        assert span.duration == frozen  # closing freezes the clock

    def test_close_is_idempotent(self):
        span = Span("work")
        span.close()
        end = span.end
        span.close()
        assert span.end == end

    def test_set_returns_self_and_overwrites(self):
        span = Span("work", {"a": 1})
        assert span.set(a=2, b="x") is span
        assert span.attributes == {"a": 2, "b": "x"}

    def test_find_depth_first(self):
        root = Span("root")
        mid = Span("mid")
        leaf = Span("leaf")
        root.children.append(mid)
        mid.children.append(leaf)
        assert root.find("leaf") is leaf
        assert root.find("mid") is mid
        assert root.find("absent") is None
        assert root.find("root") is None  # find looks at descendants only

    def test_iter_spans_preorder(self):
        root = Span("a")
        b, c = Span("b"), Span("c")
        root.children.extend([b, c])
        b.children.append(Span("d"))
        names = [s.name for s in root.iter_spans()]
        assert names == ["a", "b", "d", "c"]

    def test_to_dict_shape(self):
        root = Span("root", {"k": 1})
        root.children.append(Span("child"))
        root.close()
        data = root.to_dict()
        assert data["name"] == "root"
        assert data["attributes"] == {"k": 1}
        assert data["duration_s"] >= 0.0
        assert [c["name"] for c in data["children"]] == ["child"]


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.closed and outer.closed

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_exception_sets_error_attribute_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom") as sp:
                raise ValueError("no")
        assert sp.attributes["error"] == "ValueError"
        assert sp.closed
        assert tracer.current() is None

    def test_explicit_error_attribute_is_not_clobbered(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as sp:
                sp.set(error="custom")
                raise RuntimeError
        assert sp.attributes["error"] == "custom"

    def test_annotate_targets_current_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                tracer.annotate(states=5)
        assert inner.attributes == {"states": 5}
        tracer.annotate(ignored=True)  # outside any span: silently dropped

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.roots == []
        assert tracer.current() is None

    def test_to_dict_schema(self):
        tracer = Tracer()
        with tracer.span("a", k=1):
            pass
        data = tracer.to_dict()
        assert data["schema"] == "repro-trace/1"
        assert [t["name"] for t in data["traces"]] == ["a"]

    def test_out_of_order_exit_is_tolerated(self):
        tracer = Tracer()
        outer_handle = tracer.span("outer")
        outer = outer_handle.__enter__()
        inner_handle = tracer.span("inner")
        inner = inner_handle.__enter__()
        # Exit the outer span first; the stack above it is closed too.
        outer_handle.__exit__(None, None, None)
        assert inner.closed and outer.closed
        assert tracer.current() is None


class TestNullTracer:
    def test_span_returns_the_shared_noop(self):
        assert NULL_TRACER.span("x") is _NULL_SPAN
        assert NULL_TRACER.span("y", k=1) is _NULL_SPAN

    def test_noop_span_is_its_own_context_manager(self):
        with NULL_TRACER.span("x") as sp:
            assert sp.set(anything=1) is sp
            sp.close()
        assert sp.duration == 0.0 and sp.closed

    def test_disabled_flag_and_empty_export(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True
        assert NULL_TRACER.to_dict() == {"schema": "repro-trace/1", "traces": []}
        assert NULL_TRACER.current() is None
        NULL_TRACER.annotate(k=1)
        NULL_TRACER.clear()

    def test_exceptions_propagate_through_null_spans(self):
        with pytest.raises(KeyError):
            with NULL_TRACER.span("x"):
                raise KeyError("boom")


class TestAmbientInstallation:
    def test_default_is_the_null_tracer(self):
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert previous is NULL_TRACER
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_disables(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            set_tracer(None)
            assert get_tracer() is NULL_TRACER
        finally:
            set_tracer(None)

    def test_use_tracer_restores_on_exit_and_error(self):
        tracer = Tracer()
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER
        with pytest.raises(ValueError):
            with use_tracer(tracer):
                raise ValueError
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_nests(self):
        outer, inner = Tracer(), Tracer()
        with use_tracer(outer):
            with use_tracer(inner):
                assert get_tracer() is inner
            assert get_tracer() is outer

    def test_instrumented_library_code_routes_to_ambient(self):
        from repro.pepa.parser import parse_model

        tracer = Tracer()
        with use_tracer(tracer):
            parse_model("P = (a, 1.0).P;\nP")
        assert [r.name for r in tracer.roots] == ["pepa.parse"]
        assert tracer.roots[0].attributes["components"] == 1

    def test_null_tracer_collects_nothing_from_library_code(self):
        from repro.pepa.parser import parse_model

        assert isinstance(get_tracer(), NullTracer)
        parse_model("P = (a, 1.0).P;\nP")
        assert NULL_TRACER.roots == []
