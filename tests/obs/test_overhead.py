"""The disabled-observability overhead envelope.

``docs/observability.md`` promises the fully instrumented pipeline pays
<2% when no collectors are installed.  A literal A/B against a build
with the instrumentation *deleted* is impossible in-process, so the
guard measures the envelope from first principles instead:

1. run the quickstart workload with the ambient no-op singletons (the
   normal disabled path) and take the median wall time;
2. count how many instrumentation calls one such run actually makes,
   by installing live collectors once;
3. microbenchmark the disabled primitives (null span enter/exit, null
   metric lookup+update, null event emit + ``enabled`` check) and
   price the counted calls at that unit cost.

The priced total *is* the difference between this build and a
stubbed-out one.  The assertion uses a deliberately coarse 10% bound —
the measured figure is typically under 0.5% — so scheduler noise on a
shared CI runner cannot flake it.
"""

from __future__ import annotations

import time

import pytest

from repro.ctmc.steady import steady_state
from repro.obs import (
    NULL_EVENTS,
    NULL_METRICS,
    NULL_TRACER,
    EventStream,
    MetricsRegistry,
    Tracer,
    get_events,
    get_metrics,
    get_tracer,
    use_events,
    use_metrics,
    use_tracer,
)
from repro.pepa.ctmcgen import ctmc_from_statespace
from repro.pepa.parser import parse_model
from repro.pepa.statespace import derive

QUICKSTART_SRC = """
r_o = 2.0; r_r = 10.0; r_w = 4.0; r_c = 1.0;
File = (openread, r_o).InStream + (openwrite, r_o).OutStream;
InStream = (read, r_r).InStream + (close, r_c).File;
OutStream = (write, r_w).OutStream + (close, r_c).File;
FileReader = (openread, T).Reading + (openwrite, T).Writing;
Reading = (read, T).Reading + (close, T).FileReader;
Writing = (write, T).Writing + (close, T).FileReader;
File <openread, openwrite, read, write, close> (FileReader || FileReader)
"""


def run_workload():
    model = parse_model(QUICKSTART_SRC)
    space = derive(model)
    chain = ctmc_from_statespace(space)
    steady_state(chain, method="power", tol=1e-10)


def test_disabled_singletons_are_shared_and_allocation_free():
    assert get_tracer() is NULL_TRACER
    assert get_metrics() is NULL_METRICS
    assert get_events() is NULL_EVENTS
    # every disabled call hands back the same shared object — the
    # "no allocation when off" contract the envelope rests on
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
    assert NULL_METRICS.counter("x") is NULL_METRICS.histogram("y")
    assert NULL_TRACER.span("a").set(k=1) is NULL_TRACER.span("a")


def test_disabled_overhead_within_documented_envelope():
    # 1. wall time of the disabled path (median of 5)
    assert get_tracer() is NULL_TRACER  # precondition: really disabled
    samples = []
    for _ in range(5):
        t0 = time.perf_counter()
        run_workload()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    workload_s = samples[len(samples) // 2]

    # 2. how many instrumentation calls does one run make?
    tracer, metrics, events = Tracer(), MetricsRegistry(), EventStream()
    with use_tracer(tracer), use_metrics(metrics), use_events(events):
        run_workload()
    n_spans = sum(1 for root in tracer.roots for _ in root.iter_spans())
    n_metric_updates = max(len(metrics), 1) * 2  # lookup + update per use
    n_event_checks = len(events) + events.dropped
    assert n_spans >= 3          # parse/derive/assemble/solve were hit
    assert n_event_checks >= 1   # the solver loop really was guarded

    # 3. price those calls at the disabled unit cost
    rounds = 2000

    t0 = time.perf_counter()
    for _ in range(rounds):
        with get_tracer().span("bench", k=1) as sp:
            sp.set(states=1)
    span_unit = (time.perf_counter() - t0) / rounds

    t0 = time.perf_counter()
    for _ in range(rounds):
        get_metrics().counter("bench").inc()
    metric_unit = (time.perf_counter() - t0) / rounds

    t0 = time.perf_counter()
    for _ in range(rounds):
        if get_events().enabled:  # pragma: no cover — never taken
            get_events().emit("bench")
    event_unit = (time.perf_counter() - t0) / rounds

    estimated_overhead_s = (
        n_spans * span_unit
        + n_metric_updates * metric_unit
        + n_event_checks * event_unit
    )

    # CI-coarse bound: 10% (documented envelope is <2%, measured ~0.1%)
    assert estimated_overhead_s < 0.10 * workload_s, (
        f"disabled instrumentation priced at {estimated_overhead_s:.6f}s "
        f"vs {workload_s:.6f}s workload — envelope breached"
    )


def test_enabled_collectors_do_not_leak_after_use(two_state_model):
    with use_tracer(Tracer()), use_metrics(MetricsRegistry()), \
            use_events(EventStream()):
        chain = ctmc_from_statespace(derive(two_state_model))
        steady_state(chain, method="power", tol=1e-8)
    assert get_tracer() is NULL_TRACER
    assert get_metrics() is NULL_METRICS
    assert get_events() is NULL_EVENTS


def test_disabled_profiler_and_ledger_are_shared_no_ops():
    from repro.obs import (
        NULL_LEDGER,
        NULL_PROFILER,
        get_ledger,
        get_profile_config,
        get_profiler,
    )

    assert get_profiler() is NULL_PROFILER
    assert get_ledger() is NULL_LEDGER
    assert get_profile_config() is None
    # the null paths never allocate or store
    assert NULL_PROFILER.start() is NULL_PROFILER
    NULL_PROFILER.record(("a",), count=100)
    assert NULL_PROFILER.sample_count == 0
    assert NULL_LEDGER.record({"schema": "repro-run/1"}) == ""
    assert NULL_LEDGER.runs() == []


def test_disabled_profiler_and_ledger_unit_costs_fit_the_envelope():
    # same pricing approach as the main envelope guard: the disabled
    # primitives (an enabled check + a no-op call) must cost no more
    # than the other null collectors', so adding the profiler/ledger
    # does not move the documented <2% disabled figure
    from repro.obs import get_ledger, get_profile_config, get_profiler

    rounds = 2000

    t0 = time.perf_counter()
    for _ in range(rounds):
        if get_profiler().enabled:  # pragma: no cover — never taken
            get_profiler().record(("x",))
    profiler_unit = (time.perf_counter() - t0) / rounds

    t0 = time.perf_counter()
    for _ in range(rounds):
        if get_ledger().enabled:  # pragma: no cover — never taken
            get_ledger().record({})
    ledger_unit = (time.perf_counter() - t0) / rounds

    t0 = time.perf_counter()
    for _ in range(rounds):
        get_profile_config()
    config_unit = (time.perf_counter() - t0) / rounds

    # microseconds at most; a pipeline run makes a handful of these
    # checks (one per entrypoint, not per span), so even a generous
    # 50x margin keeps them invisible next to the workload
    for name, unit in (("profiler", profiler_unit),
                       ("ledger", ledger_unit),
                       ("profile-config", config_unit)):
        assert unit < 50e-6, f"disabled {name} check costs {unit:.2e}s"


def test_enabled_profiler_overhead_within_documented_envelope():
    # docs promise <15% with sampling on at the default 5 ms interval;
    # assert a CI-coarse 40% bound so a loaded runner cannot flake it
    from repro.obs import SamplingProfiler

    samples = []
    for _ in range(3):
        t0 = time.perf_counter()
        run_workload()
        samples.append(time.perf_counter() - t0)
    baseline = sorted(samples)[1]

    samples = []
    for _ in range(3):
        profiler = SamplingProfiler(interval=0.005)
        t0 = time.perf_counter()
        with profiler:
            run_workload()
        samples.append(time.perf_counter() - t0)
    profiled = sorted(samples)[1]

    assert profiled < 1.40 * baseline + 0.05, (
        f"profiled run {profiled:.4f}s vs baseline {baseline:.4f}s — "
        f"sampling overhead envelope breached"
    )
