"""Unit tests for the trace/metrics exporters (:mod:`repro.obs.export`)."""

from __future__ import annotations

import json

from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    metrics_to_json,
    observe,
    render_metrics,
    render_trace,
    trace_to_json,
    write_trace_file,
)


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("pipeline", workload="demo"):
        with tracer.span("derive", states=12):
            pass
        with tracer.span("solve", method="direct", residual=1.5e-13):
            pass
    return tracer


class TestJsonExport:
    def test_trace_to_json_is_serialisable(self):
        data = trace_to_json(_sample_tracer())
        text = json.dumps(data)
        parsed = json.loads(text)
        assert parsed["schema"] == "repro-trace/1"
        (root,) = parsed["traces"]
        assert root["name"] == "pipeline"
        assert [c["name"] for c in root["children"]] == ["derive", "solve"]
        assert root["children"][0]["attributes"] == {"states": 12}

    def test_metrics_to_json_is_serialisable(self):
        reg = MetricsRegistry()
        reg.counter("states_explored").inc(12)
        reg.gauge("residual").set(1e-13)
        reg.histogram("solve_s").observe(0.25)
        parsed = json.loads(json.dumps(metrics_to_json(reg)))
        assert parsed["schema"] == "repro-metrics/1"
        assert parsed["metrics"]["states_explored"]["value"] == 12
        assert parsed["metrics"]["solve_s"]["count"] == 1

    def test_null_collectors_export_empty_documents(self):
        assert trace_to_json(NULL_TRACER)["traces"] == []
        assert metrics_to_json(NULL_METRICS)["metrics"] == {}


class TestWriteTraceFile:
    def test_trace_only(self, tmp_path):
        path = tmp_path / "trace.json"
        write_trace_file(path, _sample_tracer())
        document = json.loads(path.read_text())
        assert document["schema"] == "repro-trace/1"
        assert "metrics" not in document

    def test_trace_with_metrics(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("transitions").inc(3)
        path = tmp_path / "trace.json"
        write_trace_file(path, _sample_tracer(), reg)
        document = json.loads(path.read_text())
        assert document["metrics"]["transitions"]["value"] == 3

    def test_non_json_attributes_are_stringified(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x", path=tmp_path):  # Path is not JSON-native
            pass
        out = tmp_path / "trace.json"
        write_trace_file(out, tracer)
        document = json.loads(out.read_text())
        assert document["traces"][0]["attributes"]["path"] == str(tmp_path)


class TestRenderTrace:
    def test_tree_layout(self):
        text = render_trace(_sample_tracer())
        lines = text.splitlines()
        assert lines[0].startswith("pipeline")
        assert "[workload=demo]" in lines[0]
        assert lines[1].startswith("|- derive")
        assert lines[2].startswith("`- solve")
        assert "ms" in lines[1]
        assert "method=direct" in lines[2]

    def test_deep_nesting_prefixes(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        lines = render_trace(tracer).splitlines()
        assert lines[1].startswith("`- b")
        assert lines[2].startswith("   `- c")

    def test_empty(self):
        assert render_trace(Tracer()) == "(no spans recorded)"
        assert render_trace(NULL_TRACER) == "(no spans recorded)"


class TestRenderMetrics:
    def test_table_layout(self):
        reg = MetricsRegistry()
        reg.counter("states_explored").inc(42)
        reg.gauge("residual").set(2.5e-14)
        reg.histogram("solve_s").observe(0.5)
        text = render_metrics(reg)
        assert "states_explored" in text
        assert "counter" in text
        assert "2.5e-14" in text
        assert "count=1" in text

    def test_empty(self):
        assert render_metrics(MetricsRegistry()) == "(no metrics recorded)"
        assert render_metrics(NULL_METRICS) == "(no metrics recorded)"


class TestObserve:
    def test_yields_fresh_installed_collectors(self):
        from repro.obs import get_metrics, get_tracer

        with observe() as (tracer, metrics):
            assert get_tracer() is tracer
            assert get_metrics() is metrics
            with tracer.span("work"):
                metrics.counter("n").inc()
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_METRICS
        assert [r.name for r in tracer.roots] == ["work"]
        assert metrics.counter("n").value == 1

    def test_nested_observations_compose(self):
        with observe() as (outer_tracer, _):
            with outer_tracer.span("outer"):
                pass
            with observe() as (inner_tracer, _):
                with inner_tracer.span("inner"):
                    pass
            assert [r.name for r in outer_tracer.roots] == ["outer"]
        assert [r.name for r in inner_tracer.roots] == ["inner"]
