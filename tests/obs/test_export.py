"""Unit tests for the trace/metrics exporters (:mod:`repro.obs.export`)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    SamplingProfiler,
    Tracer,
    chrome_trace_document,
    metrics_to_json,
    observe,
    prometheus_text,
    render_metrics,
    render_trace,
    trace_to_json,
    write_chrome_trace,
    write_prometheus_file,
    write_trace_file,
)


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("pipeline", workload="demo"):
        with tracer.span("derive", states=12):
            pass
        with tracer.span("solve", method="direct", residual=1.5e-13):
            pass
    return tracer


class TestJsonExport:
    def test_trace_to_json_is_serialisable(self):
        data = trace_to_json(_sample_tracer())
        text = json.dumps(data)
        parsed = json.loads(text)
        assert parsed["schema"] == "repro-trace/1"
        (root,) = parsed["traces"]
        assert root["name"] == "pipeline"
        assert [c["name"] for c in root["children"]] == ["derive", "solve"]
        assert root["children"][0]["attributes"] == {"states": 12}

    def test_metrics_to_json_is_serialisable(self):
        reg = MetricsRegistry()
        reg.counter("states_explored").inc(12)
        reg.gauge("residual").set(1e-13)
        reg.histogram("solve_s").observe(0.25)
        parsed = json.loads(json.dumps(metrics_to_json(reg)))
        assert parsed["schema"] == "repro-metrics/1"
        assert parsed["metrics"]["states_explored"]["value"] == 12
        assert parsed["metrics"]["solve_s"]["count"] == 1

    def test_null_collectors_export_empty_documents(self):
        assert trace_to_json(NULL_TRACER)["traces"] == []
        assert metrics_to_json(NULL_METRICS)["metrics"] == {}


class TestWriteTraceFile:
    def test_trace_only(self, tmp_path):
        path = tmp_path / "trace.json"
        write_trace_file(path, _sample_tracer())
        document = json.loads(path.read_text())
        assert document["schema"] == "repro-trace/1"
        assert "metrics" not in document

    def test_trace_with_metrics(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("transitions").inc(3)
        path = tmp_path / "trace.json"
        write_trace_file(path, _sample_tracer(), reg)
        document = json.loads(path.read_text())
        assert document["metrics"]["transitions"]["value"] == 3

    def test_non_json_attributes_are_stringified(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x", path=tmp_path):  # Path is not JSON-native
            pass
        out = tmp_path / "trace.json"
        write_trace_file(out, tracer)
        document = json.loads(out.read_text())
        assert document["traces"][0]["attributes"]["path"] == str(tmp_path)


class TestRenderTrace:
    def test_tree_layout(self):
        text = render_trace(_sample_tracer())
        lines = text.splitlines()
        assert lines[0].startswith("pipeline")
        assert "[workload=demo]" in lines[0]
        assert lines[1].startswith("|- derive")
        assert lines[2].startswith("`- solve")
        assert "ms" in lines[1]
        assert "method=direct" in lines[2]

    def test_deep_nesting_prefixes(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        lines = render_trace(tracer).splitlines()
        assert lines[1].startswith("`- b")
        assert lines[2].startswith("   `- c")

    def test_empty(self):
        assert render_trace(Tracer()) == "(no spans recorded)"
        assert render_trace(NULL_TRACER) == "(no spans recorded)"


class TestRenderMetrics:
    def test_table_layout(self):
        reg = MetricsRegistry()
        reg.counter("states_explored").inc(42)
        reg.gauge("residual").set(2.5e-14)
        reg.histogram("solve_s").observe(0.5)
        text = render_metrics(reg)
        assert "states_explored" in text
        assert "counter" in text
        assert "2.5e-14" in text
        assert "count=1" in text

    def test_empty(self):
        assert render_metrics(MetricsRegistry()) == "(no metrics recorded)"
        assert render_metrics(NULL_METRICS) == "(no metrics recorded)"


class TestObserve:
    def test_yields_fresh_installed_collectors(self):
        from repro.obs import get_metrics, get_tracer

        with observe() as (tracer, metrics):
            assert get_tracer() is tracer
            assert get_metrics() is metrics
            with tracer.span("work"):
                metrics.counter("n").inc()
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_METRICS
        assert [r.name for r in tracer.roots] == ["work"]
        assert metrics.counter("n").value == 1

    def test_nested_observations_compose(self):
        with observe() as (outer_tracer, _):
            with outer_tracer.span("outer"):
                pass
            with observe() as (inner_tracer, _):
                with inner_tracer.span("inner"):
                    pass
            assert [r.name for r in outer_tracer.roots] == ["outer"]
        assert [r.name for r in inner_tracer.roots] == ["inner"]


def span_doc(name, start, duration, *children, pid=0, tid=0, attrs=None):
    """A deterministic repro-trace/1 span node."""
    return {
        "name": name, "start_unix": start, "duration_s": duration,
        "pid": pid, "tid": tid, "attributes": attrs or {},
        "children": list(children),
    }


def _pipeline_trace():
    return {"schema": "repro-trace/1", "traces": [
        span_doc(
            "pipeline", 100.0, 1.0,
            span_doc("derive", 100.0, 0.4, attrs={"states": 12}),
            span_doc("solve", 100.4, 0.5, pid=7, tid=3,
                     attrs={"cpu_s": 0.45}),
            attrs={"workload": "demo"},
        ),
    ]}


def _sample_events():
    return [
        {"event": "solver.converged", "t_s": 0.9, "iterations": 17},
        {"event": "explore.progress", "t_s": 0.2, "states": 6},
    ]


def _sample_profile():
    profiler = SamplingProfiler(interval=0.005)
    profiler.record(("pipeline", "solve", "spmv"), count=3, t=0.41)
    profiler.record(("pipeline", "derive"), count=1, t=0.1)
    return profiler


REQUIRED_CHROME_KEYS = {"name", "ph", "ts", "pid", "tid"}


class TestChromeTrace:
    def test_every_event_carries_the_required_keys(self):
        document = chrome_trace_document(
            _pipeline_trace(), events=_sample_events(),
            profile=_sample_profile())
        assert document["traceEvents"]
        for event in document["traceEvents"]:
            assert REQUIRED_CHROME_KEYS <= set(event), event

    def test_spans_become_complete_events_in_microseconds(self):
        document = chrome_trace_document(_pipeline_trace())
        by_name = {e["name"]: e for e in document["traceEvents"]}
        assert by_name["pipeline"]["ph"] == "X"
        assert by_name["pipeline"]["ts"] == 100.0 * 1e6
        assert by_name["pipeline"]["dur"] == 1.0 * 1e6
        assert by_name["solve"]["pid"] == 7
        assert by_name["solve"]["tid"] == 3
        assert by_name["solve"]["args"] == {"cpu_s": 0.45}

    def test_pre_epoch_documents_get_a_synthesized_timeline(self):
        # a trace without start_unix (older schema revision): siblings
        # are laid out back to back from the parent's start
        old = {"schema": "repro-trace/1", "traces": [{
            "name": "root", "duration_s": 1.0, "children": [
                {"name": "a", "duration_s": 0.25, "children": []},
                {"name": "b", "duration_s": 0.5, "children": []},
            ],
        }]}
        by_name = {e["name"]: e
                   for e in chrome_trace_document(old)["traceEvents"]}
        assert by_name["root"]["ts"] == 0.0
        assert by_name["a"]["ts"] == 0.0
        assert by_name["b"]["ts"] == 0.25 * 1e6

    def test_events_render_as_instants_on_their_own_track(self):
        document = chrome_trace_document(
            _pipeline_trace(), events=_sample_events())
        instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 2
        converged = next(e for e in instants
                         if e["name"] == "solver.converged")
        assert converged["s"] == "t"
        assert converged["ts"] == (100.0 + 0.9) * 1e6  # epoch-anchored
        assert converged["args"] == {"iterations": 17}
        assert converged["tid"] == 1_000_001
        metas = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert any(m["args"]["name"] == "events" for m in metas)

    def test_profiler_timeline_renders_as_sample_events(self):
        document = chrome_trace_document(
            _pipeline_trace(), profile=_sample_profile())
        samples = [e for e in document["traceEvents"] if e["ph"] == "P"]
        assert len(samples) == 2
        assert all(e["tid"] == 1_000_002 for e in samples)
        assert samples[0]["args"]["stack"] == "pipeline;solve;spmv"

    def test_accepts_a_live_tracer(self):
        document = chrome_trace_document(_sample_tracer())
        names = [e["name"] for e in document["traceEvents"]]
        assert "pipeline" in names and "derive" in names

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            chrome_trace_document(42)

    def test_write_returns_event_count_and_is_loadable(self, tmp_path):
        path = tmp_path / "trace.chrome.json"
        count = write_chrome_trace(path, _pipeline_trace(),
                                   events=_sample_events())
        document = json.loads(path.read_text())
        assert count == len(document["traceEvents"]) == 3 + 1 + 2
        assert document["displayTimeUnit"] == "ms"

    def test_golden_chrome_document(self, golden):
        document = chrome_trace_document(
            _pipeline_trace(), events=_sample_events(),
            profile=_sample_profile().to_dict())
        golden("obs/chrome_trace", document)


class TestPrometheus:
    def _registry(self):
        metrics = MetricsRegistry()
        metrics.counter("states_explored").inc(42)
        metrics.gauge("solve.residual").set(1.5e-9)
        for value in (0.1, 0.2, 0.3, 0.4):
            metrics.histogram("stage.solve_s").observe(value)
        return metrics

    def test_counter_gains_total_suffix(self):
        text = prometheus_text(self._registry())
        assert "# TYPE repro_states_explored_total counter" in text
        assert "repro_states_explored_total 42" in text

    def test_names_are_sanitised(self):
        text = prometheus_text(self._registry())
        assert "repro_solve_residual 1.5e-09" in text
        assert "solve.residual" not in text.replace("HELP", "").split("#")[0]

    def test_live_histogram_exposes_quantiles(self):
        text = prometheus_text(self._registry())
        assert 'repro_stage_solve_s{quantile="0.5"} 0.2' in text
        assert 'repro_stage_solve_s{quantile="0.99"} 0.4' in text
        assert "repro_stage_solve_s_sum 1.0" in text
        assert "repro_stage_solve_s_count 4" in text

    def test_snapshot_histogram_has_no_quantiles(self):
        # a merged snapshot keeps count/sum/min/max but no samples, so
        # the exposition must not invent quantile series
        text = prometheus_text(self._registry().as_dict())
        assert "quantile" not in text
        assert "repro_stage_solve_s_sum 1.0" in text
        assert "repro_stage_solve_s_min 0.1" in text
        assert "repro_stage_solve_s_max 0.4" in text

    def test_unset_gauge_is_skipped(self):
        metrics = MetricsRegistry()
        metrics.gauge("residual")  # created, never set
        assert prometheus_text(metrics) == ""

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""
        assert prometheus_text(NULL_METRICS) == ""

    def test_write_prometheus_file(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus_file(path, self._registry())
        assert path.read_text().endswith("\n")

    def test_golden_prometheus_exposition(self, golden):
        golden("obs/prometheus",
               {"lines": prometheus_text(self._registry()).splitlines()})
