"""Bench regression detection: matching, thresholds, noise floor,
markdown report and the compare_bench.py command-line gate."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.regress import (
    compare_benchmarks,
    detect_trend,
    load_bench,
    markdown_report,
    run_key,
    trend_markdown,
)

REPO = Path(__file__).resolve().parents[2]
_COMPARE = REPO / "benchmarks" / "compare_bench.py"


@pytest.fixture(scope="module")
def compare_bench():
    spec = importlib.util.spec_from_file_location("compare_bench", _COMPARE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def make_doc(label="base", **overrides):
    """A minimal two-run repro-bench/1 document with sizeable stages."""
    runs = [
        {
            "workload": "file_protocol", "kind": "pepa",
            "size": {"n_readers": 2}, "solver": "direct",
            "n_states": 5, "n_transitions": 12,
            "stages": {"derive": 0.4, "assemble": 0.2, "solve": 0.6},
            "total_s": 1.2, "peak_rss_kb": 80000,
        },
        {
            "workload": "courier_ring", "kind": "net",
            "size": {"n_places": 3, "n_couriers": 2}, "solver": "direct",
            "n_states": 9, "n_transitions": 18,
            "stages": {"derive": 0.3, "assemble": 0.1, "solve": 0.5},
            "total_s": 0.9, "peak_rss_kb": 80000,
        },
    ]
    doc = {"schema": "repro-bench/1", "label": label, "created_unix": 0,
           "quick": False, "solver": "direct", "host": {}, "runs": runs}
    doc.update(overrides)
    return doc


class TestMatching:
    def test_run_key_is_stable_under_size_key_order(self):
        a = {"workload": "w", "size": {"a": 1, "b": 2}, "solver": "direct"}
        b = {"workload": "w", "size": {"b": 2, "a": 1}, "solver": "direct"}
        assert run_key(a) == run_key(b)

    def test_unmatched_runs_are_reported_not_fatal(self):
        base = make_doc()
        current = make_doc(label="new")
        current["runs"] = current["runs"][:1]
        current["runs"].append({
            "workload": "brand_new", "size": {}, "solver": "direct",
            "stages": {"solve": 0.1}, "total_s": 0.1,
        })
        comparison = compare_benchmarks(base, current)
        assert comparison.ok
        assert len(comparison.only_in_baseline) == 1
        assert comparison.only_in_baseline[0][0] == "courier_ring"
        assert len(comparison.only_in_current) == 1
        assert comparison.only_in_current[0][0] == "brand_new"


class TestDetection:
    def test_identical_documents_have_no_regressions(self):
        comparison = compare_benchmarks(make_doc(), make_doc(label="again"))
        assert comparison.ok
        assert comparison.regressions == []
        assert comparison.improvements == []
        # every stage plus the total was compared for both runs
        assert len(comparison.deltas) == 8

    def test_synthetic_2x_slowdown_names_workload_size_stage(self):
        base = make_doc()
        current = make_doc(label="slow")
        current["runs"][0]["stages"]["solve"] = 1.2  # 2x of 0.6
        current["runs"][0]["total_s"] = 1.8
        comparison = compare_benchmarks(base, current)
        assert not comparison.ok
        stages = {(d.workload, d.stage) for d in comparison.regressions}
        assert ("file_protocol", "solve") in stages
        (solve,) = [d for d in comparison.regressions if d.stage == "solve"]
        assert json.loads(solve.size) == {"n_readers": 2}
        assert solve.solver == "direct"
        assert solve.ratio == pytest.approx(2.0)

    def test_absolute_floor_suppresses_sub_millisecond_doubling(self):
        base = make_doc()
        base["runs"][0]["stages"] = {"derive": 0.0004, "solve": 0.0003}
        base["runs"][0]["total_s"] = 0.0007
        current = make_doc(label="noisy")
        current["runs"][0]["stages"] = {"derive": 0.0009, "solve": 0.0007}
        current["runs"][0]["total_s"] = 0.0016
        comparison = compare_benchmarks(base, current, min_seconds=0.05)
        assert comparison.ok

    def test_relative_threshold_suppresses_small_creep_on_big_stage(self):
        base = make_doc()
        current = make_doc(label="creep")
        current["runs"][0]["stages"]["solve"] = 0.7  # +0.1s but only 1.17x
        comparison = compare_benchmarks(base, current,
                                        threshold=1.5, min_seconds=0.05)
        assert comparison.ok

    def test_improvements_are_reported_but_not_fatal(self):
        base = make_doc()
        current = make_doc(label="fast")
        current["runs"][0]["stages"]["solve"] = 0.2
        current["runs"][0]["total_s"] = 0.8
        comparison = compare_benchmarks(base, current)
        assert comparison.ok
        assert any(d.stage == "solve" for d in comparison.improvements)

    def test_total_time_regression_is_caught(self):
        base = make_doc()
        current = make_doc(label="slow-total")
        current["runs"][1]["total_s"] = 2.7  # stages unchanged, total 3x
        comparison = compare_benchmarks(base, current)
        assert not comparison.ok
        assert any(d.stage == "total" and d.workload == "courier_ring"
                   for d in comparison.regressions)

    def test_new_stage_name_compared_against_zero(self):
        base = make_doc()
        current = make_doc(label="newstage")
        current["runs"][0]["stages"]["reflect"] = 0.4
        comparison = compare_benchmarks(base, current)
        assert any(d.stage == "reflect" and d.verdict == "regression"
                   for d in comparison.deltas)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            compare_benchmarks(make_doc(), make_doc(), threshold=1.0)
        with pytest.raises(ValueError):
            compare_benchmarks(make_doc(), make_doc(), min_seconds=-1)


class TestReport:
    def test_no_regression_report(self):
        text = markdown_report(compare_benchmarks(make_doc(), make_doc(label="b")))
        assert "No regressions" in text
        assert "`base` → `b`" in text

    def test_regression_report_names_the_offender(self):
        base = make_doc()
        current = make_doc(label="slow")
        current["runs"][0]["stages"]["solve"] = 1.2
        text = markdown_report(compare_benchmarks(base, current))
        assert "REGRESSION" in text
        assert "file_protocol" in text
        assert "solve" in text
        assert "2.00x" in text

    def test_unmatched_runs_listed(self):
        base = make_doc()
        current = make_doc(label="partial")
        current["runs"] = current["runs"][:1]
        text = markdown_report(compare_benchmarks(base, current))
        assert "Only in baseline" in text
        assert "courier_ring" in text


class TestLoadBench:
    def test_loads_committed_baseline(self):
        document = load_bench(REPO / "BENCH_PR2.json")
        assert document["schema"] == "repro-bench/1"
        assert document["runs"]

    def test_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        with pytest.raises(ValueError):
            load_bench(bad)


class TestCompareBenchCli:
    def test_self_compare_exits_zero(self, compare_bench, tmp_path, capsys):
        path = tmp_path / "doc.json"
        path.write_text(json.dumps(make_doc()))
        assert compare_bench.main([str(path), str(path)]) == 0
        assert "No regressions" in capsys.readouterr().out

    def test_committed_baseline_self_compare_exits_zero(self, compare_bench, capsys):
        baseline = str(REPO / "BENCH_PR2.json")
        assert compare_bench.main([baseline, baseline]) == 0
        assert "No regressions" in capsys.readouterr().out

    def test_synthetic_slowdown_exits_one_and_writes_report(
        self, compare_bench, tmp_path, capsys
    ):
        base_path = tmp_path / "base.json"
        base_path.write_text(json.dumps(make_doc()))
        current = make_doc(label="slow")
        current["runs"][0]["stages"]["solve"] = 1.2
        current_path = tmp_path / "current.json"
        current_path.write_text(json.dumps(current))
        report = tmp_path / "report.md"
        code = compare_bench.main([str(base_path), str(current_path),
                                   "-o", str(report)])
        assert code == 1
        text = report.read_text()
        assert "file_protocol" in text and "solve" in text

    def test_missing_file_exits_two(self, compare_bench, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(make_doc()))
        assert compare_bench.main([str(tmp_path / "nope.json"), str(good)]) == 2
        assert "error" in capsys.readouterr().err


def run_doc(run_id, bench=None, **bench_overrides):
    """A minimal repro-run/1 document wrapping a bench sweep."""
    document = {"schema": "repro-run/1", "run_id": run_id,
                "command": "bench"}
    if bench is not False:
        document["bench"] = bench or make_doc(**bench_overrides)
    return document


def scaled(factor, stage=None):
    """make_doc() with every (or one) stage scaled by ``factor``."""
    doc = make_doc()
    for run in doc["runs"]:
        for name in list(run["stages"]):
            if stage is None or name == stage:
                run["stages"][name] *= factor
        run["total_s"] = sum(run["stages"].values())
    return doc


class TestTrend:
    def test_fewer_than_two_bench_runs_is_trivially_ok(self):
        assert detect_trend([]).ok
        assert detect_trend([run_doc("000001")]).ok
        # non-bench run documents don't count as history
        report = detect_trend([run_doc("000001", bench=False),
                               run_doc("000002")])
        assert report.ok and report.run_ids == ["000002"]

    def test_identical_history_is_clean(self):
        report = detect_trend([run_doc(f"{i:06d}") for i in range(1, 4)])
        assert report.ok
        assert report.regressions == []
        assert len(report.deltas) > 0  # the series really were trended

    def test_injected_3x_slowdown_names_workload_and_stage(self):
        history = [run_doc("000001"), run_doc("000002")]
        slow = run_doc("000003", bench=scaled(3.0, stage="solve"))
        report = detect_trend(history + [slow])
        assert not report.ok
        offenders = {(d.workload, d.stage) for d in report.regressions}
        assert ("file_protocol", "solve") in offenders
        assert ("courier_ring", "solve") in offenders
        # untouched stages stay clean
        assert all(d.stage in ("solve", "total") for d in report.regressions)

    def test_median_baseline_shrugs_off_one_slow_historical_run(self):
        # one loaded-CI-box outlier in the history must not drag the
        # baseline up (masking) — the median ignores it
        history = [run_doc("000001"), run_doc("000002", bench=scaled(10.0)),
                   run_doc("000003")]
        fine = run_doc("000004")
        assert detect_trend(history + [fine]).ok
        slow = run_doc("000004", bench=scaled(3.0, stage="solve"))
        assert not detect_trend(history + [slow]).ok

    def test_window_limits_the_history(self):
        # old fast runs fall outside the window: judged only against
        # the recent (already slow) plateau, the newest run is fine
        old = [run_doc("000001"), run_doc("000002")]
        plateau = [run_doc("000003", bench=scaled(3.0)),
                   run_doc("000004", bench=scaled(3.0))]
        newest = run_doc("000005", bench=scaled(3.0))
        assert not detect_trend(old + plateau + [newest]).ok
        windowed = detect_trend(old + plateau + [newest], window=3)
        assert windowed.ok
        assert windowed.run_ids == ["000003", "000004", "000005"]

    def test_new_and_stale_series_reported_not_fatal(self):
        base = make_doc()
        renamed = make_doc()
        renamed["runs"][0]["workload"] = "brand_new"
        report = detect_trend([run_doc("000001", bench=base),
                               run_doc("000002", bench=renamed)])
        assert report.ok
        assert ("brand_new", '{"n_readers": 2}', "direct") in report.new_series
        assert ("file_protocol", '{"n_readers": 2}', "direct") in \
               report.stale_series

    def test_gate_validation(self):
        with pytest.raises(ValueError):
            detect_trend([], threshold=1.0)
        with pytest.raises(ValueError):
            detect_trend([], min_seconds=-1)


class TestTrendMarkdown:
    def test_clean_report(self):
        report = detect_trend([run_doc("000001"), run_doc("000002")])
        text = trend_markdown(report)
        assert "No regressions" in text
        assert "000001" in text and "000002" in text

    def test_regression_table_names_the_offender(self):
        report = detect_trend([
            run_doc("000001"), run_doc("000002"),
            run_doc("000003", bench=scaled(3.0, stage="solve")),
        ])
        text = trend_markdown(report)
        assert "REGRESSION" in text
        assert "| file_protocol |" in text
        assert "**solve**" in text

    def test_short_history_message(self):
        text = trend_markdown(detect_trend([run_doc("000001")]))
        assert "Not enough history" in text

    def test_new_and_stale_series_are_listed(self):
        base = make_doc()
        renamed = make_doc()
        renamed["runs"][0]["workload"] = "brand_new"
        text = trend_markdown(detect_trend([run_doc("000001", bench=base),
                                            run_doc("000002", bench=renamed)]))
        assert "New series" in text and "brand_new" in text
        assert "Stale series" in text and "file_protocol" in text
