"""The persistent run ledger: atomic append-only storage, id claiming,
querying, pruning, run-document assembly and the null/ambient contracts."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_LEDGER,
    EventStream,
    MetricsRegistry,
    NullLedger,
    RunLedger,
    Tracer,
    build_run_document,
    get_ledger,
    reset_ambient,
    set_ledger,
    use_ledger,
)
from repro.obs.ledger import LEDGER_FORMAT, RUN_SCHEMA


def make_doc(command="analyse", **kwargs):
    return build_run_document(command=command, **kwargs)


class TestStore:
    def test_record_assigns_sequential_zero_padded_ids(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        assert ledger.record(make_doc()) == "000001"
        assert ledger.record(make_doc()) == "000002"
        assert ledger.run_ids() == ["000001", "000002"]
        assert len(ledger) == 2

    def test_load_roundtrip_and_padding_optional(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(make_doc(label="alpha"))
        assert ledger.load("1")["label"] == "alpha"
        assert ledger.load("000001")["run_id"] == "000001"

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunLedger(tmp_path).load("42")

    def test_format_marker_written_and_checked(self, tmp_path):
        RunLedger(tmp_path)
        assert (tmp_path / "FORMAT").read_text().strip() == LEDGER_FORMAT
        (tmp_path / "FORMAT").write_text("repro-runs/0\n")
        with pytest.raises(ValueError, match="repro-runs/0"):
            RunLedger(tmp_path)

    def test_record_rejects_non_run_documents(self, tmp_path):
        with pytest.raises(ValueError, match="schema"):
            RunLedger(tmp_path).record({"schema": "something-else/1"})

    def test_two_writers_never_share_an_id(self, tmp_path):
        # two independent handles on the same store, interleaved: the
        # exclusive-create claim pushes the loser to the next id
        a, b = RunLedger(tmp_path), RunLedger(tmp_path)
        ids = [a.record(make_doc()), b.record(make_doc()),
               a.record(make_doc()), b.record(make_doc())]
        assert ids == sorted(set(ids))
        assert len(a.run_ids()) == 4

    def test_runs_filters_by_command_and_tail_limits(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for command in ("batch", "analyse", "batch", "bench"):
            ledger.record(make_doc(command=command))
        batches = ledger.runs(command="batch")
        assert [d["command"] for d in batches] == ["batch", "batch"]
        assert [d["run_id"] for d in ledger.runs(last=2)] == \
               ["000003", "000004"]

    def test_torn_document_is_skipped_not_fatal(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(make_doc())
        (tmp_path / "run-000002.json").write_text('{"torn')
        assert [d["run_id"] for d in ledger.runs()] == ["000001"]
        # ...but a new record still lands after the dead id
        assert ledger.record(make_doc()) == "000003"

    def test_latest_and_empty(self, tmp_path):
        ledger = RunLedger(tmp_path)
        assert ledger.latest() is None
        ledger.record(make_doc(label="old"))
        ledger.record(make_doc(label="new"))
        assert ledger.latest()["label"] == "new"

    def test_prune_keeps_newest(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for _ in range(5):
            ledger.record(make_doc())
        assert ledger.prune(keep=2) == 3
        assert ledger.run_ids() == ["000004", "000005"]
        assert ledger.prune(keep=0) == 2
        with pytest.raises(ValueError):
            ledger.prune(keep=-1)

    def test_no_temp_files_left_behind(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(make_doc())
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name.startswith(".")]
        assert leftovers == []


class TestNullLedger:
    def test_shared_singleton_is_the_default(self):
        assert get_ledger() is NULL_LEDGER
        assert isinstance(NULL_LEDGER, NullLedger)
        assert NULL_LEDGER.enabled is False

    def test_records_vanish_and_queries_see_empty(self):
        assert NULL_LEDGER.record(make_doc()) == ""
        assert NULL_LEDGER.run_ids() == []
        assert NULL_LEDGER.runs() == []
        assert NULL_LEDGER.latest() is None
        assert NULL_LEDGER.prune(3) == 0
        assert len(NULL_LEDGER) == 0
        with pytest.raises(FileNotFoundError):
            NULL_LEDGER.load("1")


class TestAmbient:
    def test_set_and_use_roundtrip(self, tmp_path):
        ledger = RunLedger(tmp_path)
        previous = set_ledger(ledger)
        assert previous is NULL_LEDGER
        assert get_ledger() is ledger
        set_ledger(None)
        with use_ledger(ledger):
            assert get_ledger() is ledger
        assert get_ledger() is NULL_LEDGER

    def test_reset_ambient_clears_the_ledger(self, tmp_path):
        set_ledger(RunLedger(tmp_path))
        reset_ambient()
        assert get_ledger() is NULL_LEDGER


class TestBuildRunDocument:
    def test_minimal_document(self):
        document = build_run_document(command="analyse", created_unix=123.5)
        assert document["schema"] == RUN_SCHEMA
        assert document["command"] == "analyse"
        assert document["created_unix"] == 123.5
        assert document["label"] is None
        assert "platform" in document["host"]
        assert document["config"] == {}
        assert isinstance(document["config_fingerprint"], str)

    def test_config_fingerprint_tracks_config(self):
        a = build_run_document(command="x", config={"solver": "direct"})
        b = build_run_document(command="x", config={"solver": "gmres"})
        c = build_run_document(command="x", config={"solver": "direct"})
        assert a["config_fingerprint"] == c["config_fingerprint"]
        assert a["config_fingerprint"] != b["config_fingerprint"]

    def test_collector_sections(self):
        tracer, metrics, events = Tracer(), MetricsRegistry(), EventStream()
        with tracer.span("stage.solve"):
            pass
        metrics.counter("states_explored").inc(7)
        events.emit("solver.converged", iterations=3)
        document = build_run_document(
            command="analyse", tracer=tracer, metrics=metrics, events=events)
        assert document["spans"]["stage.solve"]["count"] == 1
        assert document["metrics"]["states_explored"]["value"] == 7
        assert document["events"] == {
            "count": 1, "dropped": 0, "by_name": {"solver.converged": 1}}

    def test_events_accepts_plain_dicts(self):
        document = build_run_document(
            command="batch",
            events=[{"event": "task.done"}, {"event": "task.done"},
                    {"event": "task.failed"}])
        assert document["events"]["by_name"] == \
               {"task.done": 2, "task.failed": 1}

    def test_empty_profile_is_elided(self):
        empty = {"schema": "repro-profile/1", "sample_count": 0, "samples": {}}
        full = {"schema": "repro-profile/1", "sample_count": 3,
                "samples": {"a;b": 3}}
        assert "profile" not in build_run_document(command="x", profile=empty)
        assert build_run_document(command="x", profile=full)["profile"] == full

    def test_optional_sections_and_extra(self):
        document = build_run_document(
            command="batch",
            bench={"schema": "repro-bench/1", "runs": []},
            cache={"hits": 3, "misses": 1},
            incidents=[{"task": "t1"}],
            trace={"schema": "repro-trace/1", "traces": []},
            tasks_fingerprint="abc123",
            extra={"exit_code": 0},
        )
        assert document["bench"]["schema"] == "repro-bench/1"
        assert document["cache"] == {"hits": 3, "misses": 1}
        assert document["incidents"] == [{"task": "t1"}]
        assert document["trace"]["schema"] == "repro-trace/1"
        assert document["tasks_fingerprint"] == "abc123"
        assert document["exit_code"] == 0

    def test_document_is_json_serialisable(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        document = build_run_document(command="x", tracer=tracer,
                                      config={"path": str(tmp_path)})
        json.dumps(document)
        ledger = RunLedger(tmp_path / "runs")
        run_id = ledger.record(document)
        assert ledger.load(run_id)["command"] == "x"
