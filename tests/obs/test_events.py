"""Event streams: bounded buffer, ambient install, JSONL round-trip,
and the per-iteration convergence / exploration instrumentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmc.steady import steady_state
from repro.ctmc.transient import transient_distribution
from repro.obs import (
    NULL_EVENTS,
    EventStream,
    NullEventStream,
    get_events,
    read_events_jsonl,
    set_events,
    use_events,
    write_events_jsonl,
)
from repro.pepa.ctmcgen import ctmc_from_statespace
from repro.pepa.parser import parse_model
from repro.pepa.statespace import derive
from repro.pepanets.measures import ctmc_of_net
from repro.pepanets.parser import parse_net

ITERATIVE_SOLVERS = ["gmres", "bicgstab", "power", "gauss_seidel", "jacobi"]


class TestEventStream:
    def test_emit_and_query(self):
        stream = EventStream()
        stream.emit("a", x=1)
        stream.emit("b", y=2.5)
        stream.emit("a", x=3)
        assert len(stream) == 3
        assert [e.fields["x"] for e in stream.by_name("a")] == [1, 3]
        assert stream.names() == ["a", "b"]
        assert stream.dropped == 0

    def test_timestamps_are_monotonic_from_stream_epoch(self):
        stream = EventStream()
        for i in range(5):
            stream.emit("tick", i=i)
        times = [e.t for e in stream]
        assert all(t >= 0 for t in times)
        assert times == sorted(times)

    def test_bounded_buffer_evicts_oldest_and_counts(self):
        stream = EventStream(capacity=4)
        for i in range(7):
            stream.emit("e", i=i)
        assert len(stream) == 4
        assert stream.dropped == 3
        # the tail survives, the head is gone
        assert [e.fields["i"] for e in stream] == [3, 4, 5, 6]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventStream(capacity=0)

    def test_clear_resets_buffer_and_dropped(self):
        stream = EventStream(capacity=2)
        for i in range(5):
            stream.emit("e", i=i)
        stream.clear()
        assert len(stream) == 0
        assert stream.dropped == 0

    def test_to_dicts_is_flat_and_json_ready(self):
        import json

        stream = EventStream()
        stream.emit("solver.convergence", solver="gmres", iteration=1,
                    residual=1e-9)
        (record,) = stream.to_dicts()
        assert record["event"] == "solver.convergence"
        assert record["solver"] == "gmres"
        assert record["iteration"] == 1
        assert record["t_s"] >= 0
        assert json.dumps(record)


class TestAmbientInstall:
    def test_default_is_shared_null_stream(self):
        assert get_events() is NULL_EVENTS
        assert isinstance(get_events(), NullEventStream)
        assert get_events().enabled is False

    def test_null_stream_swallows_everything(self):
        NULL_EVENTS.emit("anything", x=1)
        assert len(NULL_EVENTS) == 0
        assert NULL_EVENTS.by_name("anything") == []
        assert NULL_EVENTS.to_dicts() == []
        assert list(NULL_EVENTS) == []

    def test_use_events_installs_and_restores(self):
        stream = EventStream()
        with use_events(stream):
            assert get_events() is stream
            assert get_events().enabled is True
        assert get_events() is NULL_EVENTS

    def test_use_events_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_events(EventStream()):
                raise RuntimeError("boom")
        assert get_events() is NULL_EVENTS

    def test_set_events_none_disables(self):
        previous = set_events(EventStream())
        assert previous is NULL_EVENTS
        assert set_events(None) is not NULL_EVENTS
        assert get_events() is NULL_EVENTS


class TestJsonl:
    def test_round_trip(self, tmp_path):
        stream = EventStream()
        stream.emit("a", x=1, label="first")
        stream.emit("b", y=2.25)
        path = tmp_path / "events.jsonl"
        assert write_events_jsonl(path, stream) == 2
        header, events = read_events_jsonl(path)
        assert header == {"schema": "repro-events/1", "events": 2, "dropped": 0}
        assert [e["event"] for e in events] == ["a", "b"]
        assert events[0]["x"] == 1 and events[0]["label"] == "first"
        assert events[1]["y"] == 2.25

    def test_header_records_evictions(self, tmp_path):
        stream = EventStream(capacity=2)
        for i in range(5):
            stream.emit("e", i=i)
        path = tmp_path / "events.jsonl"
        write_events_jsonl(path, stream)
        header, events = read_events_jsonl(path)
        assert header["dropped"] == 3
        assert len(events) == 2

    def test_read_rejects_non_event_files(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"schema": "other/1"}\n')
        with pytest.raises(ValueError):
            read_events_jsonl(path)


@pytest.fixture
def ergodic_chain(file_model):
    return ctmc_from_statespace(derive(file_model))


class TestSolverConvergenceEvents:
    @pytest.mark.parametrize("method", ITERATIVE_SOLVERS)
    def test_every_iterative_solver_emits_convergence_events(
        self, ergodic_chain, method
    ):
        stream = EventStream()
        with use_events(stream):
            steady_state(ergodic_chain, method=method, tol=1e-10)
        events = stream.by_name("solver.convergence")
        assert events, f"{method} emitted no convergence events"
        for event in events:
            assert event.fields["solver"] == method
            assert event.fields["iteration"] >= 0
            assert event.fields["residual"] >= 0.0
            assert event.fields["elapsed_s"] >= 0.0
        iterations = [e.fields["iteration"] for e in events]
        assert iterations == sorted(iterations)

    def test_stationary_iteration_residuals_decrease_overall(self, ergodic_chain):
        stream = EventStream()
        with use_events(stream):
            steady_state(ergodic_chain, method="power", tol=1e-10)
        residuals = [e.fields["residual"]
                     for e in stream.by_name("solver.convergence")]
        assert len(residuals) >= 2
        assert residuals[-1] < residuals[0]
        assert residuals[-1] < 1e-10

    def test_direct_solver_emits_no_convergence_events(self, ergodic_chain):
        stream = EventStream()
        with use_events(stream):
            steady_state(ergodic_chain, method="direct")
        assert stream.by_name("solver.convergence") == []

    def test_disabled_by_default_costs_nothing(self, ergodic_chain):
        steady_state(ergodic_chain, method="power", tol=1e-10)
        assert len(get_events()) == 0


class TestUniformizationEvents:
    def test_steps_are_recorded_with_accumulating_mass(self, ergodic_chain):
        stream = EventStream()
        with use_events(stream):
            transient_distribution(ergodic_chain, 0.5)
        steps = stream.by_name("uniformization.step")
        assert steps
        ks = [e.fields["step"] for e in steps]
        assert ks == list(range(1, len(ks) + 1))
        masses = [e.fields["accumulated_mass"] for e in steps]
        assert masses == sorted(masses)
        assert masses[-1] == pytest.approx(1.0, abs=1e-9)
        assert all(e.fields["of"] == ks[-1] for e in steps)


class TestExplorationProgressEvents:
    def test_pepa_derivation_emits_progress(self, file_model, monkeypatch):
        from repro.core import explore

        monkeypatch.setattr(explore, "PROGRESS_INTERVAL", 2)
        stream = EventStream()
        with use_events(stream):
            space = derive(file_model)
        progress = stream.by_name("explore.progress")
        assert progress
        final = progress[-1]
        assert final.fields["stage"] == "pepa.statespace"
        assert final.fields["explored"] == space.size
        assert final.fields["frontier"] == 0
        assert final.fields["states_per_sec"] is None or \
            final.fields["states_per_sec"] > 0

    def test_net_exploration_emits_progress(self, monkeypatch):
        from repro.core import explore

        monkeypatch.setattr(explore, "PROGRESS_INTERVAL", 2)
        net = parse_net(
            """
            Tok = (go, 1.0).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            ab = (go, 1.0) : A -> B;
            ba = (go, 1.0) : B -> A;
            """
        )
        stream = EventStream()
        with use_events(stream):
            space, _chain = ctmc_of_net(net)
        progress = stream.by_name("explore.progress")
        assert progress
        assert progress[-1].fields["stage"] == "pepanet.markingspace"
        assert progress[-1].fields["explored"] == space.size
