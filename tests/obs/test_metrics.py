"""Unit tests for the metrics registry (:mod:`repro.obs.metrics`)."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    nearest_rank,
    set_metrics,
    use_metrics,
)
from repro.obs.metrics import _NULL_INSTRUMENT


class TestCounter:
    def test_increments(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        c.inc(0)
        assert c.value == 5

    def test_rejects_negative(self):
        c = Counter("n")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)
        assert c.value == 0

    def test_as_dict(self):
        c = Counter("n")
        c.inc(3)
        assert c.as_dict() == {"type": "counter", "value": 3}


class TestGauge:
    def test_set_moves_both_ways(self):
        g = Gauge("residual")
        assert g.value is None
        g.set(1e-3)
        g.set(1e-12)
        assert g.value == 1e-12
        assert g.as_dict() == {"type": "gauge", "value": 1e-12}


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("t")
        for v in (2.0, 8.0, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 15.0
        assert h.min == 2.0
        assert h.max == 8.0
        assert h.mean == 5.0

    def test_empty_histogram(self):
        h = Histogram("t")
        assert h.mean is None
        assert h.as_dict() == {
            "type": "histogram",
            "count": 0,
            "sum": 0.0,
            "min": None,
            "max": None,
            "mean": None,
        }


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        c = reg.counter("states")
        c.inc(7)
        assert reg.counter("states") is c
        assert reg.counter("states").value == 7

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_container_protocol(self):
        reg = MetricsRegistry()
        assert len(reg) == 0
        assert "a" not in reg
        reg.gauge("b")
        reg.counter("a")
        assert "a" in reg and "b" in reg
        assert len(reg) == 2
        assert reg.names() == ["a", "b"]
        reg.clear()
        assert len(reg) == 0

    def test_as_dict_schema_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z").inc(1)
        reg.gauge("a").set(0.5)
        data = reg.as_dict()
        assert data["schema"] == "repro-metrics/1"
        assert list(data["metrics"]) == ["a", "z"]
        assert data["metrics"]["z"] == {"type": "counter", "value": 1}


class TestNullMetrics:
    def test_every_lookup_is_the_shared_sink(self):
        assert NULL_METRICS.counter("a") is _NULL_INSTRUMENT
        assert NULL_METRICS.gauge("b") is _NULL_INSTRUMENT
        assert NULL_METRICS.histogram("c") is _NULL_INSTRUMENT

    def test_sink_swallows_everything(self):
        sink = NULL_METRICS.counter("a")
        sink.inc(10)
        sink.set(3.0)
        sink.observe(1.0)
        assert sink.value == 0
        assert sink.count == 0
        assert sink.as_dict() == {}

    def test_empty_registry_protocol(self):
        assert "a" not in NULL_METRICS
        assert len(NULL_METRICS) == 0
        assert NULL_METRICS.names() == []
        assert NULL_METRICS.as_dict() == {"schema": "repro-metrics/1", "metrics": {}}


class TestAmbientInstallation:
    def test_default_is_null(self):
        assert get_metrics() is NULL_METRICS

    def test_set_metrics_roundtrip(self):
        reg = MetricsRegistry()
        previous = set_metrics(reg)
        try:
            assert previous is NULL_METRICS
            assert get_metrics() is reg
        finally:
            set_metrics(None)
        assert get_metrics() is NULL_METRICS

    def test_use_metrics_restores(self):
        reg = MetricsRegistry()
        with use_metrics(reg):
            assert get_metrics() is reg
        assert get_metrics() is NULL_METRICS

    def test_statespace_records_counters(self):
        from repro.pepa.parser import parse_model
        from repro.pepa.statespace import derive

        model = parse_model("P = (a, 1.0).Q;\nQ = (b, 2.0).P;\nP")
        reg = MetricsRegistry()
        with use_metrics(reg):
            space = derive(model)
        assert reg.counter("states_explored").value == space.size == 2
        assert reg.counter("transitions").value == len(space.arcs) == 2

    def test_solver_records_iterations(self):
        from repro.pepa.measures import analyse
        from repro.pepa.parser import parse_model

        model = parse_model("P = (a, 1.0).Q;\nQ = (b, 2.0).P;\nP")
        reg = MetricsRegistry()
        with use_metrics(reg):
            analyse(model, solver="power")
        assert reg.counter("solver_iterations").value > 0
        assert reg.counter("spmv_count").value > 0


class TestNearestRank:
    def test_single_sample_is_every_percentile(self):
        assert nearest_rank([7.0], 1) == 7.0
        assert nearest_rank([7.0], 50) == 7.0
        assert nearest_rank([7.0], 100) == 7.0

    def test_q100_is_the_maximum(self):
        assert nearest_rank([1.0, 2.0, 3.0], 100) == 3.0

    def test_exact_boundary_rank(self):
        # 20 samples: p95 rank = ceil(0.95 * 20) = 19 → the 19th value,
        # an observed sample, never an interpolation
        values = [float(i) for i in range(1, 21)]
        assert nearest_rank(values, 95) == 19.0
        assert nearest_rank(values, 90) == 18.0
        assert nearest_rank(values, 50) == 10.0

    def test_low_q_clamps_to_first_sample(self):
        assert nearest_rank([1.0, 2.0, 3.0, 4.0], 1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            nearest_rank([], 50)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 101)


class TestHistogramPercentiles:
    def test_percentile_matches_nearest_rank(self):
        histogram = Histogram("t")
        for value in (0.4, 0.1, 0.3, 0.2):  # unsorted on purpose
            histogram.observe(value)
        assert histogram.percentile(50) == 0.2
        assert histogram.percentile(95) == 0.4
        assert histogram.percentile(100) == 0.4

    def test_percentile_before_first_sample_is_none(self):
        assert Histogram("t").percentile(95) is None

    def test_summary_keys_and_values(self):
        histogram = Histogram("t")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary == {
            "count": 4, "sum": 10.0, "min": 1.0, "max": 4.0, "mean": 2.5,
            "p50": 2.0, "p90": 4.0, "p95": 4.0, "p99": 4.0,
            "samples_dropped": 0,
        }

    def test_sample_limit_degrades_percentiles_not_totals(self):
        histogram = Histogram("t", sample_limit=3)
        for value in (1.0, 2.0, 3.0, 100.0, 200.0):
            histogram.observe(value)
        # count/sum/min/max stay exact past the retention bound
        assert histogram.count == 5
        assert histogram.total == 306.0
        assert histogram.max == 200.0
        assert histogram.samples_dropped == 2
        # percentiles degrade to the retained prefix, flagged above
        assert histogram.percentile(100) == 3.0
        assert histogram.summary()["samples_dropped"] == 2

    def test_as_dict_still_excludes_percentiles(self):
        # snapshots merge across workers; percentiles don't merge
        histogram = Histogram("t")
        histogram.observe(1.0)
        assert "p95" not in histogram.as_dict()
        assert set(histogram.as_dict()) == \
               {"type", "count", "sum", "min", "max", "mean"}

    def test_aggregate_spans_and_histogram_agree_on_p95(self):
        from repro.obs.analysis import aggregate_spans

        durations = [0.01 * i for i in range(1, 8)]
        histogram = Histogram("t")
        trace = {"schema": "repro-trace/1", "traces": []}
        for duration in durations:
            histogram.observe(duration)
            trace["traces"].append({"name": "stage", "duration_s": duration,
                                    "children": []})
        aggregate = aggregate_spans(trace)
        assert aggregate["stage"]["p95_s"] == histogram.percentile(95)
