"""Unit tests for the metrics registry (:mod:`repro.obs.metrics`)."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.metrics import _NULL_INSTRUMENT


class TestCounter:
    def test_increments(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        c.inc(0)
        assert c.value == 5

    def test_rejects_negative(self):
        c = Counter("n")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)
        assert c.value == 0

    def test_as_dict(self):
        c = Counter("n")
        c.inc(3)
        assert c.as_dict() == {"type": "counter", "value": 3}


class TestGauge:
    def test_set_moves_both_ways(self):
        g = Gauge("residual")
        assert g.value is None
        g.set(1e-3)
        g.set(1e-12)
        assert g.value == 1e-12
        assert g.as_dict() == {"type": "gauge", "value": 1e-12}


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("t")
        for v in (2.0, 8.0, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 15.0
        assert h.min == 2.0
        assert h.max == 8.0
        assert h.mean == 5.0

    def test_empty_histogram(self):
        h = Histogram("t")
        assert h.mean is None
        assert h.as_dict() == {
            "type": "histogram",
            "count": 0,
            "sum": 0.0,
            "min": None,
            "max": None,
            "mean": None,
        }


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        c = reg.counter("states")
        c.inc(7)
        assert reg.counter("states") is c
        assert reg.counter("states").value == 7

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_container_protocol(self):
        reg = MetricsRegistry()
        assert len(reg) == 0
        assert "a" not in reg
        reg.gauge("b")
        reg.counter("a")
        assert "a" in reg and "b" in reg
        assert len(reg) == 2
        assert reg.names() == ["a", "b"]
        reg.clear()
        assert len(reg) == 0

    def test_as_dict_schema_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z").inc(1)
        reg.gauge("a").set(0.5)
        data = reg.as_dict()
        assert data["schema"] == "repro-metrics/1"
        assert list(data["metrics"]) == ["a", "z"]
        assert data["metrics"]["z"] == {"type": "counter", "value": 1}


class TestNullMetrics:
    def test_every_lookup_is_the_shared_sink(self):
        assert NULL_METRICS.counter("a") is _NULL_INSTRUMENT
        assert NULL_METRICS.gauge("b") is _NULL_INSTRUMENT
        assert NULL_METRICS.histogram("c") is _NULL_INSTRUMENT

    def test_sink_swallows_everything(self):
        sink = NULL_METRICS.counter("a")
        sink.inc(10)
        sink.set(3.0)
        sink.observe(1.0)
        assert sink.value == 0
        assert sink.count == 0
        assert sink.as_dict() == {}

    def test_empty_registry_protocol(self):
        assert "a" not in NULL_METRICS
        assert len(NULL_METRICS) == 0
        assert NULL_METRICS.names() == []
        assert NULL_METRICS.as_dict() == {"schema": "repro-metrics/1", "metrics": {}}


class TestAmbientInstallation:
    def test_default_is_null(self):
        assert get_metrics() is NULL_METRICS

    def test_set_metrics_roundtrip(self):
        reg = MetricsRegistry()
        previous = set_metrics(reg)
        try:
            assert previous is NULL_METRICS
            assert get_metrics() is reg
        finally:
            set_metrics(None)
        assert get_metrics() is NULL_METRICS

    def test_use_metrics_restores(self):
        reg = MetricsRegistry()
        with use_metrics(reg):
            assert get_metrics() is reg
        assert get_metrics() is NULL_METRICS

    def test_statespace_records_counters(self):
        from repro.pepa.parser import parse_model
        from repro.pepa.statespace import derive

        model = parse_model("P = (a, 1.0).Q;\nQ = (b, 2.0).P;\nP")
        reg = MetricsRegistry()
        with use_metrics(reg):
            space = derive(model)
        assert reg.counter("states_explored").value == space.size == 2
        assert reg.counter("transitions").value == len(space.arcs) == 2

    def test_solver_records_iterations(self):
        from repro.pepa.measures import analyse
        from repro.pepa.parser import parse_model

        model = parse_model("P = (a, 1.0).Q;\nQ = (b, 2.0).P;\nP")
        reg = MetricsRegistry()
        with use_metrics(reg):
            analyse(model, solver="power")
        assert reg.counter("solver_iterations").value > 0
        assert reg.counter("spmv_count").value > 0
