"""The sampling profiler: deterministic sample folding, live sampling
attributed to the ambient span stack, the resource probe's exact
per-span accounting, and the null/ambient contracts."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import (
    NULL_PROFILER,
    NullProfiler,
    ProfileConfig,
    SamplingProfiler,
    SpanResourceProbe,
    Tracer,
    collapsed_text,
    get_profile_config,
    get_profiler,
    reset_ambient,
    set_profile_config,
    set_profiler,
    use_profile_config,
    use_profiler,
    use_resource_probe,
    use_tracer,
)
from repro.obs.profile import DEFAULT_INTERVAL, PROFILE_SCHEMA


class TestProfileConfig:
    def test_defaults(self):
        config = ProfileConfig()
        assert config.interval == DEFAULT_INTERVAL
        assert config.memory is False

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            ProfileConfig(interval=0)
        with pytest.raises(ValueError, match="interval"):
            ProfileConfig(interval=-0.1)

    def test_frozen_and_picklable(self):
        import pickle

        config = ProfileConfig(interval=0.01, memory=True)
        with pytest.raises(Exception):
            config.interval = 0.02
        assert pickle.loads(pickle.dumps(config)) == config


class TestDeterministicRecording:
    def test_record_folds_counts(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.record(("a", "b"), count=2, t=0.0)
        profiler.record(("a", "b"), t=0.001)
        profiler.record(("a", "c"), t=0.002)
        assert profiler.samples == {("a", "b"): 3, ("a", "c"): 1}
        assert profiler.sample_count == 4

    def test_collapsed_format_is_sorted_semicolon_lines(self):
        profiler = SamplingProfiler()
        profiler.record(("z", "tail"), t=0.0)
        profiler.record(("a", "head"), count=4, t=0.0)
        assert profiler.collapsed() == "a;head 4\nz;tail 1\n"

    def test_collapsed_empty(self):
        assert SamplingProfiler().collapsed() == ""

    def test_to_dict_schema(self):
        profiler = SamplingProfiler(interval=0.002)
        profiler.record(("main", "solve"), count=3, t=0.5)
        document = profiler.to_dict()
        assert document["schema"] == PROFILE_SCHEMA
        assert document["interval_s"] == 0.002
        assert document["sample_count"] == 3
        assert document["samples"] == {"main;solve": 3}
        assert document["timeline"] == [[0.5, "main;solve"]]
        assert document["timeline_dropped"] == 0

    def test_timeline_is_bounded(self, monkeypatch):
        monkeypatch.setattr("repro.obs.profile.TIMELINE_CAPACITY", 2)
        profiler = SamplingProfiler()
        for i in range(5):
            profiler.record(("f",), t=float(i))
        assert len(profiler.timeline) == 2
        assert profiler.timeline_dropped == 3
        # the aggregated counters stay exact past the timeline bound
        assert profiler.samples[("f",)] == 5

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            SamplingProfiler(interval=0)

    def test_collapsed_text_renders_a_document(self):
        profiler = SamplingProfiler()
        profiler.record(("a", "b"), count=2, t=0.0)
        assert collapsed_text(profiler.to_dict()) == "a;b 2\n"
        assert collapsed_text({"samples": {}}) == ""


class TestLiveSampling:
    def test_samples_are_prefixed_with_ambient_span_stack(self):
        tracer = Tracer()
        profiler = SamplingProfiler(interval=0.001, tracer=tracer)
        deadline = time.perf_counter() + 0.25
        with use_tracer(tracer), tracer.span("stage.busy"), profiler:
            while time.perf_counter() < deadline and profiler.sample_count == 0:
                sum(range(1000))  # keep the target thread busy
        assert profiler.sample_count > 0
        assert any(stack[0] == "stage.busy" for stack in profiler.samples)

    def test_context_manager_stops_the_thread(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            assert profiler._thread is not None
        assert profiler._thread is None
        count = profiler.sample_count
        time.sleep(0.01)
        assert profiler.sample_count == count  # no sampling after stop

    def test_start_is_idempotent(self):
        profiler = SamplingProfiler(interval=0.001)
        try:
            thread = profiler.start()._thread
            assert profiler.start()._thread is thread
        finally:
            profiler.stop()
        assert threading.active_count() >= 1  # the daemon really joined

    def test_other_thread_can_be_targeted(self):
        stop = threading.Event()

        def busy():
            while not stop.is_set():
                sum(range(1000))

        worker = threading.Thread(target=busy, daemon=True)
        worker.start()
        profiler = SamplingProfiler(interval=0.001,
                                    target_thread=worker.ident)
        deadline = time.perf_counter() + 0.25
        with profiler:
            while time.perf_counter() < deadline and profiler.sample_count == 0:
                time.sleep(0.005)
        stop.set()
        worker.join()
        assert profiler.sample_count > 0


class TestNullProfiler:
    def test_shared_singleton_is_the_default(self):
        assert get_profiler() is NULL_PROFILER
        assert isinstance(NULL_PROFILER, NullProfiler)
        assert NULL_PROFILER.enabled is False

    def test_everything_is_a_no_op(self):
        NULL_PROFILER.record(("a",), count=5)
        with NULL_PROFILER:
            pass
        assert NULL_PROFILER.sample_count == 0
        assert NULL_PROFILER.collapsed() == ""
        document = NULL_PROFILER.to_dict()
        assert document["schema"] == PROFILE_SCHEMA
        assert document["sample_count"] == 0


class TestAmbient:
    def test_set_profiler_roundtrip(self):
        profiler = SamplingProfiler()
        previous = set_profiler(profiler)
        try:
            assert previous is NULL_PROFILER
            assert get_profiler() is profiler
        finally:
            set_profiler(None)
        assert get_profiler() is NULL_PROFILER

    def test_use_profiler_restores(self):
        profiler = SamplingProfiler()
        with use_profiler(profiler):
            assert get_profiler() is profiler
        assert get_profiler() is NULL_PROFILER

    def test_profile_config_roundtrip(self):
        config = ProfileConfig(interval=0.01)
        assert get_profile_config() is None
        with use_profile_config(config):
            assert get_profile_config() is config
        assert get_profile_config() is None

    def test_reset_ambient_clears_profiler_and_config(self):
        set_profiler(SamplingProfiler())
        set_profile_config(ProfileConfig())
        reset_ambient()
        assert get_profiler() is NULL_PROFILER
        assert get_profile_config() is None


class TestSpanResourceProbe:
    def test_cpu_is_stamped_on_closed_spans(self):
        tracer = Tracer()
        with use_tracer(tracer), use_resource_probe(SpanResourceProbe()):
            with tracer.span("work"):
                sum(range(10_000))
        (root,) = tracer.roots
        assert "cpu_s" in root.attributes
        assert root.attributes["cpu_s"] >= 0

    def test_memory_mode_stamps_allocation_and_peak(self):
        tracer = Tracer()
        with use_tracer(tracer), \
                use_resource_probe(SpanResourceProbe(memory=True)):
            with tracer.span("alloc"):
                keep = [bytearray(64 * 1024)]
            del keep
        (root,) = tracer.roots
        assert root.attributes["mem_peak_kib"] >= 64
        assert "mem_alloc_kib" in root.attributes

    def test_memory_probe_stops_tracemalloc_it_started(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        with use_resource_probe(SpanResourceProbe(memory=True)):
            assert tracemalloc.is_tracing()
        assert not tracemalloc.is_tracing()

    def test_no_probe_means_no_cpu_attribute(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("work"):
                pass
        (root,) = tracer.roots
        assert "cpu_s" not in root.attributes
