"""Trace analysis: critical path, aggregation, diff — on hand-built
span trees and on the bundled golden PDA traces."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import (
    Span,
    Tracer,
    aggregate_spans,
    critical_path,
    diff_traces,
    load_trace,
    render_aggregate,
    render_critical_path,
    render_trace_diff,
    use_tracer,
)

GOLDENS = Path(__file__).resolve().parents[1] / "goldens"


def span_dict(name, duration, *children, attributes=None):
    return {
        "name": name,
        "duration_s": duration,
        "attributes": attributes or {},
        "children": list(children),
    }


@pytest.fixture
def pipeline_doc():
    """A hand-built two-root trace shaped like a real pipeline run."""
    return {
        "schema": "repro-trace/1",
        "traces": [
            span_dict(
                "diagram.activity", 10.0,
                span_dict("extract", 1.0),
                span_dict(
                    "solve", 8.0,
                    span_dict("pepa.statespace", 2.0),
                    span_dict("ctmc.assemble", 1.0),
                    span_dict("ctmc.solve", 4.5, attributes={"method": "gmres"}),
                ),
                span_dict("reflect", 0.5),
            ),
            span_dict("pipeline.write", 1.0),
        ],
    }


class TestCriticalPath:
    def test_follows_heaviest_chain(self, pipeline_doc):
        path = critical_path(pipeline_doc)
        assert [p["name"] for p in path] == \
            ["diagram.activity", "solve", "ctmc.solve"]

    def test_self_time_subtracts_children(self, pipeline_doc):
        path = critical_path(pipeline_doc)
        by_name = {p["name"]: p for p in path}
        assert by_name["diagram.activity"]["self_s"] == pytest.approx(0.5)
        assert by_name["solve"]["self_s"] == pytest.approx(0.5)
        assert by_name["ctmc.solve"]["self_s"] == pytest.approx(4.5)

    def test_share_is_relative_to_root(self, pipeline_doc):
        path = critical_path(pipeline_doc)
        assert path[0]["share"] == pytest.approx(1.0)
        assert path[-1]["share"] == pytest.approx(0.45)

    def test_attributes_are_carried(self, pipeline_doc):
        path = critical_path(pipeline_doc)
        assert path[-1]["attributes"] == {"method": "gmres"}

    def test_picks_heaviest_root(self, pipeline_doc):
        # pipeline.write (1.0) must lose to diagram.activity (10.0)
        assert critical_path(pipeline_doc)[0]["name"] == "diagram.activity"

    def test_empty_trace(self):
        assert critical_path({"schema": "repro-trace/1", "traces": []}) == []

    def test_accepts_live_tracer_and_span(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        path = critical_path(tracer)
        assert [p["name"] for p in path] == ["root", "child"]
        assert critical_path(tracer.roots[0])[0]["name"] == "root"

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            critical_path(42)


class TestAggregate:
    def test_counts_and_totals(self, pipeline_doc):
        agg = aggregate_spans(pipeline_doc)
        assert agg["diagram.activity"]["count"] == 1
        assert agg["solve"]["total_s"] == pytest.approx(8.0)
        # sorted by descending total time
        assert list(agg)[0] == "diagram.activity"

    def test_repeated_names_aggregate(self):
        doc = {"schema": "repro-trace/1", "traces": [
            span_dict("root", 10.0,
                      *[span_dict("ctmc.solve", float(i)) for i in range(1, 6)]),
        ]}
        agg = aggregate_spans(doc)
        stats = agg["ctmc.solve"]
        assert stats["count"] == 5
        assert stats["total_s"] == pytest.approx(15.0)
        assert stats["mean_s"] == pytest.approx(3.0)
        assert stats["max_s"] == pytest.approx(5.0)
        assert stats["p95_s"] == pytest.approx(5.0)  # nearest rank of 5 samples

    def test_p95_on_larger_sample(self):
        doc = {"schema": "repro-trace/1", "traces": [
            span_dict("s", float(i)) for i in range(1, 101)
        ]}
        assert aggregate_spans(doc)["s"]["p95_s"] == pytest.approx(95.0)

    def test_p95_of_a_single_span_is_the_span_itself(self):
        # nearest rank pins small n: ceil(0.95 * 1) = 1 → the only sample
        doc = {"schema": "repro-trace/1",
               "traces": [span_dict("s", 0.125)]}
        stats = aggregate_spans(doc)["s"]
        assert stats["p95_s"] == pytest.approx(0.125)
        assert stats["p95_s"] == stats["max_s"] == stats["mean_s"]

    def test_p95_of_two_spans_is_the_slower_one(self):
        # ceil(0.95 * 2) = 2 → the maximum, never an interpolation
        doc = {"schema": "repro-trace/1", "traces": [
            span_dict("s", 0.1), span_dict("s", 0.9),
        ]}
        assert aggregate_spans(doc)["s"]["p95_s"] == pytest.approx(0.9)

    def test_p95_exact_boundary(self):
        # n = 20: rank ceil(0.95 * 20) = 19 exactly — pins the ceil
        # (not round, not floor) choice in nearest_rank
        doc = {"schema": "repro-trace/1", "traces": [
            span_dict("s", float(i)) for i in range(1, 21)
        ]}
        assert aggregate_spans(doc)["s"]["p95_s"] == pytest.approx(19.0)

    def test_p95_agrees_with_the_shared_nearest_rank(self):
        from repro.obs.metrics import nearest_rank

        durations = [0.3, 0.1, 0.7, 0.5, 0.2]
        doc = {"schema": "repro-trace/1",
               "traces": [span_dict("s", d) for d in durations]}
        assert aggregate_spans(doc)["s"]["p95_s"] == \
               nearest_rank(sorted(durations), 95)


class TestDiff:
    def test_biggest_mover_first_and_ratio(self, pipeline_doc):
        slower = json.loads(json.dumps(pipeline_doc))
        slower["traces"][0]["children"][1]["children"][2]["duration_s"] = 9.0
        rows = diff_traces(pipeline_doc, slower)
        assert rows[0]["name"] == "ctmc.solve"
        assert rows[0]["delta_s"] == pytest.approx(4.5)
        assert rows[0]["ratio"] == pytest.approx(2.0)

    def test_identical_traces_have_zero_deltas(self, pipeline_doc):
        rows = diff_traces(pipeline_doc, pipeline_doc)
        assert all(r["delta_s"] == pytest.approx(0.0) for r in rows)

    def test_span_only_on_one_side(self, pipeline_doc):
        pruned = json.loads(json.dumps(pipeline_doc))
        pruned["traces"] = pruned["traces"][:1]  # drop pipeline.write
        rows = {r["name"]: r for r in diff_traces(pipeline_doc, pruned)}
        gone = rows["pipeline.write"]
        assert gone["new_s"] is None
        assert gone["ratio"] is None
        assert gone["delta_s"] == pytest.approx(-1.0)

    def test_golden_pda_traces_diff_names_the_inflated_solver(self):
        base = load_trace(GOLDENS / "trace_pda_base.json")
        slow = load_trace(GOLDENS / "trace_pda_slow.json")
        rows = {r["name"]: r for r in diff_traces(base, slow)}
        assert rows["ctmc.solve"]["ratio"] == pytest.approx(2.0, rel=1e-6)
        # untouched stages stay put
        assert rows["pipeline.read"]["delta_s"] == pytest.approx(0.0, abs=1e-12)


class TestLoadTrace:
    def test_loads_golden(self):
        document = load_trace(GOLDENS / "trace_pda_base.json")
        assert document["schema"] == "repro-trace/1"
        assert any(t["name"] == "diagram.activity" for t in document["traces"])

    def test_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/9"}')
        with pytest.raises(ValueError):
            load_trace(bad)


class TestRenderers:
    def test_render_critical_path(self, pipeline_doc):
        text = render_critical_path(critical_path(pipeline_doc))
        assert "critical path" in text
        assert "ctmc.solve" in text
        assert "%" in text

    def test_render_aggregate(self, pipeline_doc):
        text = render_aggregate(aggregate_spans(pipeline_doc))
        assert "span" in text and "p95 ms" in text
        assert "diagram.activity" in text

    def test_render_diff(self, pipeline_doc):
        text = render_trace_diff(diff_traces(pipeline_doc, pipeline_doc))
        assert "ratio" in text
        assert "1.00x" in text

    def test_empty_renderings(self):
        assert render_critical_path([]) == "(empty trace)"
        assert render_aggregate({}) == "(empty trace)"
        assert render_trace_diff([]) == "(both traces empty)"
