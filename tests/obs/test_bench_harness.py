"""Schema and behaviour tests for ``benchmarks/run_bench.py``.

The bench harness is not an installed module; it is loaded here straight
from the ``benchmarks/`` directory so the golden ``repro-bench/1`` keys
every later PR compares against are pinned by tests.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_BENCH = Path(__file__).resolve().parents[2] / "benchmarks" / "run_bench.py"


@pytest.fixture(scope="module")
def run_bench():
    spec = importlib.util.spec_from_file_location("run_bench", _BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


RUN_KEYS = {
    "workload", "kind", "size", "solver",
    "n_states", "n_transitions", "stages", "total_s", "peak_rss_kb",
}
#: present on chain-building runs only (pepa / pepa-descriptor / net)
OPTIONAL_RUN_KEYS = {"generator", "generator_bytes"}


def assert_run_keys(record):
    assert RUN_KEYS <= set(record) <= RUN_KEYS | OPTIONAL_RUN_KEYS
DOC_KEYS = {"schema", "label", "created_unix", "quick", "solver", "host",
            "fault_counters", "runs"}
FAULT_COUNTER_KEYS = {"retries", "quarantined", "cache_evictions", "cache_corrupt"}


def test_workload_table_shape(run_bench):
    assert len(run_bench.WORKLOADS) >= 3
    for name, (kind, builder, sizes) in run_bench.WORKLOADS.items():
        assert kind in {"pepa", "pepa-descriptor", "net", "explore", "fluid"}
        assert callable(builder)
        assert len(sizes) >= 2, f"{name} needs >= 2 sizes for the sweep"
    # the kernel-throughput workload is part of the sweep
    assert run_bench.WORKLOADS["explore_throughput"][0] == "explore"


def test_run_one_pepa_record(run_bench):
    record = run_bench.run_one(
        "file_protocol", "pepa", run_bench.file_protocol_model,
        {"n_readers": 1}, "direct",
    )
    assert_run_keys(record)
    assert record["generator"] == "csr"
    assert record["generator_bytes"] > 0
    assert record["n_states"] > 0
    assert record["n_transitions"] > 0
    assert set(record["stages"]) == {"derive", "assemble", "solve"}
    assert all(t >= 0.0 for t in record["stages"].values())
    assert record["total_s"] >= 0.0
    assert record["peak_rss_kb"] > 0
    assert json.dumps(record)  # JSON-clean


def test_run_one_net_record(run_bench):
    from repro.workloads import courier_ring_net

    record = run_bench.run_one(
        "courier_ring", "net", courier_ring_net,
        {"n_places": 3, "n_couriers": 2}, "direct",
    )
    assert_run_keys(record)
    assert record["kind"] == "net"
    assert record["generator"] == "csr"
    assert record["generator_bytes"] > 0
    assert set(record["stages"]) == {"derive", "assemble", "solve"}


def test_run_one_fluid_record(run_bench):
    record = run_bench.run_one(
        "fluid_client_server", "fluid", run_bench.fluid_client_server_model,
        {"replicas": 1000}, "direct",
    )
    assert_run_keys(record)
    assert record["kind"] == "fluid"
    # ODE route: no generator, stage pair is compile+solve, the solver
    # column records the converged fluid method
    assert "generator" not in record
    assert set(record["stages"]) == {"compile", "solve"}
    assert record["solver"] in ("newton", "ode", "damped")
    assert record["n_states"] > 0  # NVF dimension
    assert json.dumps(record)


def test_run_one_explore_record(run_bench):
    from repro.workloads import client_server_model

    record = run_bench.run_one(
        "explore_throughput", "explore", client_server_model,
        {"n_clients": 4}, "direct",
    )
    assert_run_keys(record)
    assert "generator" not in record  # derive-only: no chain, no bytes
    assert record["kind"] == "explore"
    # derive-only: no assemble/solve stages, and a solver-independent
    # identity so --solver sweeps still match across bench documents
    assert set(record["stages"]) == {"derive"}
    assert record["solver"] == "none"
    assert record["n_states"] > 0
    assert json.dumps(record)


def test_run_one_leaves_ambient_collectors_disabled(run_bench):
    from repro.obs import NULL_METRICS, NULL_TRACER, get_metrics, get_tracer

    run_bench.run_one(
        "file_protocol", "pepa", run_bench.file_protocol_model,
        {"n_readers": 1}, "direct",
    )
    assert get_tracer() is NULL_TRACER
    assert get_metrics() is NULL_METRICS


def test_run_suite_quick_document(run_bench, monkeypatch):
    # A miniature sweep so the schema contract is exercised quickly.
    monkeypatch.setattr(run_bench, "WORKLOADS", {
        "file_protocol": (
            "pepa", run_bench.file_protocol_model,
            [{"n_readers": 1}, {"n_readers": 2}, {"n_readers": 3}],
        ),
    })
    document = run_bench.run_suite(quick=True, solver="direct", label="ci",
                                   progress=lambda *_: None)
    assert set(document) == DOC_KEYS
    assert document["schema"] == "repro-bench/1"
    assert document["quick"] is True
    # A healthy sweep reports its fault counters — and they are zero,
    # so the regression gate would surface accidental retries.
    assert set(document["fault_counters"]) == FAULT_COUNTER_KEYS
    assert all(v == 0 for v in document["fault_counters"].values())
    assert document["label"] == "ci"  # not shadowed by per-run progress labels
    assert set(document["host"]) == {"platform", "python", "numpy", "scipy"}
    # quick = first two sizes of each workload
    assert [r["size"] for r in document["runs"]] == [{"n_readers": 1}, {"n_readers": 2}]
    assert json.dumps(document)


def test_main_writes_output_file(run_bench, monkeypatch, tmp_path):
    monkeypatch.setattr(run_bench, "WORKLOADS", {
        "file_protocol": (
            "pepa", run_bench.file_protocol_model,
            [{"n_readers": 1}, {"n_readers": 1}],
        ),
    })
    out = tmp_path / "BENCH_TEST.json"
    assert run_bench.main(["--quick", "-o", str(out)]) == 0
    document = json.loads(out.read_text())
    assert document["schema"] == "repro-bench/1"
    assert len(document["runs"]) == 2


def test_cached_sweep_skips_exploration(run_bench, monkeypatch, tmp_path):
    """A second sweep over a warm cache derives nothing: no ``derive``
    stage in any record, yet identical state counts."""
    monkeypatch.setattr(run_bench, "WORKLOADS", {
        "file_protocol": (
            "pepa", run_bench.file_protocol_model,
            [{"n_readers": 1}, {"n_readers": 2}],
        ),
    })
    cache_dir = str(tmp_path / "cache")
    cold = run_bench.run_suite(quick=True, solver="direct", label="cold",
                               progress=lambda *_: None, cache_dir=cache_dir)
    warm = run_bench.run_suite(quick=True, solver="direct", label="warm",
                               progress=lambda *_: None, cache_dir=cache_dir)
    for cold_run, warm_run in zip(cold["runs"], warm["runs"]):
        assert "derive" in cold_run["stages"]
        assert "derive" not in warm_run["stages"]
        assert warm_run["n_states"] == cold_run["n_states"]
        assert warm_run["n_transitions"] == cold_run["n_transitions"]


def test_parallel_sweep_matches_serial_counts(run_bench, tmp_path):
    """--jobs fans out over workers; counts must match the serial sweep.

    Workers import ``run_bench`` by name, so this exercises the real
    multiprocess path (the module registers its directory on sys.path).
    """
    serial = run_bench.run_suite(quick=False, solver="direct", label="s",
                                 progress=lambda *_: None,
                                 sizes_per_workload=1)
    parallel = run_bench.run_suite(quick=False, solver="direct", label="p",
                                   progress=lambda *_: None,
                                   sizes_per_workload=1, jobs=2,
                                   cache_dir=str(tmp_path / "cache"))
    assert len(parallel["runs"]) == len(serial["runs"])
    for serial_run, parallel_run in zip(serial["runs"], parallel["runs"]):
        assert parallel_run["workload"] == serial_run["workload"]
        assert parallel_run["size"] == serial_run["size"]
        assert parallel_run["n_states"] == serial_run["n_states"]
        assert parallel_run["n_transitions"] == serial_run["n_transitions"]


@pytest.mark.parametrize("name", ["BENCH_PR2.json", "BENCH_PR4.json",
                                  "BENCH_PR9.json"])
def test_checked_in_bench_document_is_schema_valid(run_bench, name):
    bench_path = _BENCH.parent.parent / name
    document = json.loads(bench_path.read_text())
    # Snapshots written before the fault counters existed stay valid.
    assert DOC_KEYS - {"fault_counters"} <= set(document) <= DOC_KEYS
    assert document["schema"] == "repro-bench/1"
    workload_sizes: dict[str, set[str]] = {}
    for record in document["runs"]:
        assert_run_keys(record)
        assert record["n_states"] > 0
        workload_sizes.setdefault(record["workload"], set()).add(
            json.dumps(record["size"], sort_keys=True)
        )
    # Acceptance: >= 3 workloads at >= 2 sizes each, per-stage timings.
    assert len(workload_sizes) >= 3
    assert all(len(sizes) >= 2 for sizes in workload_sizes.values())


def test_pr4_baseline_contains_explore_throughput(run_bench):
    document = json.loads((_BENCH.parent.parent / "BENCH_PR4.json").read_text())
    explore_runs = [r for r in document["runs"]
                    if r["workload"] == "explore_throughput"]
    assert len(explore_runs) >= 2
    assert all(set(r["stages"]) == {"derive"} for r in explore_runs)
    assert all(r["solver"] == "none" for r in explore_runs)


def test_main_records_into_the_ledger(run_bench, monkeypatch, tmp_path):
    from repro.obs import RunLedger

    monkeypatch.setattr(run_bench, "WORKLOADS", {
        "file_protocol": (
            "pepa", run_bench.file_protocol_model,
            [{"n_readers": 1}, {"n_readers": 1}],
        ),
    })
    ledger_dir = tmp_path / "runs"
    out = tmp_path / "BENCH_TEST.json"
    assert run_bench.main(["--quick", "-o", str(out), "--label", "ci",
                           "--ledger", str(ledger_dir)]) == 0
    (document,) = RunLedger(ledger_dir).runs(command="bench")
    assert document["label"] == "ci"
    assert document["bench"]["schema"] == "repro-bench/1"
    assert document["bench"] == json.loads(out.read_text())
    assert document["config"]["quick"] is True


def test_profiled_sweep_writes_collapsed_stacks(run_bench, monkeypatch,
                                                tmp_path):
    monkeypatch.setattr(run_bench, "WORKLOADS", {
        "file_protocol": (
            "pepa", run_bench.file_protocol_model,
            [{"n_readers": 2}, {"n_readers": 2}],
        ),
    })
    folded = tmp_path / "profile.folded"
    assert run_bench.main(["--quick", "-o", str(tmp_path / "b.json"),
                           "--profile-interval", "0.001",
                           "--profile-out", str(folded)]) == 0
    assert folded.exists()


def test_run_one_descriptor_record(run_bench):
    from repro.workloads import client_server_model

    record = run_bench.run_one(
        "client_server_descriptor", "pepa-descriptor", client_server_model,
        {"n_clients": 3}, "gmres",
    )
    assert_run_keys(record)
    assert record["kind"] == "pepa-descriptor"
    assert record["generator"] == "descriptor"
    assert record["generator_bytes"] > 0
    assert set(record["stages"]) == {"derive", "assemble", "solve"}
    assert json.dumps(record)


def test_descriptor_stores_fewer_bytes_than_csr(run_bench):
    """The point of the matrix-free backend: at the largest bench size
    the descriptor's local matrices are smaller than the global CSR."""
    from repro.workloads import client_server_model

    size = {"n_clients": 7}
    csr = run_bench.run_one("client_server", "pepa", client_server_model,
                            size, "gmres")
    desc = run_bench.run_one("client_server_descriptor", "pepa-descriptor",
                             client_server_model, size, "gmres")
    assert desc["n_states"] == csr["n_states"]
    assert desc["generator_bytes"] < csr["generator_bytes"]


def test_pr9_baseline_contains_descriptor_workloads(run_bench):
    document = json.loads((_BENCH.parent.parent / "BENCH_PR9.json").read_text())
    descriptor_runs = [r for r in document["runs"]
                       if r["kind"] == "pepa-descriptor"]
    assert len(descriptor_runs) >= 2
    assert all(r["generator"] == "descriptor" for r in descriptor_runs)
    assert all(r["generator_bytes"] > 0 for r in descriptor_runs)
