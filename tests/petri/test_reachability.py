"""Unit tests for reachability analysis and structural invariants."""

import pytest

from repro.exceptions import BudgetExceededError, StateSpaceError
from repro.obs import EventStream, Tracer, use_events, use_tracer
from repro.petri import (
    PetriNet,
    build_reachability_graph,
    conserved_token_sum,
    p_invariants,
    t_invariants,
)
from repro.resilience import ExecutionBudget


def token_ring(n_places: int = 3, tokens: int = 1) -> PetriNet:
    net = PetriNet("ring")
    for i in range(n_places):
        net.add_place(f"p{i}", tokens=tokens if i == 0 else 0)
    for i in range(n_places):
        net.add_transition(f"t{i}", {f"p{i}": 1}, {f"p{(i + 1) % n_places}": 1})
    return net


def mutex_net() -> PetriNet:
    """Two processes competing for one mutex token."""
    net = PetriNet("mutex")
    net.add_place("idle1", tokens=1)
    net.add_place("crit1", tokens=0)
    net.add_place("idle2", tokens=1)
    net.add_place("crit2", tokens=0)
    net.add_place("mutex", tokens=1)
    net.add_transition("enter1", {"idle1": 1, "mutex": 1}, {"crit1": 1})
    net.add_transition("exit1", {"crit1": 1}, {"idle1": 1, "mutex": 1})
    net.add_transition("enter2", {"idle2": 1, "mutex": 1}, {"crit2": 1})
    net.add_transition("exit2", {"crit2": 1}, {"idle2": 1, "mutex": 1})
    return net


class TestReachability:
    def test_ring_marking_count(self):
        graph = build_reachability_graph(token_ring(3))
        assert graph.size == 3

    def test_ring_with_two_tokens(self):
        graph = build_reachability_graph(token_ring(3, tokens=2))
        # multiset of 2 identitiless tokens over 3 places: C(2+2,2) = 6
        assert graph.size == 6

    def test_mutex_exclusion_invariant(self):
        graph = build_reachability_graph(mutex_net())
        for m in graph.markings:
            assert m["crit1"] + m["crit2"] <= 1

    def test_mutex_graph_size(self):
        graph = build_reachability_graph(mutex_net())
        assert graph.size == 3  # both idle / 1 in crit / 2 in crit

    def test_deadlock_free_ring(self):
        assert build_reachability_graph(token_ring()).is_deadlock_free()

    def test_deadlock_detected(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_transition("t", {"p": 1}, {"q": 1})
        graph = build_reachability_graph(net)
        assert graph.deadlocks() == [1]

    def test_place_bounds(self):
        graph = build_reachability_graph(token_ring(3, tokens=2))
        assert graph.bound_of("p0") == 2
        assert not graph.is_safe()
        assert build_reachability_graph(token_ring(3, tokens=1)).is_safe()

    def test_unbounded_net_detected(self):
        net = PetriNet("unbounded")
        net.add_place("p", tokens=1)
        net.add_place("heap", tokens=0)
        net.add_transition("spawn", {"p": 1}, {"p": 1, "heap": 1})
        with pytest.raises(StateSpaceError, match="unbounded"):
            build_reachability_graph(net)

    def test_marking_ceiling(self):
        with pytest.raises(StateSpaceError, match="markings"):
            build_reachability_graph(token_ring(8, tokens=4), max_markings=5)

    def test_dead_transitions(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_place("never", tokens=0)
        net.add_transition("live", {"p": 1}, {"p": 1})
        net.add_transition("dead", {"never": 1}, {})
        graph = build_reachability_graph(net)
        assert graph.dead_transitions() == {"dead"}

    def test_live_transitions_in_ring(self):
        graph = build_reachability_graph(token_ring(3))
        assert graph.live_transitions() == {"t0", "t1", "t2"}

    def test_home_markings_of_reversible_net(self):
        graph = build_reachability_graph(mutex_net())
        # the mutex net is reversible: every marking is a home marking
        assert graph.home_markings() == [0, 1, 2]

    def test_no_home_marking_with_two_sinks(self):
        net = PetriNet()
        net.add_place("start", tokens=1)
        net.add_place("left")
        net.add_place("right")
        net.add_transition("go_left", {"start": 1}, {"left": 1})
        net.add_transition("go_right", {"start": 1}, {"right": 1})
        graph = build_reachability_graph(net)
        assert graph.home_markings() == []


class TestBudgetedReachability:
    """Petri reachability honours an ExecutionBudget via the shared
    exploration kernel — support it never had before."""

    def test_deadline_budget_aborts_exploration(self):
        budget = ExecutionBudget.of(deadline_seconds=0.0, check_every=1)
        with pytest.raises(BudgetExceededError) as info:
            build_reachability_graph(token_ring(8, tokens=4), budget=budget)
        assert info.value.stage == "petri reachability graph"
        assert info.value.explored >= 1

    def test_state_budget_aborts_exploration(self):
        budget = ExecutionBudget.of(max_states=3)
        with pytest.raises(BudgetExceededError) as info:
            build_reachability_graph(token_ring(8, tokens=4), budget=budget)
        assert info.value.explored == 4

    def test_roomy_budget_matches_unbudgeted_graph(self):
        roomy = ExecutionBudget.of(deadline_seconds=300.0, max_states=10_000)
        budgeted = build_reachability_graph(mutex_net(), budget=roomy)
        plain = build_reachability_graph(mutex_net())
        assert budgeted.markings == plain.markings
        assert budgeted.edges == plain.edges

    def test_coverability_honours_budget_too(self):
        from repro.petri import build_coverability_graph

        budget = ExecutionBudget.of(deadline_seconds=0.0, check_every=1)
        with pytest.raises(BudgetExceededError) as info:
            build_coverability_graph(token_ring(8, tokens=4), budget=budget)
        assert info.value.stage == "petri coverability graph"


class TestObservedReachability:
    """The kernel gives the Petri layer spans + progress events."""

    def test_exploration_is_traced(self):
        tracer = Tracer()
        with use_tracer(tracer):
            graph = build_reachability_graph(mutex_net())
        span = tracer.roots[0]
        assert span.name == "petri.reachability"
        assert span.attributes["markings"] == graph.size
        assert span.attributes["arcs"] == len(graph.edges)
        assert span.closed

    def test_exploration_emits_progress_events(self, monkeypatch):
        from repro.core import explore

        monkeypatch.setattr(explore, "PROGRESS_INTERVAL", 2)
        stream = EventStream()
        with use_events(stream):
            graph = build_reachability_graph(token_ring(4, tokens=2))
        progress = stream.by_name("explore.progress")
        assert progress
        assert progress[-1].fields["stage"] == "petri.reachability"
        assert progress[-1].fields["explored"] == graph.size
        assert progress[-1].fields["frontier"] == 0

    def test_tracing_with_budget_and_events_together(self, monkeypatch):
        from repro.core import explore

        monkeypatch.setattr(explore, "PROGRESS_INTERVAL", 2)
        tracer, stream = Tracer(), EventStream()
        roomy = ExecutionBudget.of(deadline_seconds=300.0)
        with use_tracer(tracer), use_events(stream):
            graph = build_reachability_graph(mutex_net(), budget=roomy)
        assert graph.size == 3
        assert tracer.roots[0].name == "petri.reachability"
        assert stream.by_name("explore.progress")


class TestInvariants:
    def test_ring_conserves_tokens(self):
        invariants = p_invariants(token_ring(3))
        assert len(invariants) == 1
        assert invariants[0] == {"p0": 1, "p1": 1, "p2": 1}
        assert conserved_token_sum(token_ring(3), invariants[0]) == 1

    def test_mutex_invariants(self):
        # the null space is 3-dimensional: idle1+crit1, idle2+crit2 and
        # mutex+crit1+crit2 are all conserved
        invariants = p_invariants(mutex_net())
        assert len(invariants) == 3
        # every basis invariant is genuinely conserved on the graph
        graph = build_reachability_graph(mutex_net())
        for inv in invariants:
            sums = {sum(w * m[p] for p, w in inv.items()) for m in graph.markings}
            assert len(sums) == 1

    def test_t_invariant_of_ring(self):
        invariants = t_invariants(token_ring(3))
        assert invariants == [{"t0": 1, "t1": 1, "t2": 1}]

    def test_acyclic_net_has_no_t_invariant(self):
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_transition("t", {"a": 1}, {"b": 1})
        assert t_invariants(net) == []

    def test_weighted_invariant(self):
        """2 tokens of 'half' equal 1 token of 'whole': weights 1 and 2."""
        net = PetriNet()
        net.add_place("half", tokens=2)
        net.add_place("whole", tokens=0)
        net.add_transition("fuse", {"half": 2}, {"whole": 1})
        net.add_transition("split", {"whole": 1}, {"half": 2})
        invariants = p_invariants(net)
        assert len(invariants) == 1
        assert invariants[0] == {"half": 1, "whole": 2}
