"""Unit tests for P/T nets, markings and firing."""

import pytest

from repro.exceptions import WellFormednessError
from repro.petri import Marking, PetriNet


def producer_consumer() -> PetriNet:
    net = PetriNet("prodcons")
    net.add_place("idle", tokens=1)
    net.add_place("buffer", tokens=0, capacity=2)
    net.add_place("consumed", tokens=0)
    net.add_transition("produce", {"idle": 1}, {"idle": 1, "buffer": 1})
    net.add_transition("consume", {"buffer": 1}, {"consumed": 1})
    net.add_transition("reset", {"consumed": 1}, {})
    return net


class TestConstruction:
    def test_duplicate_place_rejected(self):
        net = PetriNet()
        net.add_place("p")
        with pytest.raises(WellFormednessError, match="already exists"):
            net.add_place("p")

    def test_duplicate_transition_rejected(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_transition("t", {"p": 1}, {})
        with pytest.raises(WellFormednessError, match="already exists"):
            net.add_transition("t", {"p": 1}, {})

    def test_unknown_place_in_arc_rejected(self):
        net = PetriNet()
        with pytest.raises(WellFormednessError, match="unknown place"):
            net.add_transition("t", {"ghost": 1}, {})

    def test_zero_weight_rejected(self):
        net = PetriNet()
        net.add_place("p")
        with pytest.raises(WellFormednessError, match="weight"):
            net.add_transition("t", {"p": 0}, {})

    def test_negative_initial_tokens_rejected(self):
        net = PetriNet()
        with pytest.raises(WellFormednessError):
            net.add_place("p", tokens=-1)

    def test_initial_tokens_over_capacity_rejected(self):
        net = PetriNet()
        with pytest.raises(WellFormednessError, match="capacity"):
            net.add_place("p", tokens=3, capacity=2)

    def test_list_arc_spec_counts_duplicates(self):
        net = PetriNet()
        net.add_place("p", tokens=2)
        t = net.add_transition("t", ["p", "p"], [])
        assert t.inputs == (("p", 2),)


class TestFiring:
    def test_simple_fire_moves_tokens(self):
        net = producer_consumer()
        m1 = net.fire(net.transitions["produce"], net.initial_marking)
        assert m1["buffer"] == 1
        assert m1["idle"] == 1

    def test_fire_without_concession_rejected(self):
        net = producer_consumer()
        with pytest.raises(WellFormednessError, match="concession"):
            net.fire(net.transitions["consume"], net.initial_marking)

    def test_capacity_blocks_concession(self):
        net = producer_consumer()
        m = net.initial_marking
        m = net.fire(net.transitions["produce"], m)
        m = net.fire(net.transitions["produce"], m)
        assert m["buffer"] == 2
        assert not net.has_concession(net.transitions["produce"], m)

    def test_self_loop_respects_capacity_correctly(self):
        """A transition that consumes and reproduces in a full place
        still has concession (net change zero)."""
        net = PetriNet()
        net.add_place("p", tokens=1, capacity=1)
        t = net.add_transition("t", {"p": 1}, {"p": 1})
        assert net.has_concession(t, net.initial_marking)

    def test_arc_weights(self):
        net = PetriNet()
        net.add_place("in", tokens=3)
        net.add_place("out")
        t = net.add_transition("t", {"in": 2}, {"out": 1})
        m = net.fire(t, net.initial_marking)
        assert m["in"] == 1 and m["out"] == 1
        assert not net.has_concession(t, m)


class TestPriorities:
    def test_higher_priority_preempts(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_transition("low", {"p": 1}, {}, priority=0)
        net.add_transition("high", {"p": 1}, {}, priority=5)
        enabled = net.enabled_transitions(net.initial_marking)
        assert [t.name for t in enabled] == ["high"]

    def test_equal_priorities_all_enabled(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_transition("a", {"p": 1}, {})
        net.add_transition("b", {"p": 1}, {})
        enabled = net.enabled_transitions(net.initial_marking)
        assert [t.name for t in enabled] == ["a", "b"]

    def test_blocked_high_priority_unblocks_low(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_place("q", tokens=0)
        net.add_transition("low", {"p": 1}, {}, priority=0)
        net.add_transition("high", {"q": 1}, {}, priority=5)
        enabled = net.enabled_transitions(net.initial_marking)
        assert [t.name for t in enabled] == ["low"]


class TestMarking:
    def test_from_dict_defaults_zero(self):
        m = Marking.from_dict({"a": 1}, order=["a", "b"])
        assert m["b"] == 0

    def test_unknown_place_lookup(self):
        m = Marking.from_dict({}, order=["a"])
        with pytest.raises(KeyError):
            m["zzz"]

    def test_covers(self):
        big = Marking.from_dict({"a": 2, "b": 1}, order=["a", "b"])
        small = Marking.from_dict({"a": 1, "b": 1}, order=["a", "b"])
        assert big.covers(small)
        assert not small.covers(big)

    def test_covers_different_orders_rejected(self):
        a = Marking.from_dict({}, order=["a"])
        b = Marking.from_dict({}, order=["b"])
        with pytest.raises(WellFormednessError):
            a.covers(b)

    def test_str_hides_empty_places(self):
        m = Marking.from_dict({"a": 1}, order=["a", "b"])
        assert str(m) == "{a:1}"

    def test_incidence_matrix(self):
        net = producer_consumer()
        places, transitions, C = net.incidence_matrix()
        p = places.index("buffer")
        t_prod = transitions.index("produce")
        t_cons = transitions.index("consume")
        assert C[p][t_prod] == 1
        assert C[p][t_cons] == -1
