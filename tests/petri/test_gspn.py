"""Unit tests for the stochastic Petri net interpretation."""

import math

import pytest

from repro.ctmc import steady_state, throughput
from repro.exceptions import WellFormednessError
from repro.petri import PetriNet, StochasticPetriNet, spn_to_ctmc


def timed_ring(rates=(1.0, 2.0, 4.0)) -> StochasticPetriNet:
    net = PetriNet("timed-ring")
    for i in range(3):
        net.add_place(f"p{i}", tokens=1 if i == 0 else 0)
    for i, rate in enumerate(rates):
        net.add_transition(f"t{i}", {f"p{i}": 1}, {f"p{(i + 1) % 3}": 1}, rate=rate)
    return StochasticPetriNet(net)


class TestValidation:
    def test_missing_rate_rejected(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_transition("t", {"p": 1}, {"p": 1})
        with pytest.raises(WellFormednessError, match="rate"):
            StochasticPetriNet(net)

    def test_unknown_infinite_server_rejected(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_transition("t", {"p": 1}, {"p": 1}, rate=1.0)
        with pytest.raises(WellFormednessError, match="infinite-server"):
            StochasticPetriNet(net, infinite_server=frozenset({"ghost"}))


class TestCtmcDerivation:
    def test_ring_stationary_inverse_rates(self):
        spn = timed_ring()
        _, chain = spn_to_ctmc(spn)
        pi = steady_state(chain)
        # residence inversely proportional to exit rate: weights 1, 1/2, 1/4
        weights = [1.0, 0.5, 0.25]
        expected = [w / sum(weights) for w in weights]
        labels = chain.labels
        for i, lbl in enumerate(labels):
            for k in range(3):
                if f"p{k}:1" in lbl:
                    assert math.isclose(pi[i], expected[k], rel_tol=1e-9)

    def test_throughputs_equal_around_ring(self):
        _, chain = spn_to_ctmc(timed_ring())
        ths = [throughput(chain, f"t{i}") for i in range(3)]
        assert math.isclose(ths[0], ths[1], rel_tol=1e-9)
        assert math.isclose(ths[1], ths[2], rel_tol=1e-9)

    def test_infinite_server_scales_rate(self):
        net = PetriNet()
        net.add_place("jobs", tokens=3)
        net.add_place("done", tokens=0)
        net.add_transition("serve", {"jobs": 1}, {"done": 1}, rate=2.0)
        net.add_transition("recycle", {"done": 3}, {"jobs": 3}, rate=1.0)
        spn_is = StochasticPetriNet(net, infinite_server=frozenset({"serve"}))
        marking = net.initial_marking
        assert spn_is.firing_rate("serve", marking) == 6.0
        spn_ss = StochasticPetriNet(net)
        assert spn_ss.firing_rate("serve", marking) == 2.0

    def test_enabling_degree_with_weights(self):
        net = PetriNet()
        net.add_place("p", tokens=5)
        net.add_transition("t", {"p": 2}, {}, rate=1.0)
        spn = StochasticPetriNet(net)
        assert spn.enabling_degree("t", net.initial_marking) == 2

    def test_priorities_respected_in_ctmc(self):
        """A higher-priority transition starves a lower one sharing the
        same input place, so the low transition never appears."""
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_place("q", tokens=0)
        net.add_transition("high", {"p": 1}, {"q": 1}, priority=2, rate=1.0)
        net.add_transition("low", {"p": 1}, {"q": 1}, priority=1, rate=9.0)
        net.add_transition("back", {"q": 1}, {"p": 1}, rate=1.0)
        graph, chain = spn_to_ctmc(StochasticPetriNet(net))
        assert "low" not in graph.fired_transitions()
        assert throughput(chain, "low") == 0.0
        assert throughput(chain, "high") > 0.0
