"""Unit tests for the Karp-Miller coverability graph."""

import pytest

from repro.exceptions import StateSpaceError
from repro.petri import PetriNet
from repro.petri.coverability import OMEGA, OmegaMarking, build_coverability_graph


def unbounded_producer() -> PetriNet:
    net = PetriNet("producer")
    net.add_place("active", tokens=1)
    net.add_place("heap", tokens=0)
    net.add_transition("spawn", {"active": 1}, {"active": 1, "heap": 1})
    net.add_transition("consume", {"heap": 1}, {})
    return net


def bounded_ring() -> PetriNet:
    net = PetriNet("ring")
    for i in range(3):
        net.add_place(f"p{i}", tokens=1 if i == 0 else 0)
    for i in range(3):
        net.add_transition(f"t{i}", {f"p{i}": 1}, {f"p{(i + 1) % 3}": 1})
    return net


class TestBoundedNets:
    def test_graph_matches_reachability(self):
        graph = build_coverability_graph(bounded_ring())
        assert graph.size == 3
        assert graph.is_bounded()
        assert graph.unbounded_places() == frozenset()

    def test_place_bounds(self):
        graph = build_coverability_graph(bounded_ring())
        for i in range(3):
            assert graph.bound_of(f"p{i}") == 1

    def test_coverable_queries(self):
        graph = build_coverability_graph(bounded_ring())
        assert graph.is_coverable({"p1": 1})
        assert not graph.is_coverable({"p1": 2})
        assert not graph.is_coverable({"p0": 1, "p1": 1})


class TestUnboundedNets:
    def test_unbounded_place_detected(self):
        graph = build_coverability_graph(unbounded_producer())
        assert graph.unbounded_places() == {"heap"}
        assert not graph.is_bounded()
        assert graph.bound_of("heap") == OMEGA
        assert graph.bound_of("active") == 1

    def test_graph_is_finite(self):
        graph = build_coverability_graph(unbounded_producer())
        assert graph.size <= 4

    def test_any_heap_level_coverable(self):
        graph = build_coverability_graph(unbounded_producer())
        assert graph.is_coverable({"heap": 1000})

    def test_two_counters(self):
        net = PetriNet("counters")
        net.add_place("ctl", tokens=1)
        net.add_place("a", tokens=0)
        net.add_place("b", tokens=0)
        net.add_transition("make_a", {"ctl": 1}, {"ctl": 1, "a": 1})
        net.add_transition("trade", {"a": 1}, {"b": 2})
        graph = build_coverability_graph(net)
        assert graph.unbounded_places() == {"a", "b"}

    def test_capacity_keeps_place_bounded(self):
        net = PetriNet("capped")
        net.add_place("active", tokens=1)
        net.add_place("buffer", tokens=0, capacity=2)
        net.add_transition("fill", {"active": 1}, {"active": 1, "buffer": 1})
        net.add_transition("drain", {"buffer": 1}, {})
        graph = build_coverability_graph(net)
        assert graph.is_bounded()
        assert graph.bound_of("buffer") == 2


class TestMechanics:
    def test_priority_warning(self):
        net = bounded_ring()
        net.add_place("x", tokens=1)
        net.add_transition("hi", {"x": 1}, {"x": 1}, priority=5)
        graph = build_coverability_graph(net)
        assert any("priorities" in w for w in graph.warnings)

    def test_node_ceiling(self):
        net = PetriNet("big")
        for i in range(4):
            net.add_place(f"p{i}", tokens=2)
        for i in range(4):
            net.add_transition(f"t{i}", {f"p{i}": 1}, {f"p{(i + 1) % 4}": 1})
        with pytest.raises(StateSpaceError, match="exceeds"):
            build_coverability_graph(net, max_markings=3)

    def test_omega_marking_validation(self):
        with pytest.raises(Exception):
            OmegaMarking(("a",), (-1.0,))
        with pytest.raises(Exception):
            OmegaMarking(("a",), (0.5,))
        m = OmegaMarking(("a", "b"), (OMEGA, 2.0))
        assert "ω" in str(m)

    def test_covers_semantics(self):
        big = OmegaMarking(("a",), (OMEGA,))
        small = OmegaMarking(("a",), (5.0,))
        assert big.covers(small)
        assert big.strictly_covers(small)
        assert not small.covers(big)
