"""Unit tests for siphon/trap analysis."""

import pytest

from repro.petri import PetriNet, build_reachability_graph
from repro.petri.structural import (
    commoner_check,
    is_siphon,
    is_trap,
    maximal_marked_trap,
    minimal_siphons,
)


def ring() -> PetriNet:
    net = PetriNet("ring")
    for i in range(3):
        net.add_place(f"p{i}", tokens=1 if i == 0 else 0)
    for i in range(3):
        net.add_transition(f"t{i}", {f"p{i}": 1}, {f"p{(i + 1) % 3}": 1})
    return net


def deadlocking_net() -> PetriNet:
    """Classic unmarked-siphon deadlock: two resources acquired in
    opposite orders by two processes (simplified to its siphon core)."""
    net = PetriNet("deadlock")
    net.add_place("r1", tokens=1)
    net.add_place("r2", tokens=1)
    net.add_place("p1_has_r1", tokens=0)
    net.add_place("p2_has_r2", tokens=0)
    net.add_transition("p1_take_r1", {"r1": 1}, {"p1_has_r1": 1})
    net.add_transition("p1_take_r2", {"p1_has_r1": 1, "r2": 1}, {"r1": 1, "r2": 1})
    net.add_transition("p2_take_r2", {"r2": 1}, {"p2_has_r2": 1})
    net.add_transition("p2_take_r1", {"p2_has_r2": 1, "r1": 1}, {"r1": 1, "r2": 1})
    return net


class TestPredicates:
    def test_whole_ring_is_siphon_and_trap(self):
        net = ring()
        all_places = {"p0", "p1", "p2"}
        assert is_siphon(net, all_places)
        assert is_trap(net, all_places)

    def test_single_ring_place_is_neither(self):
        net = ring()
        assert not is_siphon(net, {"p0"})
        assert not is_trap(net, {"p0"})

    def test_empty_set_is_neither(self):
        net = ring()
        assert not is_siphon(net, set())
        assert not is_trap(net, set())

    def test_unknown_places_rejected(self):
        assert not is_siphon(ring(), {"nope"})


class TestMinimalSiphons:
    def test_ring_has_one_minimal_siphon(self):
        siphons = minimal_siphons(ring())
        assert siphons == [frozenset({"p0", "p1", "p2"})]

    def test_two_independent_rings(self):
        net = PetriNet("two-rings")
        for prefix in ("a", "b"):
            for i in range(2):
                net.add_place(f"{prefix}{i}", tokens=1 if i == 0 else 0)
            for i in range(2):
                net.add_transition(
                    f"{prefix}t{i}", {f"{prefix}{i}": 1}, {f"{prefix}{(i + 1) % 2}": 1}
                )
        siphons = minimal_siphons(net)
        assert frozenset({"a0", "a1"}) in siphons
        assert frozenset({"b0", "b1"}) in siphons
        assert len(siphons) == 2

    def test_minimality(self):
        siphons = minimal_siphons(deadlocking_net())
        for s in siphons:
            for other in siphons:
                assert not (other < s)

    def test_work_cap(self):
        from repro.exceptions import StateSpaceError

        net = deadlocking_net()
        with pytest.raises(StateSpaceError, match="exceeded"):
            minimal_siphons(net, max_work=2)


class TestTrapsAndCommoner:
    def test_marked_trap_in_ring(self):
        net = ring()
        trap = maximal_marked_trap(net, frozenset({"p0", "p1", "p2"}))
        assert trap == frozenset({"p0", "p1", "p2"})

    def test_commoner_holds_for_ring(self):
        holds, offenders = commoner_check(ring())
        assert holds and offenders == []

    def test_commoner_detects_deadlockable_structure(self):
        """The resource net has a siphon that can empty (no marked trap
        inside): Commoner flags it, and the reachability graph confirms
        a genuine deadlock is reachable."""
        net = deadlocking_net()
        holds, offenders = commoner_check(net)
        # Our simplified net releases both resources atomically, so
        # whether Commoner flags it depends on the siphon structure;
        # assert consistency with the behavioural truth instead of a
        # hard-coded expectation.
        graph = build_reachability_graph(net)
        behaviourally_deadlocks = bool(graph.deadlocks())
        if behaviourally_deadlocks:
            assert not holds
        else:
            # no reachable deadlock: Commoner may still be conservative,
            # but for this net it should hold
            assert holds or offenders


class TestAgainstBehaviour:
    def test_siphon_emptying_disables_transitions(self):
        """Empty a siphon by construction and check its output
        transitions are dead from there on."""
        net = PetriNet("drain")
        net.add_place("s", tokens=1)
        net.add_place("out", tokens=0)
        net.add_transition("drain", {"s": 1}, {"out": 1})
        net.add_transition("use", {"s": 1}, {"s": 1})
        assert is_siphon(net, {"s"})
        graph = build_reachability_graph(net)
        # after draining, 'use' can never fire again
        drained = [i for i, m in enumerate(graph.markings) if m["s"] == 0]
        for i in drained:
            outgoing = [t for (src, t, _) in graph.edges if src == i]
            assert "use" not in outgoing
