"""Unit tests for Petri net dot exports."""

import pytest

from repro.petri import PetriNet, build_reachability_graph
from repro.petri.export import petri_net_dot, reachability_graph_dot


def sample_net() -> PetriNet:
    net = PetriNet("sample")
    net.add_place("p", tokens=2)
    net.add_place("q", tokens=0, capacity=3)
    net.add_transition("t", {"p": 2}, {"q": 1}, priority=1, rate=1.5)
    net.add_transition("back", {"q": 1}, {"p": 2})
    return net


class TestNetDot:
    def test_structure_rendered(self):
        dot = petri_net_dot(sample_net())
        assert dot.startswith("digraph petrinet")
        assert "p_p" in dot and "t_t" in dot
        assert "p_p -> t_t" in dot and "t_t -> p_q" in dot

    def test_tokens_and_capacity_shown(self):
        dot = petri_net_dot(sample_net())
        assert "••" in dot
        assert "cap 3" in dot

    def test_arc_weights_labelled(self):
        dot = petri_net_dot(sample_net())
        assert 'label="2"' in dot

    def test_rate_and_priority_shown(self):
        dot = petri_net_dot(sample_net())
        assert "rate 1.5" in dot
        assert "prio 1" in dot


class TestReachabilityDot:
    def test_graph_rendered(self):
        graph = build_reachability_graph(sample_net())
        dot = reachability_graph_dot(graph)
        assert dot.startswith("digraph reachability")
        assert "m0 -> m1" in dot
        assert "style=bold" in dot  # initial marking

    def test_size_limit(self):
        graph = build_reachability_graph(sample_net())
        with pytest.raises(ValueError, match="refusing"):
            reachability_graph_dot(graph, max_markings=0)
