"""End-to-end determinism: the whole tool chain is a pure function of
its inputs.

Reproducibility is a design commitment (DESIGN.md §3): state indices,
solver output and reflected documents must be identical run-to-run, or
golden values in tests and benchmarks mean nothing.
"""

from repro.choreographer import Choreographer
from repro.extract import extract_activity_diagram
from repro.pepanets import analyse_net, explore_net
from repro.uml.model import UmlModel
from repro.uml.xmi import add_synthetic_layout, write_model
from repro.workloads import (
    IM_RATES,
    MEETING_RATES,
    PDA_RATES,
    build_instant_message_diagram,
    build_meeting_diagram,
    build_pda_activity_diagram,
)


class TestExtractionDeterminism:
    def test_same_net_twice(self):
        a = extract_activity_diagram(build_pda_activity_diagram(), PDA_RATES)
        b = extract_activity_diagram(build_pda_activity_diagram(), PDA_RATES)
        assert str(a.net) == str(b.net)
        assert a.token_families == b.token_families
        assert a.reset_actions == b.reset_actions

    def test_multitoken_net_deterministic(self):
        a = extract_activity_diagram(build_meeting_diagram(), MEETING_RATES)
        b = extract_activity_diagram(build_meeting_diagram(), MEETING_RATES)
        assert str(a.net) == str(b.net)


class TestStateSpaceDeterminism:
    def test_marking_order_stable(self):
        a = extract_activity_diagram(build_meeting_diagram(), MEETING_RATES)
        s1 = explore_net(a.net)
        s2 = explore_net(a.net)
        assert [str(m) for m in s1.markings] == [str(m) for m in s2.markings]
        assert s1.arcs == s2.arcs

    def test_solution_bitwise_stable(self):
        import numpy as np

        a = extract_activity_diagram(build_pda_activity_diagram(), PDA_RATES)
        r1 = analyse_net(a.net)
        r2 = analyse_net(a.net)
        assert np.array_equal(r1.pi, r2.pi)


class TestPipelineDeterminism:
    def test_reflected_document_identical(self):
        model = UmlModel(name="det")
        model.add_activity_graph(build_instant_message_diagram())
        project = add_synthetic_layout(write_model(model))
        # two complete pipeline runs over the same document
        first, _, _ = Choreographer().process_xmi(project, IM_RATES)
        second, _, _ = Choreographer().process_xmi(project, IM_RATES)
        assert first == second
