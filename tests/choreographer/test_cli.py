"""Unit tests for the choreographer CLI."""

import json
from pathlib import Path

import pytest

from repro.choreographer.cli import main
from repro.uml.model import UmlModel
from repro.uml.xmi import add_synthetic_layout, write_model
from repro.workloads import build_instant_message_diagram, build_client_statechart

GOLDENS = Path(__file__).resolve().parents[1] / "goldens"


@pytest.fixture()
def xmi_file(tmp_path):
    model = UmlModel(name="project")
    model.add_activity_graph(build_instant_message_diagram())
    model.add_state_machine(build_client_statechart())
    # the client alone blocks on its passive 'response'; drop it for CLI
    model.state_machines.clear()
    path = tmp_path / "model.xmi"
    path.write_text(add_synthetic_layout(write_model(model)))
    return path


@pytest.fixture()
def pepa_file(tmp_path):
    path = tmp_path / "model.pepa"
    path.write_text("P = (a, 2.0).Q; Q = (b, 1.0).P; P")
    return path


@pytest.fixture()
def net_file(tmp_path):
    path = tmp_path / "model.pepanet"
    path.write_text(
        """
        Tok = (go, 1).Tok;
        A[Tok] = Tok[_];
        B[_] = Tok[_];
        ab = (go, 1) : A -> B;
        ba = (go, 1) : B -> A;
        """
    )
    return path


class TestAnalyse:
    def test_analyse_prints_report_and_writes_output(self, xmi_file, tmp_path, capsys):
        out = tmp_path / "reflected.xmi"
        code = main(["analyse", str(xmi_file), "-o", str(out)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "transmit" in captured
        assert out.exists()
        assert "throughput" in out.read_text()

    def test_analyse_with_rates_file(self, xmi_file, tmp_path, capsys):
        rates = tmp_path / "m.rates"
        rates.write_text("transmit = 5.0\n")
        code = main(["analyse", str(xmi_file), "--rates", str(rates)])
        assert code == 0

    def test_missing_file_is_error(self, capsys):
        code = main(["analyse", "no/such/file.xmi"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestPepa:
    def test_solve_and_report(self, pepa_file, capsys):
        code = main(["pepa", str(pepa_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 states" in out
        assert "throughput" in out

    def test_prism_export(self, pepa_file, tmp_path, capsys):
        stem = tmp_path / "out" / "model"
        stem.parent.mkdir()
        code = main(["pepa", str(pepa_file), "--export-prism", str(stem)])
        assert code == 0
        assert (tmp_path / "out" / "model.tra").exists()

    def test_solver_flag(self, pepa_file, capsys):
        code = main(["pepa", str(pepa_file), "--solver", "power"])
        assert code == 0
        assert "power" in capsys.readouterr().out

    def test_syntax_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.pepa"
        bad.write_text("P = = ;")
        code = main(["pepa", str(bad)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestNet:
    def test_solve_and_report(self, net_file, capsys):
        code = main(["net", str(net_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 markings" in out
        assert "mean tokens" in out


class TestSimulate:
    def test_simulate_pepa_model(self, pepa_file, capsys):
        code = main(["simulate", str(pepa_file), "--t-end", "200",
                     "--replications", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "replications" in out
        assert "a" in out and "b" in out

    def test_simulate_net(self, net_file, capsys):
        code = main(["simulate", str(net_file), "--t-end", "200",
                     "--replications", "4", "--warmup", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "go" in out

    def test_simulate_reproducible(self, pepa_file, capsys):
        main(["simulate", str(pepa_file), "--t-end", "100", "--replications", "3"])
        first = capsys.readouterr().out
        main(["simulate", str(pepa_file), "--t-end", "100", "--replications", "3"])
        second = capsys.readouterr().out
        assert first == second


class TestSensitivity:
    def test_profile_printed(self, pepa_file, capsys):
        code = main(["sensitivity", str(pepa_file), "--measure", "a"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sensitivity" in out
        assert "a" in out and "b" in out

    def test_unknown_measure_is_error(self, pepa_file, capsys):
        code = main(["sensitivity", str(pepa_file), "--measure", "ghost"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestDot:
    def test_net_both_views_to_stdout(self, net_file, capsys):
        code = main(["dot", str(net_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "digraph pepanet" in out
        assert "digraph markings" in out

    def test_pepa_states_view(self, pepa_file, capsys):
        code = main(["dot", str(pepa_file), "--what", "states"])
        out = capsys.readouterr().out
        assert code == 0
        assert "digraph pepa" in out

    def test_pepa_structure_view_is_error(self, pepa_file, capsys):
        code = main(["dot", str(pepa_file), "--what", "structure"])
        assert code == 2
        assert "structure" in capsys.readouterr().err

    def test_write_files(self, net_file, tmp_path, capsys):
        stem = tmp_path / "render"
        code = main(["dot", str(net_file), "-o", str(stem)])
        assert code == 0
        assert (tmp_path / "render.structure.dot").exists()
        assert (tmp_path / "render.states.dot").exists()


class TestValidate:
    def test_valid_model(self, xmi_file, capsys):
        code = main(["validate", str(xmi_file)])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_model(self, tmp_path, capsys):
        from repro.uml.activity import ActivityGraph

        model = UmlModel(name="bad")
        g = ActivityGraph("broken")
        g.add_action("a")  # no initial node
        model.add_activity_graph(g)
        path = tmp_path / "bad.xmi"
        path.write_text(write_model(model))
        code = main(["validate", str(path)])
        assert code == 1
        assert "initial" in capsys.readouterr().out


class TestResilienceFlags:
    def test_pepa_solver_policy_verbose_prints_attempts(self, pepa_file, capsys):
        code = main(["pepa", str(pepa_file),
                     "--solver-policy", "direct,power", "--verbose"])
        out = capsys.readouterr().out
        assert code == 0
        assert "solved by direct" in out
        assert "converged" in out  # the SolveDiagnostics attempt table

    def test_pepa_without_verbose_hides_attempts(self, pepa_file, capsys):
        code = main(["pepa", str(pepa_file), "--solver-policy", "direct,power"])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged" not in out

    def test_net_solver_policy(self, net_file, capsys):
        code = main(["net", str(net_file), "--solver-policy", "direct,gmres", "-v"])
        out = capsys.readouterr().out
        assert code == 0
        assert "solved by direct" in out

    def test_bad_policy_is_cli_error(self, pepa_file, capsys):
        code = main(["pepa", str(pepa_file), "--solver-policy", "quantum"])
        assert code == 2
        assert "unknown steady-state method" in capsys.readouterr().err

    def test_analyse_no_strict_degrades(self, tmp_path, capsys):
        from repro.uml.activity import ActivityGraph
        from repro.workloads import build_instant_message_diagram

        model = UmlModel(name="project")
        model.add_activity_graph(build_instant_message_diagram())
        poisoned = ActivityGraph("poisoned")
        poisoned.add_action("orphan")  # no initial node: extraction fails
        model.add_activity_graph(poisoned)
        path = tmp_path / "mixed.xmi"
        path.write_text(add_synthetic_layout(write_model(model)))

        code = main(["analyse", str(path), "--no-strict"])
        captured = capsys.readouterr()
        assert code == 3  # degraded, not crashed
        assert "transmit" in captured.out  # the good diagram analysed
        assert "poisoned" in captured.err  # the report names the bad one

    def test_analyse_strict_default_fails(self, tmp_path, capsys):
        from repro.uml.activity import ActivityGraph

        model = UmlModel(name="project")
        poisoned = ActivityGraph("poisoned")
        poisoned.add_action("orphan")
        model.add_activity_graph(poisoned)
        path = tmp_path / "bad.xmi"
        path.write_text(add_synthetic_layout(write_model(model)))

        code = main(["analyse", str(path)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_deadline_flag_maps_budget_error_to_exit_2(self, pepa_file, capsys):
        code = main(["pepa", str(pepa_file), "--deadline", "0.0"])
        assert code == 2
        assert "budget" in capsys.readouterr().err


@pytest.fixture()
def pda_xmi_file(tmp_path):
    from repro.workloads import build_pda_activity_diagram

    model = UmlModel(name="pda")
    model.add_activity_graph(build_pda_activity_diagram())
    path = tmp_path / "pda.xmi"
    path.write_text(add_synthetic_layout(write_model(model)))
    return path


class TestTraceTools:
    def test_analyze_trace_prints_critical_path_for_golden(self, capsys):
        code = main(["analyze-trace", str(GOLDENS / "trace_pda_base.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "critical path" in out
        assert "diagram.activity" in out
        assert "p95 ms" in out  # the aggregation table rode along

    def test_diff_trace_names_the_mover(self, capsys):
        code = main(["diff-trace", str(GOLDENS / "trace_pda_base.json"),
                     str(GOLDENS / "trace_pda_slow.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "ctmc.solve" in out
        assert "2.00x" in out

    def test_analyze_trace_rejects_non_trace_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/1"}')
        code = main(["analyze-trace", str(bad)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_analyze_trace_does_not_clobber_its_input(self, capsys):
        # 'analyze-trace FILE' must never be confused with '--trace FILE'
        path = GOLDENS / "trace_pda_base.json"
        before = path.read_text()
        main(["analyze-trace", str(path)])
        assert path.read_text() == before


class TestEventsFlag:
    def test_events_file_written_with_convergence_stream(
        self, pepa_file, tmp_path, capsys
    ):
        out = tmp_path / "events.jsonl"
        code = main(["pepa", str(pepa_file), "--solver", "power",
                     "--events", str(out)])
        assert code == 0
        assert "events written" in capsys.readouterr().err
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines[0]["schema"] == "repro-events/1"
        convergence = [l for l in lines[1:] if l["event"] == "solver.convergence"]
        assert convergence
        assert all(l["solver"] == "power" for l in convergence)

    @pytest.mark.parametrize(
        "solver", ["gmres", "bicgstab", "power", "gauss_seidel", "jacobi"]
    )
    def test_every_iterative_solver_visible_on_pda_workload(
        self, pda_xmi_file, tmp_path, solver, capsys
    ):
        # the acceptance scenario: the full PDA pipeline, one iterative
        # solver at a time, each leaving >= 1 convergence event behind
        out = tmp_path / "events.jsonl"
        code = main(["analyse", str(pda_xmi_file), "--solver", solver,
                     "--events", str(out)])
        assert code == 0
        events = [json.loads(line) for line in out.read_text().splitlines()][1:]
        convergence = [e for e in events
                       if e["event"] == "solver.convergence"
                       and e["solver"] == solver]
        assert convergence, f"{solver} left no convergence events"
        for event in convergence:
            assert event["iteration"] >= 0
            assert event["residual"] >= 0.0

    def test_events_flag_leaves_ambient_stream_disabled(
        self, pepa_file, tmp_path
    ):
        from repro.obs import NULL_EVENTS, get_events

        main(["pepa", str(pepa_file), "--solver", "power",
              "--events", str(tmp_path / "e.jsonl")])
        assert get_events() is NULL_EVENTS
