"""Fault injection × non-strict pipeline × observability, end to end.

The scenario the observability layer exists for: a solver dies in the
middle of a Choreographer run.  These tests inject faults into the
live registry, run the full XMI pipeline non-strict under an installed
tracer + metrics registry, and assert that

* the pipeline degrades exactly as the resilience contract promises
  (fallback absorbs transient faults; exhausted chains land in the
  :class:`PipelineReport`), and
* the collected trace and metrics still tell the true story — and still
  serialise to JSON — whichever way the run ended.
"""

from __future__ import annotations

import json

import pytest

from repro.choreographer import Choreographer
from repro.obs import metrics_to_json, observe, render_trace, trace_to_json
from repro.resilience import FallbackPolicy, FaultSpec, inject_fault
from repro.uml.model import UmlModel
from repro.uml.xmi import add_synthetic_layout, write_model
from repro.workloads import IM_RATES, build_instant_message_diagram


def one_diagram_document() -> str:
    model = UmlModel(name="project")
    model.add_activity_graph(build_instant_message_diagram())
    return add_synthetic_layout(write_model(model))


def all_spans(tracer):
    return [s for root in tracer.roots for s in root.iter_spans()]


class TestFallbackAbsorbsInjectedFault:
    def test_primary_solver_fault_degrades_to_secondary(self):
        platform = Choreographer(
            solver_policy=FallbackPolicy(methods=("direct", "gmres"), retries=0,
                                         backoff=0.0),
            strict=False,
        )
        with observe() as (tracer, metrics):
            with inject_fault("direct", FaultSpec.first_n("converge", 50)):
                result = platform.process_xmi(one_diagram_document(), IM_RATES)

        # The pipeline succeeded — degradation was absorbed, not reported.
        assert result.report.ok
        [outcome] = result.activity_outcomes
        assert outcome.analysis.diagnostics.method == "gmres"
        assert outcome.throughput_of("transmit") > 0

        # The trace names the diagram, the failed attempt and the rescuer.
        fallback_span = next(
            s for s in all_spans(tracer) if s.name == "ctmc.solve.fallback"
        )
        assert fallback_span.attributes["solved_by"] == "gmres"
        attempts = [s for s in all_spans(tracer) if s.name == "solve.attempt"]
        outcomes = [(s.attributes["method"], s.attributes["outcome"]) for s in attempts]
        assert ("direct", "failed") in outcomes
        assert ("gmres", "converged") in outcomes

        # Metrics survived the bumpy ride.
        assert metrics.counter("states_explored").value > 0
        assert metrics.gauge("residual").value < 1e-6

        # Both documents serialise.
        json.dumps(trace_to_json(tracer))
        json.dumps(metrics_to_json(metrics))


class TestExhaustedChainIsReportedNotFatal:
    @pytest.fixture
    def broken_platform(self):
        return Choreographer(
            solver_policy=FallbackPolicy(methods=("direct",), retries=0, backoff=0.0),
            strict=False,
        )

    def test_pipeline_report_records_solve_degradation(self, broken_platform):
        with observe() as (tracer, metrics):
            with inject_fault("direct", FaultSpec.first_n("converge", 50)):
                result = broken_platform.process_xmi(one_diagram_document(), IM_RATES)

        assert not result.report.ok
        [failure] = result.report.failures
        assert failure.stage == "solve"
        assert failure.diagram == "instant-message"
        assert failure.diagnostics is not None
        assert failure.diagnostics.method is None  # nothing converged
        assert [a.outcome for a in failure.diagnostics.attempts] == ["failed"]
        assert result.activity_outcomes == []

        # The failing diagram span is closed, error-tagged, stage-tagged.
        diagram_span = next(
            s for s in all_spans(tracer) if s.name == "diagram.activity"
        )
        assert diagram_span.closed
        assert diagram_span.attributes["failed_stage"] == "solve"
        assert diagram_span.attributes["error"] == "SolverError"
        fallback_span = next(
            s for s in all_spans(tracer) if s.name == "ctmc.solve.fallback"
        )
        assert fallback_span.attributes["solved_by"] == "none"

        # Trace and metrics of the failed run still serialise and render.
        json.dumps(trace_to_json(tracer))
        json.dumps(metrics_to_json(metrics))
        assert "diagram.activity" in render_trace(tracer)
        # Derivation happened before the solve died, so its counters exist.
        assert metrics.counter("states_explored").value > 0

    def test_nan_fault_is_also_degradation(self, broken_platform):
        with observe() as (tracer, metrics):
            with inject_fault("direct", FaultSpec.first_n("nan", 50)):
                result = broken_platform.process_xmi(one_diagram_document(), IM_RATES)
        assert not result.report.ok
        assert result.report.failures[0].stage == "solve"
        json.dumps(trace_to_json(tracer))
        json.dumps(metrics_to_json(metrics))

    def test_strict_mode_still_raises_but_trace_survives(self, broken_platform):
        from repro.exceptions import SolverError

        with observe() as (tracer, metrics):
            with inject_fault("direct", FaultSpec.first_n("converge", 50)):
                with pytest.raises(SolverError):
                    broken_platform.process_xmi(
                        one_diagram_document(), IM_RATES, strict=True
                    )
        # Even a fail-fast run leaves a coherent, serialisable trace:
        # every span was closed on the way out of the raise.
        assert all(s.closed for s in all_spans(tracer))
        json.dumps(trace_to_json(tracer))
        json.dumps(metrics_to_json(metrics))


class TestRegistryRestoration:
    def test_injector_never_leaks_into_later_runs(self):
        platform = Choreographer(strict=False)
        with inject_fault("direct", FaultSpec.first_n("converge", 50)):
            pass  # enter/exit only
        result = platform.process_xmi(one_diagram_document(), IM_RATES)
        assert result.report.ok
        assert len(result.activity_outcomes) == 1
