"""End-to-end tests over the shipped model files (examples/models/).

These exercise the CLI and the parsers exactly the way a user would:
from files on disk, through the public entry points.
"""

from pathlib import Path

import pytest

from repro.choreographer.cli import main

MODELS = Path(__file__).resolve().parents[2] / "examples" / "models"


@pytest.fixture(scope="module", autouse=True)
def corpus_exists():
    assert MODELS.is_dir(), "examples/models is part of the repository"


class TestPepaCorpus:
    def test_file_protocol_solves(self, capsys):
        code = main(["pepa", str(MODELS / "file_protocol.pepa")])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 states" in out
        assert "openread" in out

    def test_file_protocol_all_solvers(self, capsys):
        for solver in ("direct", "power", "gmres"):
            assert main(["pepa", str(MODELS / "file_protocol.pepa"),
                         "--solver", solver]) == 0
        capsys.readouterr()


class TestNetCorpus:
    def test_instant_message_net(self, capsys):
        code = main(["net", str(MODELS / "instant_message.pepanet")])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 markings" in out
        assert "transmit" in out

    def test_mobile_agents_net(self, capsys):
        code = main(["net", str(MODELS / "mobile_agents.pepanet")])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 markings" in out
        assert "migrate" in out

    def test_simulation_of_corpus_net(self, capsys):
        code = main(["simulate", str(MODELS / "mobile_agents.pepanet"),
                     "--t-end", "100", "--replications", "3"])
        assert code == 0
        assert "work" in capsys.readouterr().out


class TestXmiCorpus:
    def test_validate_pda_project(self, capsys):
        code = main(["validate", str(MODELS / "pda_project.xmi")])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_full_analysis_with_rates_file(self, tmp_path, capsys):
        out_file = tmp_path / "reflected.xmi"
        code = main([
            "analyse", str(MODELS / "pda_project.xmi"),
            "--rates", str(MODELS / "tomcat.rates"),
            "-o", str(out_file),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "handover" in out
        assert out_file.exists()
        assert "Poseidon" in out_file.read_text()  # layout merged back


class TestRatesCorpus:
    def test_tomcat_rates_parse(self):
        from repro.extract import load_rates

        table = load_rates(MODELS / "tomcat.rates")
        assert len(table) == 5
        assert table.lookup("translate").value == 0.5
        # shared request/response deliberately absent: their rates live
        # as per-transition tags (one side passive)
        assert "response" not in table
