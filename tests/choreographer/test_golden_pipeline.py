"""Golden-file regression tests over the bundled workloads.

Two complete end-to-end runs — the Figure 1 file-protocol activity
diagram and the PDA handover project shipped as
``examples/models/pda_project.xmi`` — are reduced to canonical JSON
documents (every result-table row plus state-space sizes) and compared
against expectations checked in under ``tests/goldens/``.

Any change to parsing, extraction, state-space derivation, solving or
reflection that moves a number shows up here.  After an *intentional*
change, regenerate with::

    PYTHONPATH=src python -m pytest tests/choreographer/test_golden_pipeline.py \
        --update-goldens

then review the golden diff and commit it alongside the code.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.choreographer import Choreographer
from repro.extract import load_rates
from repro.workloads import FILE_RATES, build_file_activity_diagram

MODELS = Path(__file__).resolve().parents[2] / "examples" / "models"

GOLDEN_SCHEMA = "repro-golden/1"


def _rows_of(table) -> list[dict]:
    return [
        {"kind": r.kind, "subject": r.subject, "measure": r.measure, "value": r.value}
        for r in table
    ]


@pytest.fixture
def platform():
    return Choreographer()


class TestFileActivityGolden:
    def test_end_to_end(self, platform, golden):
        outcome = platform.analyse_activity_diagram(
            build_file_activity_diagram(), FILE_RATES
        )
        document = {
            "schema": GOLDEN_SCHEMA,
            "workload": "file_activity",
            "diagram": outcome.graph.name,
            "n_states": outcome.analysis.n_states,
            "results": _rows_of(outcome.results),
        }
        golden("file_activity", document)


class TestPdaProjectGolden:
    def test_end_to_end(self, platform, golden):
        xmi = (MODELS / "pda_project.xmi").read_text()
        rates = load_rates(MODELS / "tomcat.rates")
        result = platform.process_xmi(xmi, rates)
        assert result.report.ok
        document = {
            "schema": GOLDEN_SCHEMA,
            "workload": "pda_project",
            "activity_diagrams": [
                {
                    "diagram": outcome.graph.name,
                    "n_states": outcome.analysis.n_states,
                    "results": _rows_of(outcome.results),
                }
                for outcome in result.activity_outcomes
            ],
            "statecharts": [
                {
                    "machines": [m.name for m in outcome.machines],
                    "n_states": outcome.analysis.n_states,
                    "results": _rows_of(outcome.results),
                }
                for outcome in result.statechart_outcomes
            ],
        }
        golden("pda_project", document)

    def test_goldens_are_solver_independent(self, request, golden):
        """The same document from a different solver matches the same
        golden — the expectation pins the *answer*, not the method."""
        if request.config.getoption("--update-goldens"):
            pytest.skip("goldens are regenerated from the direct solver only")
        xmi = (MODELS / "pda_project.xmi").read_text()
        rates = load_rates(MODELS / "tomcat.rates")
        result = Choreographer(solver="gmres").process_xmi(xmi, rates)
        document = {
            "schema": GOLDEN_SCHEMA,
            "workload": "pda_project",
            "activity_diagrams": [
                {
                    "diagram": outcome.graph.name,
                    "n_states": outcome.analysis.n_states,
                    "results": _rows_of(outcome.results),
                }
                for outcome in result.activity_outcomes
            ],
            "statecharts": [
                {
                    "machines": [m.name for m in outcome.machines],
                    "n_states": outcome.analysis.n_states,
                    "results": _rows_of(outcome.results),
                }
                for outcome in result.statechart_outcomes
            ],
        }
        golden("pda_project", document, rtol=1e-6)
