"""End-to-end resilience: graceful pipeline degradation and the
fallback solver wired through the Choreographer platform."""

import math

import pytest

from repro.choreographer import Choreographer, PipelineReport, PipelineResult
from repro.exceptions import ReproError, SolverError
from repro.resilience import FallbackPolicy, FaultSpec, inject_fault
from repro.uml.activity import ActivityGraph
from repro.uml.model import UmlModel
from repro.uml.xmi import add_synthetic_layout, write_model
from repro.workloads import IM_RATES, build_instant_message_diagram


def build_poisoned_graph() -> ActivityGraph:
    """An activity diagram with no initial node: extraction must fail."""
    bad = ActivityGraph("poisoned")
    bad.add_action("orphan")
    return bad


def two_diagram_document() -> str:
    """One good diagram (instant message) + one poisoned diagram."""
    model = UmlModel(name="project")
    model.add_activity_graph(build_instant_message_diagram())
    model.add_activity_graph(build_poisoned_graph())
    return add_synthetic_layout(write_model(model))


class TestGracefulDegradation:
    def test_non_strict_returns_partial_outcomes_and_report(self):
        """Acceptance: a two-diagram document with one poisoned diagram
        yields one successful outcome plus a PipelineReport entry naming
        the failed diagram and stage."""
        result = Choreographer().process_xmi(
            two_diagram_document(), IM_RATES, strict=False
        )
        assert isinstance(result, PipelineResult)
        assert len(result.activity_outcomes) == 1
        assert result.activity_outcomes[0].graph.name == "instant-message"
        assert result.activity_outcomes[0].throughput_of("transmit") > 0
        assert not result.report.ok
        [failure] = result.report.failures
        assert failure.diagram == "poisoned"
        assert failure.stage == "extract"
        assert isinstance(failure.error, ReproError)
        assert "poisoned" in result.report.summary()

    def test_strict_mode_fails_fast(self):
        with pytest.raises(ReproError):
            Choreographer().process_xmi(
                two_diagram_document(), IM_RATES, strict=True
            )

    def test_platform_level_strict_default(self):
        platform = Choreographer(strict=False)
        result = platform.process_xmi(two_diagram_document(), IM_RATES)
        assert len(result.activity_outcomes) == 1
        assert not result.report.ok

    def test_legacy_tuple_unpacking_still_works(self):
        document, activity, statechart = Choreographer().process_xmi(
            two_diagram_document(), IM_RATES, strict=False
        )
        assert "xmi" in document.lower()
        assert len(activity) == 1
        assert statechart == []

    def test_reflected_document_still_written_for_good_diagram(self):
        result = Choreographer().process_xmi(
            two_diagram_document(), IM_RATES, strict=False
        )
        assert "throughput" in result.document

    def test_solve_stage_failure_is_attributed(self):
        """Every solver method forced down: the report must blame the
        solve stage, and the exception context names the diagram."""
        model = UmlModel(name="project")
        model.add_activity_graph(build_instant_message_diagram())
        document = add_synthetic_layout(write_model(model))
        platform = Choreographer()
        with inject_fault("direct", FaultSpec.first_n("converge", 50)):
            result = platform.process_xmi(document, IM_RATES, strict=False)
        assert result.activity_outcomes == []
        [failure] = result.report.failures
        assert failure.stage == "solve"
        assert failure.diagram == "instant-message"
        assert failure.error.context["stage"] == "solve"
        assert failure.error.context["diagram"] == "instant-message"

    def test_empty_report_is_ok(self):
        report = PipelineReport()
        assert report.ok
        assert report.summary() == "all diagrams analysed"


class TestFallbackThroughPlatform:
    def test_solver_policy_rides_through_with_diagnostics(self):
        """direct is poisoned; the platform-level fallback policy must
        still produce the unfaulted throughputs, and the diagnostics on
        the analysis object must show the failed direct attempt."""
        model = UmlModel(name="project")
        model.add_activity_graph(build_instant_message_diagram())
        document = add_synthetic_layout(write_model(model))

        baseline = Choreographer().process_xmi(document, IM_RATES)
        expected = baseline.activity_outcomes[0].throughput_of("transmit")

        platform = Choreographer(solver_policy="direct,gmres,bicgstab,power")
        with inject_fault("direct", FaultSpec.first_n("converge", 50)):
            result = platform.process_xmi(document, IM_RATES)
        outcome = result.activity_outcomes[0]
        assert math.isclose(
            outcome.throughput_of("transmit"), expected, rel_tol=1e-8
        )
        diag = outcome.analysis.diagnostics
        assert diag is not None
        assert diag.method != "direct"
        assert any(a.outcome == "failed" for a in diag.attempts)

    def test_policy_string_parsed_by_constructor(self):
        platform = Choreographer(solver_policy="power,direct")
        assert isinstance(platform.solver_policy, FallbackPolicy)
        assert platform.solver_policy.methods == ("power", "direct")

    def test_deadline_zero_turns_into_budget_error(self):
        platform = Choreographer(deadline=0.0)
        model = UmlModel(name="project")
        model.add_activity_graph(build_instant_message_diagram())
        document = add_synthetic_layout(write_model(model))
        result = platform.process_xmi(document, IM_RATES, strict=False)
        assert result.activity_outcomes == []
        [failure] = result.report.failures
        assert failure.stage == "solve"
        assert "budget" in str(failure.error) or "deadline" in str(failure.error)
