"""The ``choreographer runs`` warehouse CLI: recording runs through the
entrypoints, then listing, showing, comparing, trending, exporting and
pruning them."""

from __future__ import annotations

import json

import pytest

from repro.choreographer.cli import main
from repro.obs import RunLedger, build_run_document


@pytest.fixture()
def pepa_file(tmp_path):
    path = tmp_path / "model.pepa"
    path.write_text("P = (a, 2.0).Q; Q = (b, 1.0).P; P")
    return path


def bench_doc(scale=1.0, label="ci"):
    return {
        "schema": "repro-bench/1", "label": label, "created_unix": 0,
        "quick": True, "solver": "auto", "host": {},
        "runs": [{
            "workload": "file_protocol", "kind": "pepa",
            "size": {"n_readers": 2}, "solver": "direct",
            "n_states": 5, "n_transitions": 12,
            "stages": {"derive": 0.4 * scale, "assemble": 0.2,
                       "solve": 0.6 * scale},
            "total_s": 0.6 + 0.6 * scale, "peak_rss_kb": 1000,
        }],
    }


@pytest.fixture()
def bench_ledger(tmp_path):
    """A ledger holding two clean bench runs."""
    ledger_dir = tmp_path / "runs"
    ledger = RunLedger(ledger_dir)
    for _ in range(2):
        ledger.record(build_run_document(command="bench", bench=bench_doc()))
    return ledger_dir


class TestRecording:
    def test_pepa_run_records_into_the_ledger(self, pepa_file, tmp_path,
                                              capsys):
        ledger_dir = tmp_path / "runs"
        code = main(["pepa", str(pepa_file), "--ledger", str(ledger_dir)])
        assert code == 0
        assert "recorded in ledger" in capsys.readouterr().err
        (document,) = RunLedger(ledger_dir).runs()
        assert document["command"] == "pepa"
        assert document["exit_code"] == 0
        assert document["spans"]  # per-span aggregates came along

    def test_profiled_run_embeds_samples_and_trace(self, pepa_file, tmp_path,
                                                   capsys):
        ledger_dir = tmp_path / "runs"
        out = tmp_path / "profile.folded"
        code = main(["pepa", str(pepa_file), "--ledger", str(ledger_dir),
                     "--profile-interval", "0.001",
                     "--profile-out", str(out)])
        assert code == 0
        (document,) = RunLedger(ledger_dir).runs()
        assert document["trace"]["schema"] == "repro-trace/1"
        # sampling is statistical: the profile section appears only if
        # the short run caught samples, but the collapsed file always
        # exists (possibly empty)
        assert out.exists()

    def test_failed_run_still_leaves_evidence(self, tmp_path, capsys):
        ledger_dir = tmp_path / "runs"
        code = main(["pepa", str(tmp_path / "missing.pepa"),
                     "--ledger", str(ledger_dir)])
        assert code != 0
        (document,) = RunLedger(ledger_dir).runs()
        assert document["exit_code"] == code


class TestQueries:
    def test_list_shows_recorded_runs(self, bench_ledger, capsys):
        assert main(["runs", "--ledger", str(bench_ledger), "list"]) == 0
        out = capsys.readouterr().out
        assert "000001" in out and "000002" in out
        assert "bench" in out

    def test_list_empty_store_is_an_error(self, tmp_path, capsys):
        code = main(["runs", "--ledger", str(tmp_path / "nope"), "list"])
        assert code == 2
        assert "no run ledger" in capsys.readouterr().err

    def test_show_latest_and_by_id(self, bench_ledger, capsys):
        assert main(["runs", "--ledger", str(bench_ledger), "show"]) == 0
        latest = json.loads(capsys.readouterr().out)
        assert latest["run_id"] == "000002"
        assert main(["runs", "--ledger", str(bench_ledger),
                     "show", "1"]) == 0
        assert json.loads(capsys.readouterr().out)["run_id"] == "000001"

    def test_compare_two_bench_runs(self, bench_ledger, capsys):
        code = main(["runs", "--ledger", str(bench_ledger),
                     "compare", "000001", "000002"])
        assert code == 0
        assert "No regressions" in capsys.readouterr().out

    def test_prune(self, bench_ledger, capsys):
        assert main(["runs", "--ledger", str(bench_ledger),
                     "prune", "--keep", "1"]) == 0
        assert RunLedger(bench_ledger).run_ids() == ["000002"]


class TestTrend:
    def test_clean_history_exits_zero(self, bench_ledger, capsys):
        code = main(["runs", "--ledger", str(bench_ledger), "trend"])
        assert code == 0
        assert "No regressions" in capsys.readouterr().out

    def test_injected_slowdown_exits_one_and_names_the_stage(
            self, bench_ledger, tmp_path, capsys):
        RunLedger(bench_ledger).record(build_run_document(
            command="bench", bench=bench_doc(scale=3.0)))
        report = tmp_path / "trend.md"
        code = main(["runs", "--ledger", str(bench_ledger), "trend",
                     "--report", str(report)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "file_protocol" in out and "solve" in out
        assert "REGRESSION" in report.read_text()

    def test_window_and_threshold_flags(self, bench_ledger, capsys):
        RunLedger(bench_ledger).record(build_run_document(
            command="bench", bench=bench_doc(scale=3.0)))
        # a 10x threshold tolerates the 3x slowdown
        assert main(["runs", "--ledger", str(bench_ledger), "trend",
                     "--threshold", "10.0"]) == 0

    def test_non_bench_runs_are_ignored(self, bench_ledger, capsys):
        RunLedger(bench_ledger).record(
            build_run_document(command="analyse"))
        assert main(["runs", "--ledger", str(bench_ledger), "trend"]) == 0


class TestExport:
    def _trace_run(self, ledger_dir):
        trace = {"schema": "repro-trace/1", "traces": [{
            "name": "pipeline", "start_unix": 100.0, "duration_s": 1.0,
            "pid": 1, "tid": 1, "attributes": {}, "children": [],
        }]}
        metrics = {"schema": "repro-metrics/1", "metrics": {
            "states_explored": {"type": "counter", "value": 9}}}
        RunLedger(ledger_dir).record(build_run_document(
            command="pepa", trace=trace, metrics=metrics,
            profile={"schema": "repro-profile/1", "interval_s": 0.001,
                     "sample_count": 1, "samples": {"pipeline;solve": 1},
                     "timeline": [[0.1, "pipeline;solve"]],
                     "timeline_dropped": 0}))

    def test_chrome_and_prometheus_and_collapsed(self, tmp_path, capsys):
        ledger_dir = tmp_path / "runs"
        self._trace_run(ledger_dir)
        chrome = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        folded = tmp_path / "profile.folded"
        code = main(["runs", "--ledger", str(ledger_dir), "export",
                     "--chrome", str(chrome), "--prometheus", str(prom),
                     "--collapsed", str(folded)])
        assert code == 0
        events = json.loads(chrome.read_text())["traceEvents"]
        assert all({"name", "ph", "ts", "pid", "tid"} <= set(e)
                   for e in events)
        assert "repro_states_explored_total 9" in prom.read_text()
        assert folded.read_text() == "pipeline;solve 1\n"

    def test_export_without_format_flag_is_an_error(self, tmp_path, capsys):
        ledger_dir = tmp_path / "runs"
        self._trace_run(ledger_dir)
        assert main(["runs", "--ledger", str(ledger_dir), "export"]) == 2

    def test_chrome_export_without_embedded_trace_is_an_error(
            self, tmp_path, capsys):
        ledger_dir = tmp_path / "runs"
        RunLedger(ledger_dir).record(build_run_document(command="analyse"))
        code = main(["runs", "--ledger", str(ledger_dir), "export",
                     "--chrome", str(tmp_path / "t.json")])
        assert code == 2
        assert "trace" in capsys.readouterr().err
