"""CLI tests for the fluid route: ``pepa --fluid`` and the ``fluid``
sub-command (model solve and cross-validation battery)."""

import json

import pytest

from repro.choreographer.cli import main

ROAMING = """
Session = (download, 1.0).Roaming;
Roaming = (handover, 0.5).Session;
Session || Session || Session
"""


@pytest.fixture()
def roaming_file(tmp_path):
    path = tmp_path / "roaming.pepa"
    path.write_text(ROAMING)
    return path


class TestPepaFluidFlag:
    def test_pepa_fluid_prints_occupancies(self, roaming_file, capsys):
        code = main(["pepa", str(roaming_file), "--fluid", "--replicas", "300"])
        out = capsys.readouterr().out
        assert code == 0
        assert "N=300" in out
        assert "mean occupancy" in out
        assert "throughput" in out

    def test_replicas_without_fluid_is_an_error(self, roaming_file, capsys):
        code = main(["pepa", str(roaming_file), "--replicas", "300"])
        assert code == 2
        assert "--fluid" in capsys.readouterr().err

    def test_fluid_with_prism_export_is_an_error(self, roaming_file, tmp_path, capsys):
        code = main(["pepa", str(roaming_file), "--fluid",
                     "--export-prism", str(tmp_path / "out")])
        assert code == 2
        assert "no finite chain" in capsys.readouterr().err

    def test_unsupported_shape_maps_to_exit_2(self, tmp_path, capsys):
        path = tmp_path / "mixed.pepa"
        path.write_text(
            "P = (a, 1.0).Q; Q = (b, 2.0).P; R = (a, 1.0).R;"
            "(P || R) <a> (Q || R)"
        )
        code = main(["pepa", str(path), "--fluid"])
        assert code == 2
        assert "population shape" in capsys.readouterr().err


class TestFluidCommand:
    def test_solve_model_file(self, roaming_file, capsys):
        code = main(["fluid", str(roaming_file), "--replicas", "1000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "N=1000" in out

    def test_no_model_and_no_crossval_is_usage_error(self, capsys):
        code = main(["fluid"])
        assert code == 2
        assert "--crossval" in capsys.readouterr().err

    def test_crossval_two_families(self, tmp_path, capsys):
        report = tmp_path / "report.md"
        code = main(["fluid", "--crossval",
                     "--families", "roaming_sessions,message_bus",
                     "--no-ssa", "--report", str(report)])
        out = capsys.readouterr().out
        assert code == 0
        assert "all checks passed" in out
        assert "Fluid cross-validation report" in report.read_text()

    def test_crossval_unknown_family(self, capsys):
        code = main(["fluid", "--crossval", "--families", "nope"])
        assert code == 2
        assert "nope" in capsys.readouterr().err

    def test_methods_chain_flag(self, roaming_file, capsys):
        code = main(["fluid", str(roaming_file), "--methods", "ode,damped", "-v"])
        out = capsys.readouterr().out
        assert code == 0
        assert "method=ode" in out

    def test_crossval_recorded_in_ledger(self, tmp_path, capsys):
        ledger = tmp_path / "runs"
        code = main(["fluid", "--crossval", "--families", "roaming_sessions",
                     "--no-ssa", "--ledger", str(ledger)])
        assert code == 0
        capsys.readouterr()  # drain the battery output
        assert main(["runs", "--ledger", str(ledger), "show"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["command"] == "fluid"
        assert document["config"]["crossval"] is True
