"""Tests for the one-command experiment reproduction module."""

from repro.choreographer.cli import main
from repro.choreographer.experiments import render_report, run_all_experiments


class TestRunAll:
    def test_all_experiments_pass(self):
        records = run_all_experiments()
        assert len(records) == 6
        for record in records:
            assert record.ok, f"{record.experiment}: {record.checks}"

    def test_metrics_present(self):
        records = run_all_experiments()
        by_id = {r.experiment: r for r in records}
        assert by_id["E9"].metrics["reduction_factor"] > 10
        assert by_id["E5/E6"].metrics["markings"] == 6
        assert by_id["E2"].metrics["published_net_markings"] == 4

    def test_report_renders_all_rows(self):
        records = run_all_experiments()
        report = render_report(records)
        for record in records:
            assert record.experiment in report
        assert "✓" in report
        assert "FAILED" not in report

    def test_cli_entry_point(self, capsys):
        code = main(["experiments"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E9" in out and "reduction_factor" in out
