"""Integration tests for the Choreographer platform (Figure 4 pipeline)."""

import math

import pytest

from repro.choreographer import Choreographer, PepaNetWorkbench, PepaWorkbench
from repro.uml.model import TAG_PROBABILITY, TAG_THROUGHPUT
from repro.uml.xmi import add_synthetic_layout, extract_layout, read_model, write_model
from repro.uml.model import UmlModel
from repro.workloads import (
    FILE_RATES,
    IM_RATES,
    PDA_RATES,
    build_client_statechart,
    build_file_activity_diagram,
    build_instant_message_diagram,
    build_pda_activity_diagram,
    build_server_statechart,
)


@pytest.fixture(scope="module")
def platform():
    return Choreographer()


class TestActivityAnalysis:
    def test_pda_outcome_shape(self, platform):
        outcome = platform.analyse_activity_diagram(build_pda_activity_diagram(), PDA_RATES)
        assert set(outcome.extraction.net.places) == {"transmitter_1", "transmitter_2"}
        assert outcome.analysis.n_states == 6
        assert outcome.throughput_of("handover") > 0

    def test_handover_outcomes_equiprobable(self, platform):
        """Paper: 'it is as likely that the connection will be dropped
        as it is that it will survive'."""
        outcome = platform.analyse_activity_diagram(build_pda_activity_diagram(), PDA_RATES)
        assert math.isclose(
            outcome.throughput_of("abort download"),
            outcome.throughput_of("continue download"),
            rel_tol=1e-9,
        )

    def test_all_pre_handover_activities_have_equal_throughput(self, platform):
        outcome = platform.analyse_activity_diagram(build_pda_activity_diagram(), PDA_RATES)
        values = [
            outcome.throughput_of(name)
            for name in ("download file", "detect weak signal",
                         "search for other transmitters", "handover")
        ]
        for v in values[1:]:
            assert math.isclose(v, values[0], rel_tol=1e-9)

    def test_diagram_is_annotated(self, platform):
        graph = build_pda_activity_diagram()
        platform.analyse_activity_diagram(graph, PDA_RATES)
        for action in graph.actions():
            assert action.tag(TAG_THROUGHPUT) is not None

    def test_report_renders(self, platform):
        outcome = platform.analyse_activity_diagram(build_pda_activity_diagram(), PDA_RATES)
        text = outcome.report()
        assert "handover" in text
        assert "<<move>>" in text
        assert "transmitter_1" in text


class TestStatechartAnalysis:
    def test_client_server_probabilities(self, platform):
        outcome = platform.analyse_state_diagrams(
            [build_client_statechart(), build_server_statechart()]
        )
        p_wait = outcome.probability_of("Client", "WaitForResponse")
        p_idle = outcome.probability_of("Server", "ServerIdle")
        assert 0 < p_wait < 1 and 0 < p_idle < 1
        # uncached: translation dominates, so the client mostly waits
        assert p_wait > 0.5

    def test_states_annotated(self, platform):
        client = build_client_statechart()
        server = build_server_statechart()
        platform.analyse_state_diagrams([client, server])
        for machine in (client, server):
            for state in machine.simple_states():
                assert state.tag(TAG_PROBABILITY) is not None

    def test_report_renders(self, platform):
        outcome = platform.analyse_state_diagrams(
            [build_client_statechart(), build_server_statechart()]
        )
        text = outcome.report()
        assert "WaitForResponse" in text
        assert "probability" in text


class TestXmiPipeline:
    def build_poseidon_project(self) -> tuple[str, UmlModel]:
        model = UmlModel(name="project")
        model.add_activity_graph(build_instant_message_diagram())
        model.add_state_machine(build_client_statechart())
        model.add_state_machine(build_server_statechart())
        return add_synthetic_layout(write_model(model)), model

    def test_full_pipeline(self, platform):
        poseidon, _ = self.build_poseidon_project()
        reflected, activity_outcomes, statechart_outcomes = platform.process_xmi(
            poseidon, IM_RATES
        )
        assert len(activity_outcomes) == 1
        assert len(statechart_outcomes) == 1
        # the reflected document carries the results as tagged values
        restored = read_model(
            __import__("repro.uml.xmi.poseidon", fromlist=["preprocess"]).preprocess(reflected)
        )
        graph = restored.activity_graph("instant-message")
        assert graph.action_by_name("transmit").tag(TAG_THROUGHPUT) is not None
        sm = restored.state_machine("Client")
        assert sm.state_by_name("WaitForResponse").tag(TAG_PROBABILITY) is not None

    def test_layout_survives_round_trip(self, platform):
        poseidon, model = self.build_poseidon_project()
        reflected, _, _ = platform.process_xmi(poseidon, IM_RATES)
        original_layout = extract_layout(poseidon)
        reflected_layout = extract_layout(reflected)
        assert reflected_layout.keys() == original_layout.keys()

    def test_solver_choice_propagates(self):
        platform = Choreographer(solver="power")
        outcome = platform.analyse_activity_diagram(build_file_activity_diagram(), FILE_RATES)
        reference = Choreographer().analyse_activity_diagram(
            build_file_activity_diagram(), FILE_RATES
        )
        assert math.isclose(
            outcome.throughput_of("read"), reference.throughput_of("read"), rel_tol=1e-5
        )


class TestWorkbenches:
    def test_pepa_workbench_source_round(self):
        workbench = PepaWorkbench()
        analysis = workbench.solve_source(
            "P = (a, 2.0).Q; Q = (b, 1.0).P; P"
        )
        assert analysis.n_states == 2
        assert math.isclose(analysis.throughput("a"), analysis.throughput("b"), rel_tol=1e-9)

    def test_net_workbench_source_round(self):
        workbench = PepaNetWorkbench()
        analysis = workbench.solve_source(
            """
            Tok = (go, 1).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            ab = (go, 1) : A -> B;
            ba = (go, 1) : B -> A;
            """
        )
        assert analysis.n_states == 2

    def test_workbench_rejects_ill_formed(self):
        from repro.exceptions import WellFormednessError

        with pytest.raises(WellFormednessError):
            PepaWorkbench().parse("P = (a, 1).Ghost; P")
