"""Unit tests for the reflector layer and the result table."""

import math

import pytest

from repro.choreographer import Choreographer
from repro.exceptions import ReflectionError
from repro.extract import compose_state_machines, extract_activity_diagram
from repro.pepa.measures import analyse
from repro.pepanets.measures import analyse_net
from repro.reflect import (
    ResultTable,
    reflect_activity_results,
    reflect_state_probabilities,
    results_of_model_analysis,
    results_of_net_analysis,
)
from repro.uml.model import TAG_PROBABILITY, TAG_THROUGHPUT
from repro.workloads import (
    IM_RATES,
    build_client_statechart,
    build_instant_message_diagram,
    build_server_statechart,
)


class TestResultTable:
    def test_add_and_lookup(self):
        table = ResultTable()
        table.add("activity", "read", "throughput", 4.0)
        assert table.value("activity", "read", "throughput") == 4.0

    def test_missing_row_raises(self):
        with pytest.raises(ReflectionError, match="no throughput"):
            ResultTable().value("activity", "read", "throughput")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReflectionError, match="kind"):
            ResultTable().add("galaxy", "x", "throughput", 1.0)

    def test_unknown_measure_rejected(self):
        with pytest.raises(ReflectionError, match="measure"):
            ResultTable().add("activity", "x", "temperature", 1.0)

    def test_xml_round_trip(self):
        table = ResultTable()
        table.add("activity", "read", "throughput", 4.0)
        table.add("state", "Idle", "probability", 0.25)
        restored = ResultTable.from_xml(table.to_xml())
        assert len(restored) == 2
        assert restored.value("state", "Idle", "probability") == 0.25

    def test_file_round_trip(self, tmp_path):
        table = ResultTable()
        table.add("place", "p1", "occupancy", 0.5)
        path = table.write(tmp_path / "results.xmltable")
        assert ResultTable.read(path).value("place", "p1", "occupancy") == 0.5

    def test_bad_xml_rejected(self):
        with pytest.raises(ReflectionError, match="well-formed"):
            ResultTable.from_xml("<oops")
        with pytest.raises(ReflectionError, match="resultTable"):
            ResultTable.from_xml("<wrong/>")

    def test_subjects_by_kind(self):
        table = ResultTable()
        table.add("activity", "a", "throughput", 1.0)
        table.add("activity", "b", "throughput", 1.0)
        table.add("state", "s", "probability", 0.5)
        assert table.subjects("activity") == ["a", "b"]


class TestActivityReflection:
    def outcome(self):
        graph = build_instant_message_diagram()
        extraction = extract_activity_diagram(graph, IM_RATES)
        analysis = analyse_net(extraction.net)
        return graph, extraction, analysis

    def test_every_action_annotated(self):
        graph, extraction, analysis = self.outcome()
        table = results_of_net_analysis(extraction, analysis)
        reflect_activity_results(extraction, table)
        for action in graph.actions():
            assert action.tag(TAG_THROUGHPUT) is not None

    def test_annotation_matches_analysis(self):
        graph, extraction, analysis = self.outcome()
        table = results_of_net_analysis(extraction, analysis)
        reflect_activity_results(extraction, table)
        node = graph.action_by_name("transmit")
        tagged = float(node.tag(TAG_THROUGHPUT))
        assert math.isclose(tagged, analysis.throughput("transmit"), rel_tol=1e-5)

    def test_table_has_place_occupancies(self):
        _, extraction, analysis = self.outcome()
        table = results_of_net_analysis(extraction, analysis)
        assert set(table.subjects("place")) == {"p1", "p2"}

    def test_reflection_against_wrong_table_raises(self):
        _, extraction, _ = self.outcome()
        with pytest.raises(ReflectionError, match="no throughput"):
            reflect_activity_results(extraction, ResultTable())


class TestStatechartReflection:
    def test_states_annotated_with_probabilities(self):
        machines = [build_client_statechart(), build_server_statechart()]
        model, extractions = compose_state_machines(machines)
        analysis = analyse(model)
        table = results_of_model_analysis(extractions, analysis)
        for extraction in extractions:
            reflect_state_probabilities(extraction, table)
        probs = [
            float(s.tag(TAG_PROBABILITY))
            for m in machines
            for s in m.simple_states()
        ]
        assert all(0.0 <= p <= 1.0 for p in probs)
        client_probs = [float(s.tag(TAG_PROBABILITY)) for s in machines[0].simple_states()]
        assert math.isclose(sum(client_probs), 1.0, rel_tol=1e-4)

    def test_reflection_against_wrong_table_raises(self):
        machines = [build_client_statechart()]
        model, extractions = compose_state_machines(machines)
        with pytest.raises(ReflectionError, match="no probability"):
            reflect_state_probabilities(extractions[0], ResultTable())
