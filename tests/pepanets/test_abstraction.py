"""Tests for the PEPA-net → classical Petri net abstraction."""

import pytest

from repro.pepanets import explore_net, parse_net
from repro.pepanets.abstraction import occupancy_counts, project_marking, to_petri_net
from repro.petri import build_reachability_graph, conserved_token_sum, p_invariants


class TestStructure:
    def test_places_and_capacities(self, im_net):
        abstract = to_petri_net(im_net)
        assert set(abstract.places) == {"P1", "P2"}
        assert abstract.places["P1"].capacity == 1
        assert abstract.places["P2"].capacity == 1

    def test_initial_marking_counts_tokens(self, im_net):
        abstract = to_petri_net(im_net)
        m0 = abstract.initial_marking
        assert m0["P1"] == 1 and m0["P2"] == 0

    def test_transitions_carry_arcs_and_rates(self, im_net):
        abstract = to_petri_net(im_net)
        t = abstract.transitions["transmit"]
        assert t.inputs == (("P1", 1),)
        assert t.outputs == (("P2", 1),)
        assert t.rate == 1.0

    def test_multi_arc_transition(self):
        net = parse_net(
            """
            Tok = (swap, 1).Tok;
            A[Tok, Tok] = Tok[_] || Tok[_];
            B[_, _] = Tok[_] || Tok[_];
            swap = (swap, 1) : A, A -> B, B;
            """
        )
        abstract = to_petri_net(net)
        assert abstract.transitions["swap"].inputs == (("A", 2),)
        assert abstract.transitions["swap"].outputs == (("B", 2),)


class TestSoundness:
    def test_every_reachable_marking_projects_to_reachable(self, ring_net):
        abstract = to_petri_net(ring_net)
        abstract_graph = build_reachability_graph(abstract)
        abstract_markings = set(abstract_graph.markings)
        space = explore_net(ring_net)
        for marking in space.markings:
            assert project_marking(marking, abstract) in abstract_markings

    def test_projection_of_instant_message(self, im_net):
        abstract = to_petri_net(im_net)
        abstract_graph = build_reachability_graph(abstract)
        abstract_markings = set(abstract_graph.markings)
        space = explore_net(im_net)
        for marking in space.markings:
            assert project_marking(marking, abstract) in abstract_markings

    def test_token_conservation_invariant_transfers(self, ring_net):
        """The abstraction's P-invariant (token count conserved around
        the ring) holds of every reachable PEPA-net marking."""
        abstract = to_petri_net(ring_net)
        invariants = p_invariants(abstract)
        assert invariants, "ring abstraction must conserve tokens"
        space = explore_net(ring_net)
        for inv in invariants:
            expected = conserved_token_sum(abstract, inv)
            for marking in space.markings:
                counts = occupancy_counts(marking)
                assert sum(w * counts[p] for p, w in inv.items()) == expected

    def test_abstraction_can_overapproximate(self):
        """Token state can forbid firings the structure allows: the
        courier refuses to hop until it has worked, so the abstract
        graph is strictly larger than... rather, abstractly the hop is
        always enabled while concretely it may not be."""
        net = parse_net(
            """
            Tok = (work, 1).Ready;
            Ready = (go, 1).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            ab = (go, 1) : A -> B;
            ba = (go, 1) : B -> A;
            """
        )
        abstract = to_petri_net(net)
        # structurally the token could bounce A->B immediately; check
        # the abstract transition has concession at the initial marking
        assert abstract.has_concession(abstract.transitions["ab"], abstract.initial_marking)
        # concretely the token must 'work' first: no go-derivative yet
        from repro.pepanets import DerivativeSets, has_concession

        ds = DerivativeSets(net.environment)
        assert not has_concession(
            net, net.initial_marking(), net.transitions["ab"], net.environment, ds
        )
