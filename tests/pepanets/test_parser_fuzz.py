"""Fuzz and round-trip properties for the PEPA-net parser and exporter.

Mirrors ``tests/pepa/test_parser_fuzz.py`` one level up: arbitrary text
must parse or raise a controlled library error, single-character
mutations of a good net must never crash uncontrolled, and — the
stronger property — printing any well-formed net through
:func:`repro.pepanets.export.net_source` and re-parsing it must
reproduce the same components, places and transitions.

The round trip caught a real bug: place initial contents are parsed as
sequential *factors*, so a ``Choice`` content (``P + Q``) rendered bare
would not re-parse; ``PepaNet.__str__`` now parenthesises it.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.pepa.rates import ActiveRate, PassiveRate
from repro.pepa.syntax import Cell, Choice, Const, Cooperation, Hiding, Prefix
from repro.pepanets.export import net_source
from repro.pepanets.parser import parse_net
from repro.pepanets.syntax import NetTransitionSpec, PepaNet, PlaceDef

SETTINGS = dict(max_examples=150, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

# ----------------------------------------------------------------------
# Totality: junk in, controlled error (or a net) out
# ----------------------------------------------------------------------

# the net dialect's full surface: the PEPA alphabet plus [], : and ->
NET_ALPHABET = "PQRabc()<>[]{}+.,;=/*|_ \n\t0123456789T:->#@$"
net_texts = st.text(alphabet=NET_ALPHABET, min_size=0, max_size=100)


@settings(**SETTINGS)
@given(net_texts)
def test_parse_net_is_total(source):
    try:
        parse_net(source)
    except ReproError:
        pass
    except RecursionError:  # pragma: no cover - should never happen
        raise AssertionError("net parser blew the stack")


GOOD_NET = (
    "Tok = (work, 2.5).Rest; Rest = (sleep, T).Tok; "
    "P1[Tok] = Tok[_]; P2[_] = Tok[_] <work> Static; "
    "Static = (work, 1.0).Static; "
    "go = (move, 1.5, 2) : P1 -> P2; back = (ret, T) : P2 -> P1;"
)


def test_mutated_good_net_never_crashes_uncontrolled():
    """Single-character deletions of a valid net all fail cleanly or
    still parse."""
    for i in range(len(GOOD_NET)):
        mutated = GOOD_NET[:i] + GOOD_NET[i + 1:]
        try:
            parse_net(mutated)
        except ReproError:
            pass


def test_mutated_good_net_substitutions():
    """Swapping any character for structural junk fails cleanly too."""
    for i in range(0, len(GOOD_NET), 3):
        for junk in "[:>#":
            mutated = GOOD_NET[:i] + junk + GOOD_NET[i + 1:]
            try:
                parse_net(mutated)
            except ReproError:
                pass


# ----------------------------------------------------------------------
# Round trip: net -> net_source -> parse_net is the identity
# ----------------------------------------------------------------------

FAMILIES = ["Tok", "Agent"]
ACTIONS = ["a", "b", "work"]
FIRINGS = ["move", "jump"]
PLACE_NAMES = ["P1", "P2", "P3"]

actions = st.sampled_from(ACTIONS)
families = st.sampled_from(FAMILIES)
active_rates = st.floats(min_value=0.01, max_value=99.0,
                         allow_nan=False, allow_infinity=False).map(
    lambda v: ActiveRate(round(v, 4))
)
passive_rates = st.sampled_from([PassiveRate(1.0), PassiveRate(2.0), PassiveRate(0.5)])
rates = st.one_of(active_rates, passive_rates)


@st.composite
def sequentials(draw, depth=2):
    if depth == 0:
        return Const(draw(families))
    kind = draw(st.sampled_from(["const", "prefix", "choice"]))
    if kind == "const":
        return Const(draw(families))
    if kind == "prefix":
        return Prefix(draw(actions), draw(rates), draw(sequentials(depth - 1)))
    return Choice(draw(sequentials(depth - 1)), draw(sequentials(depth - 1)))


@st.composite
def place_templates(draw):
    """A context: at least one vacant cell, optionally composed with a
    static component or a second cell, optionally under hiding."""
    cell = Cell(draw(families), None)
    kind = draw(st.sampled_from(["cell", "coop_static", "coop_cells", "hidden"]))
    if kind == "cell":
        template = cell
    elif kind == "coop_static":
        acts = frozenset(draw(st.sets(actions, max_size=2)))
        template = Cooperation(cell, Const(draw(families)), acts)
    elif kind == "coop_cells":
        acts = frozenset(draw(st.sets(actions, max_size=2)))
        template = Cooperation(cell, Cell(draw(families), None), acts)
    else:
        acts = frozenset(draw(st.sets(actions, min_size=1, max_size=2)))
        template = Hiding(cell, acts)
    return template


@st.composite
def nets(draw) -> PepaNet:
    from repro.pepa.environment import Environment
    from repro.pepanets.syntax import find_cells

    env = Environment()
    for name in draw(st.sets(st.sampled_from(FAMILIES), min_size=1, max_size=2)):
        env.define(name, draw(sequentials()))

    net = PepaNet(environment=env)
    for place_name in draw(
        st.lists(st.sampled_from(PLACE_NAMES), unique=True, min_size=1, max_size=3)
    ):
        template = draw(place_templates())
        contents = tuple(
            draw(st.one_of(st.none(), sequentials(1)))
            for _ in find_cells(template)
        )
        net.add_place(PlaceDef(place_name, template, contents))

    place_pool = st.sampled_from(list(net.places))
    n_transitions = draw(st.integers(min_value=0, max_value=2))
    for i in range(n_transitions):
        net.add_transition(NetTransitionSpec(
            name=f"t{i}",
            action=draw(st.sampled_from(FIRINGS)),
            rate=draw(rates),
            inputs=tuple(draw(st.lists(place_pool, min_size=1, max_size=2))),
            outputs=tuple(draw(st.lists(place_pool, min_size=1, max_size=2))),
            priority=draw(st.integers(min_value=0, max_value=3)),
        ))
    return net


@settings(**SETTINGS)
@given(nets())
def test_print_parse_identity(net):
    parsed = parse_net(net_source(net))
    assert parsed.environment.components == net.environment.components
    assert parsed.places == net.places
    assert parsed.transitions == net.transitions


@settings(**SETTINGS)
@given(nets())
def test_round_trip_is_a_fixpoint(net):
    """A second print/parse cycle changes nothing further."""
    once = net_source(net)
    assert net_source(parse_net(once)) == once


def test_choice_cell_content_round_trips():
    """Regression: a Choice as an initial cell content must be
    parenthesised by the renderer (the parser reads a seq factor)."""
    from repro.pepa.environment import Environment

    env = Environment()
    env.define("Tok", Prefix("a", ActiveRate(1.0), Const("Tok")))
    net = PepaNet(environment=env)
    content = Choice(Const("Tok"), Prefix("b", ActiveRate(2.0), Const("Tok")))
    net.add_place(PlaceDef("P1", Cell("Tok", None), (content,)))
    source = net_source(net)
    assert "(Tok + (b, 2).Tok)" in source
    parsed = parse_net(source)
    assert parsed.places == net.places


def test_bundled_corpus_nets_round_trip():
    """The shipped example nets survive parse -> print -> parse."""
    from pathlib import Path

    models = Path(__file__).resolve().parents[2] / "examples" / "models"
    for path in sorted(models.glob("*.pepanet")):
        first = parse_net(path.read_text())
        second = parse_net(net_source(first))
        assert second.environment.components == first.environment.components
        assert second.places == first.places
        assert second.transitions == first.transitions
