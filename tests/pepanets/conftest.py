"""Shared PEPA-net fixtures."""

from __future__ import annotations

import pytest

from repro.pepanets import parse_net

INSTANT_MESSAGE_SRC = """
// Section 2.2 of the paper: an instant message transmitted from P1 to
// a reader at P2.
r_t = 1.0; r_o = 2.0; r_r = 10.0; r_w = 4.0; r_c = 1.0;
IM = (transmit, r_t).File;
File = (openread, r_o).InStream + (openwrite, r_o).OutStream;
InStream = (read, r_r).InStream + (close, r_c).File;
OutStream = (write, r_w).OutStream + (close, r_c).File;
FileReader = (openread, T).Reading + (openwrite, T).Writing;
Reading = (read, T).Reading + (close, T).FileReader;
Writing = (write, T).Writing + (close, T).FileReader;

P1[IM] = IM[_];
P2[_] = File[_] <openread, openwrite, read, write, close> FileReader;

transmit = (transmit, r_t) : P1 -> P2;
"""

RING_SRC = """
// a courier token hopping around three locations forever
r_hop = 2.0;
Courier = (hop, r_hop).Courier;

A[Courier] = Courier[_];
B[_] = Courier[_];
C[_] = Courier[_];

hop_ab = (hop, r_hop) : A -> B;
hop_bc = (hop, r_hop) : B -> C;
hop_ca = (hop, r_hop) : C -> A;
"""


@pytest.fixture
def im_net():
    return parse_net(INSTANT_MESSAGE_SRC)


@pytest.fixture
def ring_net():
    return parse_net(RING_SRC)
