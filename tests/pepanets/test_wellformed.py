"""Unit tests for PEPA-net static checks."""

import pytest

from repro.exceptions import WellFormednessError
from repro.pepa.rates import ActiveRate
from repro.pepanets import (
    NetTransitionSpec,
    assert_net_well_formed,
    check_net,
    parse_net,
)


class TestCleanNets:
    def test_instant_message_clean(self, im_net):
        report = check_net(im_net)
        assert report.ok
        assert report.warnings == []

    def test_ring_clean(self, ring_net):
        assert check_net(ring_net).ok


class TestBalance:
    def test_unbalanced_transition_rejected(self):
        net = parse_net(
            """
            Tok = (go, 1).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            C[_] = Tok[_];
            fan = (go, 1) : A -> B, C;
            """
        )
        report = check_net(net)
        assert any("unbalanced" in e for e in report.errors)
        with pytest.raises(WellFormednessError, match="unbalanced"):
            assert_net_well_formed(net)


class TestTypes:
    def test_wrong_initial_content_rejected(self):
        net = parse_net(
            """
            Dog = (bark, 1).Dog;
            Cat = (meow, 1).Cat;
            A[Cat] = Dog[_];
            B[_] = Dog[_];
            move = (bark, 1) : A -> B;
            """
        )
        report = check_net(net)
        assert any("not a derivative" in e for e in report.errors)

    def test_derivative_content_accepted(self):
        """A cell may start holding a *derivative* of its family, not
        just the family constant itself."""
        net = parse_net(
            """
            File = (openread, 1).InStream;
            InStream = (close, 1).File;
            A[InStream] = File[_];
            B[_] = File[_];
            move = (close, 1) : A -> B;
            """
        )
        report = check_net(net)
        assert report.ok


class TestUndefined:
    def test_undefined_family_rejected(self):
        with pytest.raises(WellFormednessError):
            net = parse_net(
                """
                Tok = (go, 1).Tok;
                A[Tok] = Ghost[_];
                B[_] = Tok[_];
                move = (go, 1) : A -> B;
                """
            )
            assert_net_well_formed(net)

    def test_undefined_initial_content_rejected(self):
        net = parse_net(
            """
            Tok = (go, 1).Tok;
            A[Phantom] = Tok[_];
            B[_] = Tok[_];
            move = (go, 1) : A -> B;
            """
        )
        report = check_net(net)
        assert any("Phantom" in e for e in report.errors)


class TestDeadTransitions:
    def test_infeasible_firing_warned(self):
        net = parse_net(
            """
            Tok = (go, 1).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            move = (go, 1) : A -> B;
            never = (teleport, 1) : A -> B;
            """
        )
        report = check_net(net)
        assert report.ok
        assert any("teleport" in w for w in report.warnings)

    def test_feasible_firing_not_warned(self, im_net):
        assert check_net(im_net).warnings == []


class TestContainerLevel:
    def test_empty_net_rejected(self):
        from repro.pepa.environment import Environment
        from repro.pepanets import PepaNet

        report = check_net(PepaNet(environment=Environment()))
        assert any("at least one place" in e for e in report.errors)

    def test_spec_validation_happens_at_construction(self):
        with pytest.raises(WellFormednessError):
            NetTransitionSpec("t", "a", ActiveRate(1.0), (), ())
