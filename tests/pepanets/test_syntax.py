"""Unit tests for PEPA-net abstract syntax and cell addressing."""

import pytest

from repro.exceptions import WellFormednessError
from repro.pepa import Cell, Const, parse_expression
from repro.pepa.environment import Environment
from repro.pepanets import (
    NetTransitionSpec,
    PepaNet,
    PlaceDef,
    derivative_set,
    find_cells,
    replace_cell,
)
from repro.pepa.rates import ActiveRate


class TestCellAddressing:
    def test_find_single_cell(self):
        expr = parse_expression("File[_]")
        cells = find_cells(expr)
        assert len(cells) == 1
        assert cells[0][0] == ()

    def test_find_cells_in_cooperation(self):
        expr = parse_expression("File[_] <a> (Msg[_] || Reader)")
        cells = find_cells(expr)
        paths = [p for p, _ in cells]
        assert paths == [("L",), ("R", "L")]

    def test_find_cells_under_hiding(self):
        expr = parse_expression("(File[_] <a> Reader)/{a}")
        cells = find_cells(expr)
        assert cells[0][0] == ("H", "L")

    def test_replace_cell_round_trip(self):
        expr = parse_expression("File[_] <a> Reader")
        path, cell = find_cells(expr)[0]
        filled = replace_cell(expr, path, cell.filled(Const("File")))
        new_cells = find_cells(filled)
        assert new_cells[0][1].content == Const("File")
        # vacate again restores the original
        vacated = replace_cell(filled, path, cell.vacated())
        assert vacated == expr

    def test_replace_cell_bad_path(self):
        expr = parse_expression("File[_]")
        with pytest.raises(WellFormednessError):
            replace_cell(expr, ("L",), Cell("File", None))

    def test_replace_non_cell_target(self):
        expr = parse_expression("File[_] <a> Reader")
        with pytest.raises(WellFormednessError):
            replace_cell(expr, ("R",), Cell("File", None))


class TestPlaceDef:
    def test_requires_at_least_one_cell(self):
        with pytest.raises(WellFormednessError, match="no cell"):
            PlaceDef("P", parse_expression("Reader"), ())

    def test_template_cells_must_be_vacant(self):
        with pytest.raises(WellFormednessError, match="vacant"):
            PlaceDef("P", parse_expression("File[IM]"), (Const("IM"),))

    def test_content_arity_checked(self):
        with pytest.raises(WellFormednessError, match="initial"):
            PlaceDef("P", parse_expression("File[_]"), (None, None))

    def test_initial_expression_substitutes(self):
        place = PlaceDef("P", parse_expression("File[_] <a> Reader"), (Const("IM"),))
        expr = place.initial_expression()
        assert find_cells(expr)[0][1].content == Const("IM")

    def test_cell_families(self):
        place = PlaceDef("P", parse_expression("File[_] || Msg[_]"), (None, None))
        assert place.cell_families() == ("File", "Msg")


class TestNetTransitionSpec:
    def test_requires_places(self):
        with pytest.raises(WellFormednessError):
            NetTransitionSpec("t", "a", ActiveRate(1.0), (), ("P",))
        with pytest.raises(WellFormednessError):
            NetTransitionSpec("t", "a", ActiveRate(1.0), ("P",), ())

    def test_negative_priority_rejected(self):
        with pytest.raises(WellFormednessError):
            NetTransitionSpec("t", "a", ActiveRate(1.0), ("P",), ("Q",), priority=-1)

    def test_balance(self):
        balanced = NetTransitionSpec("t", "a", ActiveRate(1.0), ("P",), ("Q",))
        unbalanced = NetTransitionSpec("t", "a", ActiveRate(1.0), ("P", "Q"), ("R",))
        assert balanced.is_balanced()
        assert not unbalanced.is_balanced()


class TestPepaNetContainer:
    def test_duplicate_place_rejected(self, im_net):
        with pytest.raises(WellFormednessError, match="twice"):
            im_net.add_place(im_net.places["P1"])

    def test_transition_unknown_place_rejected(self, im_net):
        spec = NetTransitionSpec("bad", "a", ActiveRate(1.0), ("Nowhere",), ("P1",))
        with pytest.raises(WellFormednessError, match="unknown place"):
            im_net.add_transition(spec)

    def test_firing_actions(self, im_net):
        assert im_net.firing_actions == frozenset({"transmit"})

    def test_initial_marking_contents(self, im_net):
        marking = im_net.initial_marking()
        p1_cells = find_cells(marking.state_of("P1"))
        p2_cells = find_cells(marking.state_of("P2"))
        assert p1_cells[0][1].content == Const("IM")
        assert p2_cells[0][1].content is None

    def test_str_renders_all_sections(self, im_net):
        text = str(im_net)
        assert "P1[IM]" in text
        assert "transmit" in text
        assert "->" in text


class TestDerivativeSet:
    def test_file_family(self):
        env = Environment()
        env.define("File", parse_expression("(openread, 1).InStream"))
        env.define("InStream", parse_expression("(close, 1).File"))
        ds = derivative_set("File", env)
        assert Const("File") in ds
        assert Const("InStream") in ds

    def test_im_derivatives_include_file_states(self, im_net):
        ds = derivative_set("IM", im_net.environment)
        assert Const("File") in ds
        assert Const("InStream") in ds

    def test_file_derivatives_exclude_im(self, im_net):
        ds = derivative_set("File", im_net.environment)
        assert Const("IM") not in ds

    def test_size_bound(self, im_net):
        with pytest.raises(WellFormednessError, match="exceeds"):
            derivative_set("IM", im_net.environment, max_size=1)
