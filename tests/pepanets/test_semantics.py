"""Unit tests for marking-space derivation and net analysis."""

import math

import pytest

from repro.exceptions import StateSpaceError, WellFormednessError
from repro.pepanets import analyse_net, explore_net, parse_net


class TestInstantMessageSpace:
    """Golden-value tests on the paper's own Section 2.2 example."""

    def test_marking_count(self, im_net):
        space = explore_net(im_net)
        assert space.size == 4

    def test_actions_split_local_vs_firing(self, im_net):
        space = explore_net(im_net)
        assert space.firing_actions == {"transmit"}
        assert space.actions() == {
            "transmit", "openread", "openwrite", "read", "write", "close",
        }

    def test_firing_happens_once(self, im_net):
        space = explore_net(im_net)
        transmits = [a for a in space.arcs if a.action == "transmit"]
        assert len(transmits) == 1
        assert transmits[0].source == 0

    def test_no_deadlock(self, im_net):
        assert explore_net(im_net).deadlocks() == []

    def test_protocol_preserved_after_move(self, im_net):
        """The received file still obeys 'no read/write interleaving'."""
        space = explore_net(im_net)
        for arc in space.arcs:
            if arc.action == "read":
                label = space.state_label(arc.source)
                assert "InStream" in label
            if arc.action == "write":
                label = space.state_label(arc.source)
                assert "OutStream" in label


class TestRingNet:
    def test_three_markings(self, ring_net):
        space = explore_net(ring_net)
        assert space.size == 3

    def test_uniform_location_distribution(self, ring_net):
        result = analyse_net(ring_net, reducible="error")
        for place in ("A", "B", "C"):
            assert math.isclose(result.probability_at(place), 1 / 3, rel_tol=1e-9)

    def test_hop_throughput(self, ring_net):
        """Each hop transition fires when its input holds the token:
        throughput = P(token there) * rate = 2/3 per arc... summed over
        the shared action name: 3 * (1/3 * 2) = 2."""
        result = analyse_net(ring_net, reducible="error")
        assert math.isclose(result.throughput("hop"), 2.0, rel_tol=1e-9)

    def test_occupancy_sums_to_token_count(self, ring_net):
        result = analyse_net(ring_net, reducible="error")
        total = sum(result.location_distribution().values())
        assert math.isclose(total, 1.0, rel_tol=1e-9)


class TestLocalAndFiringInterleaving:
    def test_working_token_moves_between_work(self):
        net = parse_net(
            """
            Tok = (work, 3).Tok + (go, 1).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            move_ab = (go, 1) : A -> B;
            move_ba = (go, 1) : B -> A;
            """
        )
        space = explore_net(net)
        assert space.size == 2
        result = analyse_net(net, reducible="error")
        # symmetric: work happens at both places at rate 3
        assert math.isclose(result.throughput("work"), 3.0, rel_tol=1e-9)
        assert math.isclose(result.throughput("go"), 1.0, rel_tol=1e-9)

    def test_static_component_constrains_token(self):
        """A static gate that only lets the token work when it has
        charged: place-level cooperation shapes the local behaviour."""
        net = parse_net(
            """
            Tok = (work, 5).Tok + (go, 1).Tok;
            Gate = (charge, 1).Ready;
            Ready = (work, T).Gate;
            A[Tok] = Tok[_] <work> Gate;
            B[_] = Tok[_];
            move_ab = (go, 1) : A -> B;
            move_ba = (go, 1) : B -> A;
            """
        )
        space = explore_net(net)
        # A holds Gate or Ready state x token presence; B binary -> states:
        # (tok@A, Gate), (tok@A, Ready), (tok@B, Gate), (tok@B, Ready)
        assert space.size == 4
        result = analyse_net(net, reducible="error")
        # work needs token at A and gate Ready
        assert result.throughput("work") < 5.0
        assert result.throughput("charge") > 0.0

    def test_passive_local_activity_rejected(self):
        net = parse_net(
            """
            Tok = (lonely, T).Tok + (go, 1).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            move = (go, 1) : A -> B;
            """
        )
        with pytest.raises(WellFormednessError, match="passive"):
            explore_net(net)

    def test_state_bound(self, im_net):
        with pytest.raises(StateSpaceError, match="exceeds"):
            explore_net(im_net, max_states=2)


class TestTwoTokenNet:
    def test_two_tokens_interleave(self):
        net = parse_net(
            """
            Tok = (go, 1).Tok;
            A[Tok, Tok] = Tok[_] || Tok[_];
            B[_, _] = Tok[_] || Tok[_];
            move_ab = (go, 1) : A -> B;
            move_ba = (go, 1) : B -> A;
            """
        )
        space = explore_net(net)
        # token count at A: 2, 1, 0 with cell identities -> states:
        # (2,0), (1,1) x cell choices, (0,2); cells are distinguishable,
        # so (1,1) appears in 4 variants = 6 markings total
        assert space.size == 6
        result = analyse_net(net, reducible="error")
        assert math.isclose(sum(result.location_distribution().values()), 2.0, rel_tol=1e-9)
        assert math.isclose(result.occupancy("A"), 1.0, rel_tol=1e-9)
