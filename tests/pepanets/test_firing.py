"""Unit tests for the firing semantics (Definitions 2-6)."""

import math

import pytest

from repro.exceptions import WellFormednessError
from repro.pepanets import (
    DerivativeSets,
    eligible_tokens,
    enabled_transitions,
    firing_instances,
    has_concession,
    parse_net,
    vacant_cells,
)


def net_of(src: str):
    net = parse_net(src)
    return net, net.initial_marking(), DerivativeSets(net.environment)


class TestEnabling:
    def test_eligible_tokens_found(self, im_net):
        marking = im_net.initial_marking()
        elig = eligible_tokens(marking.state_of("P1"), "transmit", im_net.environment)
        assert len(elig) == 1
        _, cell, tr = elig[0]
        assert cell.family == "IM"
        assert tr.action == "transmit"

    def test_no_eligible_token_in_empty_place(self, im_net):
        marking = im_net.initial_marking()
        assert eligible_tokens(marking.state_of("P2"), "transmit", im_net.environment) == []

    def test_vacant_cells(self, im_net):
        marking = im_net.initial_marking()
        assert len(vacant_cells(marking.state_of("P2"))) == 1
        assert vacant_cells(marking.state_of("P1")) == []


class TestConcession:
    def test_transmit_has_concession_initially(self, im_net):
        marking = im_net.initial_marking()
        ds = DerivativeSets(im_net.environment)
        spec = im_net.transitions["transmit"]
        assert has_concession(im_net, marking, spec, im_net.environment, ds)

    def test_no_concession_without_vacant_output(self):
        net, marking, ds = net_of(
            """
            Tok = (go, 1).Tok;
            A[Tok] = Tok[_];
            B[Tok] = Tok[_];   // output cell already occupied
            move = (go, 1) : A -> B;
            """
        )
        spec = net.transitions["move"]
        assert not has_concession(net, marking, spec, net.environment, ds)
        assert firing_instances(net, marking, net.environment, ds) == []

    def test_type_preservation_blocks_wrong_family(self):
        """A Dog token cannot enter a Cat cell even if both perform the
        firing action (Definition 4's type-preserving bijection)."""
        net, marking, ds = net_of(
            """
            Dog = (go, 1).Dog;
            Cat = (go, 1).Cat;
            A[Dog] = Dog[_];
            B[_] = Cat[_];
            move = (go, 1) : A -> B;
            """
        )
        spec = net.transitions["move"]
        assert not has_concession(net, marking, spec, net.environment, ds)

    def test_cross_family_via_derivative_set(self, im_net):
        """IM's transmit-derivative is File, which IS admitted by the
        File cell at P2 — the paper's own example."""
        marking = im_net.initial_marking()
        ds = DerivativeSets(im_net.environment)
        instances = firing_instances(im_net, marking, im_net.environment, ds)
        assert len(instances) == 1
        assert instances[0].action == "transmit"


class TestPriorities:
    def test_higher_priority_preempts(self):
        net, marking, ds = net_of(
            """
            Tok = (go, 1).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            C[_] = Tok[_];
            slow = (go, 1, 1) : A -> B;
            fast = (go, 1, 5) : A -> C;
            """
        )
        enabled = enabled_transitions(net, marking, net.environment, ds)
        assert [t.name for t in enabled] == ["fast"]
        instances = firing_instances(net, marking, net.environment, ds)
        assert {i.transition for i in instances} == {"fast"}

    def test_blocked_high_priority_unblocks_low(self):
        net, marking, ds = net_of(
            """
            Tok = (go, 1).Tok;
            Other = (noop, 1).Other;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            Full[Other] = Other[_];
            slow = (go, 1, 1) : A -> B;
            fast = (go, 1, 5) : A -> Full;   // no vacant cell at Full
            """
        )
        enabled = enabled_transitions(net, marking, net.environment, ds)
        assert [t.name for t in enabled] == ["slow"]


class TestFiringRates:
    def test_active_token_active_label_min_law(self):
        net, marking, ds = net_of(
            """
            Tok = (go, 2).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            move = (go, 5) : A -> B;
            """
        )
        [inst] = firing_instances(net, marking, net.environment, ds)
        assert math.isclose(inst.rate, 2.0)  # min(5, 2)

    def test_passive_token_adopts_label_rate(self):
        net, marking, ds = net_of(
            """
            Tok = (go, T).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            move = (go, 3) : A -> B;
            """
        )
        [inst] = firing_instances(net, marking, net.environment, ds)
        assert math.isclose(inst.rate, 3.0)

    def test_passive_label_adopts_token_rate(self):
        net, marking, ds = net_of(
            """
            Tok = (go, 4).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            move = (go, T) : A -> B;
            """
        )
        [inst] = firing_instances(net, marking, net.environment, ds)
        assert math.isclose(inst.rate, 4.0)

    def test_all_passive_rejected(self):
        net, marking, ds = net_of(
            """
            Tok = (go, T).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            move = (go, T) : A -> B;
            """
        )
        with pytest.raises(WellFormednessError, match="passive"):
            firing_instances(net, marking, net.environment, ds)

    def test_competing_tokens_share_capacity(self):
        """Two tokens at A race for one vacant cell at B: total firing
        rate is min(label, r1+r2), split in proportion to rates."""
        net, marking, ds = net_of(
            """
            Tok = (go, 1).Done;
            Done = (rest, 1).Done;
            A[Tok, Tok] = Tok[_] || Tok[_];
            B[_] = Tok[_];
            move = (go, 10) : A -> B;
            """
        )
        instances = firing_instances(net, marking, net.environment, ds)
        assert len(instances) == 2
        total = sum(i.rate for i in instances)
        assert math.isclose(total, 2.0)  # min(10, 1+1)
        assert math.isclose(instances[0].rate, instances[1].rate)

    def test_token_choice_probabilistic_split(self):
        """A token with two go-derivatives splits the firing rate by the
        activity-rate ratio."""
        net, marking, ds = net_of(
            """
            Tok = (go, 1).Left + (go, 3).Right;
            Left = (l, 1).Left;
            Right = (r, 1).Right;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            move = (go, 8) : A -> B;
            """
        )
        instances = firing_instances(net, marking, net.environment, ds)
        rates = sorted(i.rate for i in instances)
        # apparent token rate 4, label 8 -> floor 4, split 1:3
        assert math.isclose(rates[0], 1.0)
        assert math.isclose(rates[1], 3.0)

    def test_multiple_vacant_cells_split_equally(self):
        """Definition 6: several bijections phi are equally likely."""
        net, marking, ds = net_of(
            """
            Tok = (go, 2).Tok;
            A[Tok] = Tok[_];
            B[_, _] = Tok[_] || Tok[_];
            move = (go, 2) : A -> B;
            """
        )
        instances = firing_instances(net, marking, net.environment, ds)
        assert len(instances) == 2
        for inst in instances:
            assert math.isclose(inst.rate, 1.0)  # 2.0 split over 2 phis

    def test_two_place_synchronised_move(self):
        """A transition with two input and two output places moves both
        tokens simultaneously."""
        net, marking, ds = net_of(
            """
            Tok = (swap, 1).Tok;
            A[Tok] = Tok[_];
            B[Tok] = Tok[_];
            C[_] = Tok[_];
            D[_] = Tok[_];
            swap = (swap, 1) : A, B -> C, D;
            """
        )
        instances = firing_instances(net, marking, net.environment, ds)
        # two bijections (A->C,B->D) and (A->D,B->C), same total rate 1
        assert len(instances) == 2
        assert math.isclose(sum(i.rate for i in instances), 1.0)
        for inst in instances:
            m = inst.marking
            assert "Tok[_]" in str(m.state_of("A"))
            assert "Tok[_]" in str(m.state_of("B"))


class TestFiringEffects:
    def test_token_moves_and_evolves(self, im_net):
        marking = im_net.initial_marking()
        ds = DerivativeSets(im_net.environment)
        [inst] = firing_instances(im_net, marking, im_net.environment, ds)
        new = inst.marking
        assert "IM[_]" in str(new.state_of("P1"))
        assert "File[File]" in str(new.state_of("P2"))

    def test_mixed_active_passive_tokens_in_place_rejected(self):
        net, marking, ds = net_of(
            """
            Act = (go, 1).Act;
            Pas = (go, T).Pas;
            A[Act, Pas] = Act[_] || Pas[_];
            B[_] = Act[_];
            move = (go, 1) : A -> B;
            """
        )
        with pytest.raises(WellFormednessError, match="mixes active and passive"):
            firing_instances(net, marking, net.environment, ds)
