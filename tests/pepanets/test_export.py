"""Unit tests for PEPA-net exports."""

import pytest

from repro.pepanets import explore_net
from repro.pepanets.export import marking_space_dot, net_structure_dot
from repro.workloads import courier_ring_net


class TestNetStructureDot:
    def test_contains_places_and_transitions(self, im_net):
        dot = net_structure_dot(im_net)
        assert dot.startswith("digraph pepanet")
        assert "p_P1" in dot and "p_P2" in dot
        assert "t_transmit" in dot
        assert "p_P1 -> t_transmit" in dot
        assert "t_transmit -> p_P2" in dot

    def test_initial_tokens_shown(self, im_net):
        dot = net_structure_dot(im_net)
        assert "tokens: IM" in dot

    def test_priority_annotated_when_nontrivial(self):
        from repro.pepanets import parse_net

        net = parse_net(
            """
            Tok = (go, 1).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            fast = (go, 1, 7) : A -> B;
            """
        )
        assert "priority 7" in net_structure_dot(net)

    def test_quotes_escaped(self, im_net):
        dot = net_structure_dot(im_net)
        # a syntactically plausible dot file: balanced braces, no bare quotes
        assert dot.count("{") == dot.count("}")


class TestMarkingSpaceDot:
    def test_firings_bold_locals_grey(self, im_net):
        space = explore_net(im_net)
        dot = marking_space_dot(space)
        assert "style=bold color" in dot   # the transmit arc
        assert 'color="grey40"' in dot     # local activities

    def test_initial_marking_highlighted(self, im_net):
        space = explore_net(im_net)
        dot = marking_space_dot(space)
        assert "m0 [" in dot and "style=bold]" in dot

    def test_size_limit(self):
        space = explore_net(courier_ring_net(6, 3))
        with pytest.raises(ValueError, match="refusing"):
            marking_space_dot(space, max_states=5)

    def test_arc_labels_carry_rates(self, ring_net):
        space = explore_net(ring_net)
        dot = marking_space_dot(space)
        assert "hop, 2" in dot
