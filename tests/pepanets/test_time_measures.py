"""Tests for time-dependent mobility measures on PEPA nets."""

import math

import pytest

from repro.exceptions import SolverError
from repro.pepanets import analyse_net, parse_net


@pytest.fixture(scope="module")
def hop_result():
    net = parse_net(
        """
        Tok = (go, 2.0).Tok;
        A[Tok] = Tok[_];
        B[_] = Tok[_];
        ab = (go, 2.0) : A -> B;
        ba = (go, 2.0) : B -> A;
        """
    )
    return analyse_net(net, reducible="error")


class TestTransientOccupancy:
    def test_at_time_zero_token_is_home(self, hop_result):
        assert hop_result.transient_probability_at("A", 0.0) == 1.0
        assert hop_result.transient_probability_at("B", 0.0) == 0.0

    def test_closed_form_two_place_hop(self, hop_result):
        """Symmetric 2-state hop at rate 2: P(at B at t) =
        1/2 (1 - e^{-4t})."""
        for t in (0.1, 0.5, 2.0):
            expected = 0.5 * (1 - math.exp(-4.0 * t))
            measured = hop_result.transient_probability_at("B", t)
            assert math.isclose(measured, expected, abs_tol=1e-9)

    def test_long_run_matches_steady_state(self, hop_result):
        p_inf = hop_result.probability_at("B")
        assert math.isclose(
            hop_result.transient_probability_at("B", 50.0), p_inf, abs_tol=1e-9
        )

    def test_family_filter(self, hop_result):
        assert hop_result.transient_probability_at("B", 1.0, family="Tok") == \
            hop_result.transient_probability_at("B", 1.0)
        assert hop_result.transient_probability_at("B", 1.0, family="Ghost") == 0.0


class TestMeanTimeToReach:
    def test_single_hop_mean(self, hop_result):
        assert math.isclose(hop_result.mean_time_to_reach("B"), 0.5, rel_tol=1e-9)

    def test_already_there_is_zero(self, hop_result):
        assert hop_result.mean_time_to_reach("A") == 0.0

    def test_unreachable_rejected(self, hop_result):
        with pytest.raises(SolverError, match="no reachable"):
            hop_result.mean_time_to_reach("B", family="Ghost")

    def test_pda_handover_time(self):
        """Time for the PDA session to reach transmitter_2: the full
        download-detect-search-handover pipeline of stage means."""
        from repro.extract import extract_activity_diagram
        from repro.workloads import PDA_RATES, build_pda_activity_diagram

        result = extract_activity_diagram(build_pda_activity_diagram(), PDA_RATES)
        analysis = analyse_net(result.net)
        mean = analysis.mean_time_to_reach("transmitter_2")
        expected = (
            1 / PDA_RATES["download_file"]
            + 1 / PDA_RATES["detect_weak_signal"]
            + 1 / PDA_RATES["search_for_other_transmitters"]
            + 1 / PDA_RATES["handover"]
        )
        assert math.isclose(mean, expected, rel_tol=1e-9)
