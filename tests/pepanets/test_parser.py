"""Unit tests for the PEPA-net parser."""

import pytest

from repro.exceptions import PepaSyntaxError
from repro.pepa import Const
from repro.pepa.rates import ActiveRate, PassiveRate
from repro.pepanets import parse_net


class TestParsing:
    def test_instant_message_structure(self, im_net):
        assert set(im_net.places) == {"P1", "P2"}
        assert set(im_net.transitions) == {"transmit"}
        spec = im_net.transitions["transmit"]
        assert spec.action == "transmit"
        assert spec.rate == ActiveRate(1.0)
        assert spec.inputs == ("P1",)
        assert spec.outputs == ("P2",)
        assert spec.priority == 1

    def test_priority_parsed(self):
        net = parse_net(
            """
            Tok = (go, 1).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            fast = (go, 1, 7) : A -> B;
            """
        )
        assert net.transitions["fast"].priority == 7

    def test_passive_label(self):
        net = parse_net(
            """
            Tok = (go, 2).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            move = (go, T) : A -> B;
            """
        )
        assert net.transitions["move"].rate == PassiveRate(1.0)

    def test_multi_place_arcs(self):
        net = parse_net(
            """
            Tok = (swap, 1).Tok;
            A[Tok] = Tok[_];
            B[Tok] = Tok[_];
            C[_] = Tok[_];
            D[_] = Tok[_];
            swap = (swap, 1) : A, B -> C, D;
            """
        )
        assert net.transitions["swap"].inputs == ("A", "B")
        assert net.transitions["swap"].outputs == ("C", "D")

    def test_multi_cell_place(self):
        net = parse_net(
            """
            Tok = (go, 1).Tok;
            P[Tok, _] = Tok[_] || Tok[_];
            Q[_] = Tok[_];
            move = (go, 1) : P -> Q;
            """
        )
        place = net.places["P"]
        assert place.initial_contents == (Const("Tok"), None)

    def test_wildcard_cooperation_in_place_resolved(self):
        net = parse_net(
            """
            Tok = (work, 1).Tok + (go, 1).Tok;
            Server = (work, T).Server;
            A[Tok] = Tok[_] <*> Server;
            B[_] = Tok[_];
            move = (go, 1) : A -> B;
            """
        )
        template = net.places["A"].template
        # shared alphabet of Tok {work, go} and Server {work}
        assert template.actions == frozenset({"work"})

    def test_rates_resolve_across_sections(self):
        net = parse_net(
            """
            speed = base * 2;
            base = 1.5;
            Tok = (go, speed).Tok;
            A[Tok] = Tok[_];
            B[_] = Tok[_];
            move = (go, speed) : A -> B;
            """
        )
        assert net.transitions["move"].rate == ActiveRate(3.0)


class TestErrors:
    def test_no_places_rejected(self):
        with pytest.raises(PepaSyntaxError, match="place"):
            parse_net("Tok = (go, 1).Tok;")

    def test_empty_model_rejected(self):
        with pytest.raises(PepaSyntaxError, match="empty"):
            parse_net("  // nothing\n")

    def test_lowercase_place_rejected(self):
        with pytest.raises(PepaSyntaxError, match="upper-case"):
            parse_net("Tok = (go,1).Tok; p[Tok] = Tok[_]; t = (go,1) : p -> p;")

    def test_uppercase_firing_action_rejected(self):
        with pytest.raises(PepaSyntaxError, match="lower-case"):
            parse_net(
                "Tok = (go,1).Tok; P[Tok] = Tok[_]; Q[_] = Tok[_];"
                "t = (Go, 1) : P -> Q;"
            )

    def test_unknown_place_in_transition(self):
        from repro.exceptions import WellFormednessError

        with pytest.raises(WellFormednessError, match="unknown place"):
            parse_net(
                "Tok = (go,1).Tok; P[Tok] = Tok[_];"
                "t = (go, 1) : P -> Nowhere;"
            )

    def test_bare_expression_statement_rejected(self):
        with pytest.raises(PepaSyntaxError, match="unrecognised"):
            parse_net(
                "Tok = (go,1).Tok; P[Tok] = Tok[_]; Q[_] = Tok[_];"
                "t = (go,1) : P -> Q;"
                "(Tok || Tok)"
            )

    def test_trailing_tokens_in_transition(self):
        with pytest.raises(PepaSyntaxError, match="trailing"):
            parse_net(
                "Tok = (go,1).Tok; P[Tok] = Tok[_]; Q[_] = Tok[_];"
                "t = (go,1) : P -> Q extra;"
            )


class TestRoundTrip:
    def test_str_reparses(self, im_net):
        text = str(im_net)
        reparsed = parse_net(text)
        assert set(reparsed.places) == set(im_net.places)
        assert set(reparsed.transitions) == set(im_net.transitions)
        assert reparsed.initial_marking() == im_net.initial_marking()

    def test_ring_round_trip(self, ring_net):
        reparsed = parse_net(str(ring_net))
        assert reparsed.initial_marking() == ring_net.initial_marking()
        assert reparsed.firing_actions == ring_net.firing_actions