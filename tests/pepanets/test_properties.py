"""Property-based tests over randomly generated PEPA nets.

The strategy builds random ring/line topologies with random token
behaviours and random firing labels, then checks semantic invariants:

* token conservation — every reachable marking holds exactly the
  initial number of tokens;
* the classical abstraction is sound — every reachable marking projects
  into the abstraction's coverability set;
* firing rates respect bounded capacity — the total rate of a firing
  type out of a marking never exceeds max(label, place apparent rate);
* the CTMC of the marking space satisfies global balance on its
  recurrent class.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ctmc.steady import steady_state
from repro.pepa.environment import Environment
from repro.pepa.rates import ActiveRate
from repro.pepa.syntax import Cell, Const, Prefix
from repro.pepanets import explore_net, find_cells
from repro.pepanets.measures import ctmc_of_net
from repro.pepanets.syntax import NetTransitionSpec, PepaNet, PlaceDef

rates = st.floats(min_value=0.2, max_value=5.0, allow_nan=False, allow_infinity=False)


@st.composite
def random_nets(draw) -> PepaNet:
    n_places = draw(st.integers(2, 4))
    n_tokens = draw(st.integers(1, min(2, n_places)))
    work_rate = draw(rates)
    hop_rate = draw(rates)
    has_local_work = draw(st.booleans())

    env = Environment()
    if has_local_work:
        env.define(
            "Tok",
            Prefix("work", ActiveRate(work_rate),
                   Const("Moving")),
        )
        env.define("Moving", Prefix("hop", ActiveRate(hop_rate), Const("Tok")))
    else:
        env.define("Tok", Prefix("hop", ActiveRate(hop_rate), Const("Tok")))

    net = PepaNet(environment=env)
    for i in range(n_places):
        contents = (Const("Tok") if i < n_tokens else None,)
        net.add_place(PlaceDef(f"L{i}", Cell("Tok", None), contents))
    # ring topology plus optionally a chord
    for i in range(n_places):
        net.add_transition(
            NetTransitionSpec(
                name=f"hop_{i}", action="hop", rate=ActiveRate(hop_rate),
                inputs=(f"L{i}",), outputs=(f"L{(i + 1) % n_places}",),
            )
        )
    if draw(st.booleans()) and n_places >= 3:
        net.add_transition(
            NetTransitionSpec(
                name="chord", action="hop", rate=ActiveRate(hop_rate),
                inputs=("L0",), outputs=("L2",),
            )
        )
    return net


COMMON = dict(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


def token_count(marking) -> int:
    return sum(
        1
        for place in marking.place_names
        for _, cell in find_cells(marking.state_of(place))
        if cell.content is not None
    )


@settings(**COMMON)
@given(random_nets())
def test_token_conservation(net):
    space = explore_net(net, max_states=20_000)
    initial_tokens = token_count(net.initial_marking())
    for marking in space.markings:
        assert token_count(marking) == initial_tokens


@settings(**COMMON)
@given(random_nets())
def test_abstraction_soundness(net):
    from repro.petri.coverability import build_coverability_graph
    from repro.pepanets.abstraction import project_marking, to_petri_net

    abstract = to_petri_net(net)
    cover = build_coverability_graph(abstract)
    space = explore_net(net, max_states=20_000)
    order = tuple(sorted(abstract.places))
    for marking in space.markings:
        projected = project_marking(marking, abstract)
        target = {p: projected[p] for p in order}
        assert cover.is_coverable(target)


@settings(**COMMON)
@given(random_nets())
def test_firing_rates_bounded_by_capacity(net):
    space = explore_net(net, max_states=20_000)
    hop_label_rates = [
        t.rate.value for t in net.transitions.values() if t.action == "hop"
    ]
    max_label = max(hop_label_rates)
    by_source: dict[int, float] = {}
    for arc in space.arcs:
        if arc.action == "hop":
            by_source[arc.source] = by_source.get(arc.source, 0.0) + arc.rate
    # per marking the total hop rate is bounded by (number of enabled
    # hop transitions) * min(label, token apparent); a loose but real
    # bound: n_transitions * max label rate
    bound = len(net.transitions) * max_label * (1 + 1e-9)
    for total in by_source.values():
        assert total <= bound


@settings(**COMMON)
@given(random_nets())
def test_marking_ctmc_global_balance(net):
    space, chain = ctmc_of_net(net, max_states=20_000)
    if chain.absorbing_states().size:
        return
    try:
        pi = steady_state(chain, reducible="bscc")
    except Exception:
        return
    residual = np.abs(pi @ chain.Q.toarray()).max()
    assert residual < 1e-8
    assert math.isclose(pi.sum(), 1.0, rel_tol=1e-9)
