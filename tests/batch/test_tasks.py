"""Task-kind runners: each kind's payload contract and measures shape."""

from __future__ import annotations

import pytest

from repro.batch import BatchTask
from repro.batch.tasks import TASK_KINDS, run_task
from repro.uml.model import UmlModel
from repro.uml.xmi import add_synthetic_layout, write_model
from repro.workloads import build_instant_message_diagram

PEPA_SRC = """
r = 2.0;
P = (work, r).Q;
Q = (rest, 1.0).P;
P
"""

def sample_call(x: int) -> dict:
    """Importable target for the ``call`` kind tests."""
    return {"x": x, "doubled": 2 * x}


def one_diagram_document() -> str:
    model = UmlModel(name="project")
    model.add_activity_graph(build_instant_message_diagram())
    return add_synthetic_layout(write_model(model))


def test_registry_names_every_kind():
    assert set(TASK_KINDS) == {"xmi", "pepa", "net", "experiment", "call"}


def test_pepa_kind_measures():
    measures = run_task(BatchTask(id="t", kind="pepa", payload={"source": PEPA_SRC}))
    assert measures["n_states"] == 2
    assert set(measures["throughputs"]) == {"work", "rest"}
    assert measures["throughputs"]["work"] == pytest.approx(
        measures["throughputs"]["rest"]
    )


def test_xmi_kind_runs_full_pipeline():
    payload = {"text": one_diagram_document(),
               "rates": {"read": 10.0, "reply": 2.0, "transmit": 1.0}}
    measures = run_task(BatchTask(id="t", kind="xmi", payload=payload))
    assert measures["failures"] == []
    [diagram] = measures["diagrams"]
    assert diagram["type"] == "activity"
    assert diagram["n_states"] > 0
    assert len(measures["document_sha256"]) == 64
    # Same input document => same reflected-document digest.
    again = run_task(BatchTask(id="t", kind="xmi", payload=payload))
    assert again["document_sha256"] == measures["document_sha256"]


def test_experiment_kind_reports_checks():
    measures = run_task(BatchTask(id="t", kind="experiment",
                                  payload={"experiment": "E1"}))
    assert measures["experiment"] == "E1"
    assert measures["ok"] is True
    assert all(isinstance(v, bool) for v in measures["checks"].values())


def test_unknown_experiment_names_choices():
    with pytest.raises(KeyError, match="E1"):
        run_task(BatchTask(id="t", kind="experiment",
                           payload={"experiment": "E99"}))


def test_call_kind_invokes_importable_target():
    measures = run_task(BatchTask(
        id="t", kind="call",
        payload={"target": "tests.batch.test_tasks:sample_call",
                 "kwargs": {"x": 21}},
    ))
    assert measures == {"x": 21, "doubled": 42}


def test_call_kind_rejects_non_dict_results():
    with pytest.raises(TypeError, match="dict"):
        run_task(BatchTask(
            id="t", kind="call",
            payload={"target": "repro.core.keys:stable_digest",
                     "kwargs": {"document": {"x": 1}}},
        ))


def test_call_kind_rejects_malformed_target():
    with pytest.raises(ValueError, match="module:function"):
        run_task(BatchTask(id="t", kind="call", payload={"target": "no-colon"}))


def test_unknown_kind_raises():
    with pytest.raises(ValueError, match="unknown task kind"):
        run_task(BatchTask(id="t", kind="bogus"))


FLUID_SRC = """
Session = (download, 1.0).Roaming;
Roaming = (handover, 0.5).Session;
Session || Session
"""


def test_pepa_kind_fluid_route():
    measures = run_task(BatchTask(
        id="t", kind="pepa",
        payload={"source": FLUID_SRC, "fluid": True, "replicas": 600},
    ))
    assert measures["replicas"] == 600
    assert measures["dimension"] == 2
    assert measures["method"] in ("newton", "ode", "damped")
    assert measures["throughputs"]["download"] == pytest.approx(200.0, rel=1e-6)
    assert sum(measures["occupancies"].values()) == pytest.approx(600.0)


def test_pepa_kind_fluid_measures_deterministic():
    payload = {"source": FLUID_SRC, "fluid": True, "replicas": 50}
    first = run_task(BatchTask(id="t", kind="pepa", payload=payload))
    second = run_task(BatchTask(id="t", kind="pepa", payload=payload))
    assert first == second
