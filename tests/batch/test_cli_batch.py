"""The ``choreographer batch`` sub-command, end to end."""

from __future__ import annotations

import json

import pytest

from repro.choreographer.cli import main
from repro.obs import read_events_jsonl

PEPA_SRC = """
r = 2.0;
P = (work, r).Q;
Q = (rest, 1.0).P;
P
"""

BROKEN_SRC = "definitely not a model"


@pytest.fixture
def model_file(tmp_path):
    path = tmp_path / "toy.pepa"
    path.write_text(PEPA_SRC)
    return path


def test_batch_solves_files_and_writes_measures(model_file, tmp_path, capsys):
    measures = tmp_path / "measures.json"
    code = main([
        "batch", str(model_file),
        "--cache-dir", str(tmp_path / "cache"),
        "--measures", str(measures),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "toy" in out and "ok" in out
    document = json.loads(measures.read_text())
    assert document["schema"] == "repro-batch/1"
    assert document["tasks"][0]["measures"]["n_states"] == 2


def test_batch_measures_identical_across_jobs(model_file, tmp_path):
    paths = {}
    for jobs in ("1", "2"):
        paths[jobs] = tmp_path / f"measures-{jobs}.json"
        assert main([
            "batch", str(model_file), "--experiments",
            "--jobs", jobs,
            "--cache-dir", str(tmp_path / "cache"),
            "--measures", str(paths[jobs]),
        ]) == 0
    assert paths["1"].read_bytes() == paths["2"].read_bytes()


def test_batch_no_cache_leaves_no_cache_directory(model_file, tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    code = main([
        "batch", str(model_file),
        "--cache-dir", str(cache_dir), "--no-cache",
    ])
    assert code == 0
    assert "cache: off" in capsys.readouterr().out
    assert not cache_dir.exists()


def test_batch_failing_input_exits_3(model_file, tmp_path):
    broken = tmp_path / "broken.pepa"
    broken.write_text(BROKEN_SRC)
    code = main([
        "batch", str(model_file), str(broken), "--no-cache",
        "--cache-dir", str(tmp_path / "unused-cache"),
    ])
    assert code == 3


def test_batch_without_inputs_exits_2(tmp_path, capsys):
    assert main(["batch", "--cache-dir", str(tmp_path / "c")]) == 2
    assert "nothing to do" in capsys.readouterr().err


def test_batch_merged_artifacts_are_consumable(model_file, tmp_path):
    trace_path = tmp_path / "trace.json"
    events_path = tmp_path / "events.jsonl"
    assert main([
        "batch", str(model_file),
        "--cache-dir", str(tmp_path / "cache"),
        "--trace", str(trace_path), "--events", str(events_path),
    ]) == 0
    # The merged trace is a regular repro-trace/1 document...
    assert main(["analyze-trace", str(trace_path)]) == 0
    # ...and the merged events are regular repro-events/1 JSONL,
    # task-tagged.
    header, events = read_events_jsonl(events_path)
    assert header["events"] == len(events)
    assert all(event["task"] == "toy" for event in events)


# ---------------------------------------------------------------------------
# Supervision, chaos and resume through the CLI
# ---------------------------------------------------------------------------
def test_batch_chaos_kill_recovers_and_measures_match(model_file, tmp_path):
    """`--chaos kill:toy@1` with retries: the run recovers and its
    measures are byte-identical to an undisturbed run — the CI chaos
    smoke contract."""
    clean = tmp_path / "clean.json"
    assert main([
        "batch", str(model_file), "--no-cache", "--measures", str(clean),
    ]) == 0
    chaotic = tmp_path / "chaotic.json"
    assert main([
        "batch", str(model_file), "--no-cache", "--jobs", "2",
        "--chaos", "kill:toy@1", "--retries", "2",
        "--measures", str(chaotic),
    ]) == 0
    assert chaotic.read_bytes() == clean.read_bytes()


def test_batch_chaos_exhausted_quarantines_and_exits_3(model_file, tmp_path, capsys):
    code = main([
        "batch", str(model_file), "--no-cache",
        "--chaos", "kill:toy@1,2", "--retries", "1",
    ])
    assert code == 3
    assert "QUARANTINED" in capsys.readouterr().out


def test_batch_bad_chaos_spec_exits_2(model_file, capsys):
    assert main([
        "batch", str(model_file), "--no-cache", "--chaos", "nonsense",
    ]) == 2
    assert "bad --chaos spec" in capsys.readouterr().err


def test_batch_journal_then_resume_byte_identical(model_file, tmp_path):
    clean = tmp_path / "clean.json"
    assert main([
        "batch", str(model_file), "--experiments", "--no-cache",
        "--measures", str(clean),
    ]) == 0

    journal = tmp_path / "run.journal"
    assert main([
        "batch", str(model_file), "--experiments", "--no-cache",
        "--journal", str(journal),
    ]) == 0

    resumed = tmp_path / "resumed.json"
    assert main([
        "batch", "--resume", str(journal), "--no-cache",
        "--measures", str(resumed),
    ]) == 0
    assert resumed.read_bytes() == clean.read_bytes()


def test_batch_resume_rejects_extra_inputs(model_file, tmp_path, capsys):
    journal = tmp_path / "run.journal"
    assert main([
        "batch", str(model_file), "--no-cache", "--journal", str(journal),
    ]) == 0
    assert main([
        "batch", str(model_file), "--resume", str(journal), "--no-cache",
    ]) == 2
    assert "task list from the journal" in capsys.readouterr().err


def test_batch_resume_rejects_journal_flag(model_file, tmp_path, capsys):
    journal = tmp_path / "run.journal"
    assert main([
        "batch", str(model_file), "--no-cache", "--journal", str(journal),
    ]) == 0
    assert main([
        "batch", "--resume", str(journal), "--journal", str(journal),
        "--no-cache",
    ]) == 2
    assert "redundant" in capsys.readouterr().err


def test_batch_cache_max_bytes_keeps_cache_bounded(model_file, tmp_path):
    import os

    cache_dir = tmp_path / "cache"
    budget = 2048
    # Several distinct models so the cache accumulates entries.
    inputs = [str(model_file)]
    for i in range(4):
        path = tmp_path / f"model{i}.pepa"
        path.write_text(PEPA_SRC.replace("2.0", f"{i + 3}.0"))
        inputs.append(str(path))
    assert main([
        "batch", *inputs,
        "--cache-dir", str(cache_dir),
        "--cache-max-bytes", str(budget),
    ]) == 0
    total = sum(
        os.path.getsize(os.path.join(root, name))
        for root, _dirs, names in os.walk(cache_dir) for name in names
    )
    assert total <= budget
