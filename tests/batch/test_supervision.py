"""Supervised execution: retries, crash recovery, timeouts, quarantine.

The chaos battery for the batch layer — every recovery path the engine
promises is proven here under deterministic injected faults.  Pool
scenarios run with real SIGKILLed workers; inline scenarios use the
:class:`InjectedWorkerCrash` stand-in through the same supervisor.
"""

from __future__ import annotations

import pytest

from repro.batch import BatchTask, run_batch
from repro.batch.engine import RetryPolicy, execute_task
from repro.obs import EventStream, MetricsRegistry, use_events, use_metrics
from repro.resilience.faultinject import BatchFaultPlan

FAST = RetryPolicy(retries=2, backoff=0.0)

SRC = """
r = 2.0;
P = (work, r).Q;
Q = (rest, 1.0).P;
P
"""


def _call(task_id: str, target: str, **kwargs) -> BatchTask:
    return BatchTask(id=task_id, kind="call", payload={
        "target": f"tests.batch.chaos_helpers:{target}", "kwargs": kwargs,
    })


def _model(task_id: str) -> BatchTask:
    return BatchTask(id=task_id, kind="pepa", payload={"source": SRC})


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(task_timeout=0)


def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(retries=5, backoff=0.5, max_backoff=1.5)
    assert policy.backoff_before(1) == 0.0
    assert policy.backoff_before(2) == 0.5
    assert policy.backoff_before(3) == 1.0
    assert policy.backoff_before(4) == 1.5  # capped
    assert RetryPolicy(backoff=0.0).backoff_before(5) == 0.0


# ---------------------------------------------------------------------------
# execute_task's exception ladder (the satellite fix)
# ---------------------------------------------------------------------------
def test_memory_error_captured_with_truncated_context():
    result = execute_task(_call("oom", "raise_memory_error"))
    assert not result.ok
    assert result.error.startswith("MemoryError:")
    assert len(result.error) <= len("MemoryError: ") + 120
    assert result.error_context["truncated"] is True


def test_system_exit_captured_not_fatal():
    result = execute_task(_call("exiter", "raise_system_exit"))
    assert not result.ok
    assert result.error == "SystemExit: 42"
    assert result.error_context["exit_code"] == "42"


def test_keyboard_interrupt_reraised():
    with pytest.raises(KeyboardInterrupt):
        execute_task(_call("ctrl-c", "raise_keyboard_interrupt"))


def test_repro_error_context_carried_and_bounded():
    result = execute_task(_call("ctx", "raise_repro_error"))
    assert not result.ok
    assert result.error_context["stage"] == "test"
    assert result.error_context["model"] == "chaos"
    assert len(result.error_context["detail"]) <= 200  # truncated from 500


def test_plain_failure_has_empty_context():
    result = execute_task(BatchTask(id="x", kind="nonsense"))
    assert not result.ok and result.error_context == {}


# ---------------------------------------------------------------------------
# Inline supervision (jobs=1): simulated crashes, transient errors
# ---------------------------------------------------------------------------
def test_inline_transient_error_retried_to_success(tmp_path):
    report = run_batch(
        [_call("flaky", "fail_first_attempts",
               counter_dir=str(tmp_path / "count"), times=2)],
        retry=FAST,
    )
    assert report.ok
    assert report.results[0].attempts == 3
    assert report.retries == 2


def test_inline_kill_fault_retried_then_recovers():
    plan = BatchFaultPlan.parse(["kill:victim@1"])
    report = run_batch(
        [_model("victim"), _model("bystander")],
        retry=FAST, faults=plan,
    )
    assert report.ok
    victim, bystander = report.results
    assert victim.attempts == 2 and victim.measures["n_states"] == 2
    assert bystander.attempts == 1
    assert len(report.quarantined) == 0
    assert any(i["incident"] == "retry" and i["reason"] == "crash"
               for i in report.incidents)


def test_inline_persistent_kill_quarantines():
    plan = BatchFaultPlan.parse(["kill:victim@1,2,3"])
    report = run_batch(
        [_model("victim"), _model("bystander")],
        retry=FAST, faults=plan,
    )
    assert not report.ok
    victim = report.results[0]
    assert victim.quarantined
    assert victim.attempts == 3
    assert "WorkerCrash" in victim.error
    assert report.results[1].ok  # the bystander is untouched
    assert "QUARANTINED" in report.summary()
    assert any(i["incident"] == "quarantine" for i in report.incidents)


def test_retries_exhausted_on_persistent_error_not_quarantined(tmp_path):
    report = run_batch(
        [_call("always", "fail_first_attempts",
               counter_dir=str(tmp_path / "count"), times=99)],
        retry=FAST,
    )
    result = report.results[0]
    assert not result.ok
    assert result.attempts == 3
    assert not result.quarantined  # it *ran*; it just failed


def test_supervisor_emits_retry_events_and_metrics():
    plan = BatchFaultPlan.parse(["kill:victim@1"])
    events, metrics = EventStream(), MetricsRegistry()
    with use_events(events), use_metrics(metrics):
        run_batch([_model("victim")], retry=FAST, faults=plan)
    assert len(events.by_name("batch.retry")) == 1
    assert metrics.counter("batch.retries").value == 1


def test_zero_retries_quarantines_immediately():
    plan = BatchFaultPlan.parse(["kill:victim@1"])
    report = run_batch([_model("victim")],
                       retry=RetryPolicy(retries=0), faults=plan)
    assert report.results[0].quarantined
    assert report.results[0].attempts == 1


# ---------------------------------------------------------------------------
# Pool supervision (jobs>=2): real worker deaths, hangs, rebuilds
# ---------------------------------------------------------------------------
def test_pool_worker_kill_poisons_only_its_task():
    """A real SIGKILLed worker: the pool is rebuilt, the victim retried,
    every other task unaffected — the tentpole acceptance scenario."""
    plan = BatchFaultPlan.parse(["kill:victim@1"])
    report = run_batch(
        [_model("a"), _model("victim"), _model("b"), _model("c")],
        jobs=2, retry=FAST, faults=plan,
    )
    assert report.ok
    by_id = {r.task_id: r for r in report.results}
    assert by_id["victim"].attempts >= 2
    assert by_id["victim"].measures["n_states"] == 2
    assert [r.task_id for r in report.results] == ["a", "victim", "b", "c"]
    assert any(i["incident"] == "pool-rebuild" for i in report.incidents)


def test_pool_persistent_kill_quarantines_victim_only():
    plan = BatchFaultPlan.parse(["kill:victim@1,2,3"])
    report = run_batch(
        [_model("a"), _model("victim"), _model("b")],
        jobs=2, retry=FAST, faults=plan,
    )
    assert not report.ok
    by_id = {r.task_id: r for r in report.results}
    assert by_id["victim"].quarantined
    assert by_id["a"].ok and by_id["b"].ok


def test_pool_hung_task_times_out_and_recovers():
    """An injected hang trips the per-task timeout; the pool is rebuilt
    and the task succeeds on its (fault-free) second attempt."""
    plan = BatchFaultPlan.parse(["hang:sleeper@1:30"])
    report = run_batch(
        [_model("a"), _model("sleeper"), _model("b")],
        jobs=2, retry=RetryPolicy(retries=2, backoff=0.0, task_timeout=1.0),
        faults=plan,
    )
    assert report.ok
    by_id = {r.task_id: r for r in report.results}
    assert by_id["sleeper"].attempts == 2
    assert any(i.get("reason") == "timeout" for i in report.incidents)


def test_pool_persistent_hang_quarantines_with_timeout_error():
    plan = BatchFaultPlan.parse(["hang:sleeper@1,2:30"])
    report = run_batch(
        [_model("sleeper"), _model("a")],
        jobs=2, retry=RetryPolicy(retries=1, backoff=0.0, task_timeout=0.5),
        faults=plan,
    )
    by_id = {r.task_id: r for r in report.results}
    assert by_id["sleeper"].quarantined
    assert "TaskTimeout" in by_id["sleeper"].error
    assert by_id["a"].ok


def test_pool_kill_and_hang_together_only_affected_tasks_fail():
    """The acceptance criterion: one killed worker AND one hung task in
    the same run; only the two affected tasks burn retries, everything
    else completes, and with faults on *every* attempt both quarantine."""
    plan = BatchFaultPlan.parse(["kill:crasher@1,2", "hang:sleeper@1,2:30"])
    report = run_batch(
        [_model("a"), _model("crasher"), _model("sleeper"), _model("b")],
        jobs=2, retry=RetryPolicy(retries=1, backoff=0.0, task_timeout=1.0),
        faults=plan,
    )
    by_id = {r.task_id: r for r in report.results}
    assert by_id["a"].ok and by_id["b"].ok
    assert by_id["crasher"].quarantined
    assert by_id["sleeper"].quarantined
    assert len(report.failures) == 2


def test_pool_measures_identical_to_serial_despite_recovered_crash(tmp_path):
    """A retried-then-recovered task is a healthy task: the measures
    document stays byte-identical to an undisturbed serial run."""
    tasks = [_model("m1"), _model("m2"), _model("m3")]
    clean = run_batch(tasks, jobs=1).measures_json()
    plan = BatchFaultPlan.parse(["kill:m2@1"])
    chaotic = run_batch(tasks, jobs=2, retry=FAST, faults=plan).measures_json()
    assert chaotic == clean
