"""Checkpoint/resume through the engine: kill, resume, compare.

The determinism contract extended across process death: a run that is
killed partway and resumed from its journal must produce measures JSON
byte-identical to a run that was never interrupted.
"""

from __future__ import annotations

import pytest

from repro.batch import BatchEngine, BatchTask
from repro.batch.engine import RetryPolicy
from repro.batch.journal import RunJournal
from repro.resilience.faultinject import BatchFaultPlan

FAST = RetryPolicy(retries=2, backoff=0.0)

SRC_TEMPLATE = """
r = {rate};
P = (work, r).Q;
Q = (rest, 1.0).P;
P
"""


def _tasks(n=4):
    return [
        BatchTask(id=f"m{i}", kind="pepa",
                  payload={"source": SRC_TEMPLATE.format(rate=float(i + 1))})
        for i in range(n)
    ]


def test_journalled_run_records_every_result(tmp_path):
    journal_path = tmp_path / "run.journal"
    engine = BatchEngine(jobs=1, journal=journal_path, retry=FAST)
    report = engine.run(_tasks())
    assert report.ok
    assert report.journal_path == str(journal_path)
    loaded = RunJournal.load(journal_path)
    assert set(loaded.results) == {"m0", "m1", "m2", "m3"}
    assert all(r.ok for r in loaded.results.values())


def test_resume_completed_run_replays_without_rerunning(tmp_path, monkeypatch):
    journal_path = tmp_path / "run.journal"
    engine = BatchEngine(jobs=1, journal=journal_path, retry=FAST)
    first = engine.run(_tasks())

    def boom(*args, **kwargs):  # any re-execution is a contract violation
        raise AssertionError("resume of a complete run must not execute tasks")

    monkeypatch.setattr("repro.batch.engine.execute_task", boom)
    resumed = BatchEngine(jobs=1, retry=FAST).resume(journal_path)
    assert resumed.measures_json() == first.measures_json()


def test_resume_runs_only_the_missing_tail(tmp_path):
    tasks = _tasks()
    uninterrupted = BatchEngine(jobs=1, retry=FAST).run(tasks).measures_json()

    # Simulate a crash after two tasks: journal the first two results only.
    journal_path = tmp_path / "run.journal"
    journal = RunJournal.create(journal_path, tasks)
    partial = BatchEngine(jobs=1, retry=FAST).run(tasks[:2])
    for result in partial.results:
        journal.append_result(result)

    resumed = BatchEngine(jobs=1, retry=FAST).resume(journal_path)
    assert resumed.ok
    assert resumed.measures_json() == uninterrupted
    # Only the missing tail actually ran: replayed results keep their
    # recorded identity (same attempts, same durations).
    assert [r.task_id for r in resumed.results] == [t.id for t in tasks]


def test_kill_resume_compare_determinism(tmp_path):
    """The acceptance criterion end-to-end: a chaotic `--jobs 2` run with
    an injected worker kill and a hung task, quarantining the victims,
    then a clean resume — byte-identical to an uninterrupted serial run."""
    tasks = _tasks(5)
    clean = BatchEngine(jobs=1, retry=FAST).run(tasks).measures_json()

    journal_path = tmp_path / "run.journal"
    plan = BatchFaultPlan.parse(["kill:m1@1,2", "hang:m3@1,2:30"])
    chaotic = BatchEngine(
        jobs=2, journal=journal_path, faults=plan,
        retry=RetryPolicy(retries=1, backoff=0.0, task_timeout=1.0),
    ).run(tasks)
    assert not chaotic.ok
    assert {r.task_id for r in chaotic.quarantined} == {"m1", "m3"}
    assert chaotic.measures_json() != clean  # the wreckage is visible

    # Resume without faults: quarantined tasks get their fresh chance,
    # completed tasks replay, and the report converges on the clean run.
    resumed = BatchEngine(jobs=2, retry=FAST).resume(journal_path)
    assert resumed.ok
    assert resumed.measures_json() == clean


def test_resume_with_matching_tasks_accepts(tmp_path):
    tasks = _tasks()
    journal_path = tmp_path / "run.journal"
    BatchEngine(jobs=1, journal=journal_path, retry=FAST).run(tasks)
    resumed = BatchEngine(jobs=1, retry=FAST).resume(journal_path, tasks)
    assert resumed.ok


def test_resume_with_mismatched_tasks_rejected(tmp_path):
    journal_path = tmp_path / "run.journal"
    BatchEngine(jobs=1, journal=journal_path, retry=FAST).run(_tasks())
    other = _tasks()[:2]
    with pytest.raises(ValueError, match="fingerprint"):
        BatchEngine(jobs=1, retry=FAST).resume(journal_path, other)


def test_resumed_incidents_accumulate_across_runs(tmp_path):
    """The journal keeps the full failure history of the batch: incidents
    from the original run and the resume both survive in one file."""
    tasks = _tasks(3)
    journal_path = tmp_path / "run.journal"
    plan = BatchFaultPlan.parse(["kill:m1@1,2,3"])
    first = BatchEngine(jobs=1, journal=journal_path, faults=plan,
                        retry=FAST).run(tasks)
    assert first.results[1].quarantined
    n_first = len(first.incidents)
    assert n_first > 0

    plan2 = BatchFaultPlan.parse(["kill:m1@1"])  # crash once more, recover
    resumed = BatchEngine(jobs=1, faults=plan2, retry=FAST).resume(journal_path)
    assert resumed.ok
    assert len(resumed.incidents) == n_first + 1
    assert len(RunJournal.load(journal_path).incidents) == n_first + 1
