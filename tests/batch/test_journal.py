"""The ``repro-journal/1`` checkpoint file: round-trips, torn lines,
incident records, replay semantics."""

from __future__ import annotations

import json

import pytest

from repro.batch.engine import BatchResult, BatchTask
from repro.batch.journal import (
    JOURNAL_SCHEMA,
    RunJournal,
    result_from_dict,
    result_to_dict,
    task_from_dict,
    task_to_dict,
    tasks_fingerprint,
)
from repro.resilience.budget import BudgetSpec


def _tasks():
    return [
        BatchTask(id="a", kind="pepa", payload={"source": "P = (w, 1.0).P; P"}),
        BatchTask(id="b", kind="experiment", payload={"experiment": "E1"},
                  budget=BudgetSpec(deadline_seconds=5.0, max_states=100)),
    ]


def _result(task_id="a", **overrides):
    fields = dict(
        task_id=task_id, kind="pepa", ok=True,
        measures={"n_states": 2}, duration_s=0.25, attempts=2,
        events=[{"name": "x", "fields": {}}],
        cache={"hits": 1, "misses": 0},
        error_context={"stage": "solve"},
    )
    fields.update(overrides)
    return BatchResult(**fields)


# ---------------------------------------------------------------------------
# Serialisation round-trips
# ---------------------------------------------------------------------------
def test_task_round_trip_with_budget():
    for task in _tasks():
        again = task_from_dict(json.loads(json.dumps(task_to_dict(task))))
        assert again == task  # frozen dataclasses compare by value


def test_result_round_trip():
    result = _result(ok=False, error="Boom: bad", quarantined=True)
    again = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
    assert again == result


def test_fingerprint_sensitive_to_order_and_budget():
    tasks = _tasks()
    assert tasks_fingerprint(tasks) == tasks_fingerprint(_tasks())
    assert tasks_fingerprint(tasks) != tasks_fingerprint(list(reversed(tasks)))
    rebudgeted = [tasks[0], BatchTask(id="b", kind="experiment",
                                      payload={"experiment": "E1"})]
    assert tasks_fingerprint(tasks) != tasks_fingerprint(rebudgeted)


# ---------------------------------------------------------------------------
# The journal file
# ---------------------------------------------------------------------------
def test_create_append_load_round_trip(tmp_path):
    path = tmp_path / "run.journal"
    journal = RunJournal.create(path, _tasks())
    journal.append_result(_result("a"))
    journal.append_incident({"incident": "retry", "task": "b", "attempt": 1,
                             "reason": "crash"})
    journal.append_result(_result("b", kind="experiment"))

    loaded = RunJournal.load(path)
    assert loaded.fingerprint == journal.fingerprint
    assert [t.id for t in loaded.tasks] == ["a", "b"]
    assert loaded.tasks[1].budget == BudgetSpec(deadline_seconds=5.0, max_states=100)
    assert set(loaded.results) == {"a", "b"}
    assert loaded.results["a"] == _result("a")
    assert loaded.incidents == [{"incident": "retry", "task": "b",
                                 "attempt": 1, "reason": "crash"}]


def test_torn_trailing_line_tolerated(tmp_path):
    """The line being written at the moment of death must not make the
    journal unreadable — that crash is the very thing we checkpoint for."""
    path = tmp_path / "run.journal"
    journal = RunJournal.create(path, _tasks())
    journal.append_result(_result("a"))
    with open(path, "a") as fh:
        fh.write('{"record": "result", "result": {"task_id": "b", "ki')  # torn

    loaded = RunJournal.load(path)
    assert set(loaded.results) == {"a"}
    assert [t.id for t in loaded.pending()] == ["b"]


def test_corrupt_interior_line_raises(tmp_path):
    path = tmp_path / "run.journal"
    journal = RunJournal.create(path, _tasks())
    with open(path, "a") as fh:
        fh.write("garbage not json\n")
    journal.append_result(_result("a"))
    with pytest.raises(ValueError, match="corrupt"):
        RunJournal.load(path)


def test_missing_or_foreign_header_rejected(tmp_path):
    empty = tmp_path / "empty.journal"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        RunJournal.load(empty)
    foreign = tmp_path / "foreign.journal"
    foreign.write_text(json.dumps({"schema": "something-else/1"}) + "\n")
    with pytest.raises(ValueError, match=JOURNAL_SCHEMA):
        RunJournal.load(foreign)


def test_last_record_wins_for_duplicate_task(tmp_path):
    path = tmp_path / "run.journal"
    journal = RunJournal.create(path, _tasks())
    journal.append_result(_result("a", measures={"n_states": 1}))
    journal.append_result(_result("a", measures={"n_states": 2}))
    loaded = RunJournal.load(path)
    assert loaded.results["a"].measures == {"n_states": 2}


def test_unknown_record_kinds_skipped_for_forward_compat(tmp_path):
    path = tmp_path / "run.journal"
    RunJournal.create(path, _tasks())
    with open(path, "a") as fh:
        fh.write(json.dumps({"record": "telemetry", "v": 1}) + "\n")
        fh.write(json.dumps({"record": "result",
                             "result": result_to_dict(_result("a"))}) + "\n")
    loaded = RunJournal.load(path)
    assert set(loaded.results) == {"a"}


def test_quarantined_results_not_replayable(tmp_path):
    path = tmp_path / "run.journal"
    journal = RunJournal.create(path, _tasks())
    journal.append_result(_result("a"))
    journal.append_result(_result("b", kind="experiment", ok=False,
                                  error="WorkerCrash: ...", quarantined=True))
    loaded = RunJournal.load(path)
    assert set(loaded.results) == {"a", "b"}
    assert set(loaded.replayable()) == {"a"}  # b gets a fresh chance
    assert [t.id for t in loaded.pending()] == ["b"]


def test_failed_but_not_quarantined_results_are_replayable(tmp_path):
    """A deterministic failure is a *result*; resume must not re-run it."""
    path = tmp_path / "run.journal"
    journal = RunJournal.create(path, _tasks())
    journal.append_result(_result("a", ok=False, error="ValueError: nope"))
    loaded = RunJournal.load(path)
    assert set(loaded.replayable()) == {"a"}
    assert [t.id for t in loaded.pending()] == ["b"]


def test_profile_round_trips_through_the_journal():
    profile = {"schema": "repro-profile/1", "interval_s": 0.001,
               "sample_count": 2, "samples": {"a;b": 2},
               "timeline": [[0.0, "a;b"]], "timeline_dropped": 0}
    restored = result_from_dict(result_to_dict(_result(profile=profile)))
    assert restored.profile == profile


def test_pre_profile_journal_lines_load_with_empty_profile():
    document = result_to_dict(_result())
    del document["profile"]  # a checkpoint written before the field existed
    assert result_from_dict(document).profile == {}
