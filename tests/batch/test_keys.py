"""Derivation keys: the cache's correctness rests on these properties."""

from __future__ import annotations

import pytest

from repro.core.keys import DerivationKey, stable_digest


def test_digest_is_stable_across_processes_and_param_order():
    a = DerivationKey.of("pepa", "P = (a, 1.0).P;\nP", params={"x": 1, "y": 2})
    b = DerivationKey.of("pepa", "P = (a, 1.0).P;\nP", params={"y": 2, "x": 1})
    assert a == b
    assert a.digest == b.digest
    assert len(a.digest) == 64
    assert all(c in "0123456789abcdef" for c in a.digest)


def test_any_input_change_changes_the_digest():
    base = DerivationKey.of("pepa", "src", params={"k": 1})
    assert base.digest != DerivationKey.of("pepa", "src2", params={"k": 1}).digest
    assert base.digest != DerivationKey.of("pepanet", "src", params={"k": 1}).digest
    assert base.digest != DerivationKey.of("pepa", "src", params={"k": 2}).digest
    assert base.digest != base.child("ctmc").digest


def test_child_keeps_identity_but_changes_variant():
    key = DerivationKey.of("pepa", "src")
    child = key.child("ctmc")
    assert child.formalism == key.formalism
    assert child.source == key.source
    assert child.variant == "ctmc"


def test_describe_names_formalism_variant_and_prefix():
    key = DerivationKey.of("pepa", "src")
    description = key.describe()
    assert description.startswith("pepa/statespace/")
    assert description.endswith(key.digest[:12])


def test_stable_digest_canonicalises_json():
    assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})
    assert stable_digest({"a": 1}) != stable_digest({"a": 2})


def test_keys_are_hashable_and_frozen():
    key = DerivationKey.of("pepa", "src")
    assert key in {key}
    with pytest.raises(AttributeError):
        key.source = "other"
