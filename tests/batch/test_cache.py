"""The content-addressed derivation cache: accounting, invalidation,
corruption recovery, and the ambient installation protocol."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.batch.cache import DerivationCache, get_cache, set_cache, use_cache
from repro.core.keys import DerivationKey
from repro.obs import EventStream, MetricsRegistry, use_events, use_metrics
from repro.pepa.measures import analyse
from repro.pepa.parser import parse_model
from repro.pepa.statespace import derive

SRC = """
r = 2.0;
P = (work, r).Q;
Q = (rest, 1.0).P;
P
"""

SRC_OTHER_RATE = SRC.replace("r = 2.0", "r = 3.0")


@pytest.fixture
def cache(tmp_path):
    return DerivationCache(tmp_path / "cache")


def test_fetch_miss_then_store_then_hit(cache):
    key = DerivationKey.of("pepa", "some source")
    assert cache.fetch(key) is None
    cache.store(key, {"schema": "x", "value": 42})
    assert cache.fetch(key) == {"schema": "x", "value": 42}
    assert cache.stats.as_dict() == {"hits": 1, "misses": 1, "stores": 1, "corrupt": 0}
    assert key in cache
    assert len(cache) == 1


def test_derive_miss_populates_and_second_derive_hits(cache):
    model = parse_model(SRC)
    with use_cache(cache):
        first = derive(model)
        second = derive(parse_model(SRC))
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert [str(s) for s in second.states] == [str(s) for s in first.states]
    assert len(second.arcs) == len(first.arcs)


def test_rate_change_invalidates(cache):
    with use_cache(cache):
        derive(parse_model(SRC))
        derive(parse_model(SRC_OTHER_RATE))
    # Different rate value => different source => different key: no hit.
    assert cache.stats.hits == 0
    assert cache.stats.misses == 2
    assert len(cache) == 2


def test_cached_analysis_is_numerically_identical(cache, tmp_path):
    cold = analyse(parse_model(SRC))
    with use_cache(cache):
        analyse(parse_model(SRC))          # populate
        warm = analyse(parse_model(SRC))   # statespace + ctmc both from cache
    assert cache.stats.hits >= 2
    assert warm.chain.labels == cold.chain.labels
    np.testing.assert_allclose(warm.pi, cold.pi, rtol=0, atol=0)
    assert warm.all_throughputs() == cold.all_throughputs()


def test_truncated_entry_recovers_and_reports(cache):
    model = parse_model(SRC)
    with use_cache(cache):
        space = derive(model)
    key = space.cache_key
    path = cache.path_of(key)
    path.write_bytes(path.read_bytes()[:10])  # truncate mid-pickle

    events, metrics = EventStream(), MetricsRegistry()
    with use_cache(cache), use_events(events), use_metrics(metrics):
        recovered = derive(parse_model(SRC))
    assert recovered.size == space.size
    assert cache.stats.corrupt == 1
    assert metrics.counter("cache.corrupt").value == 1
    corrupt_events = events.by_name("cache.corrupt")
    assert len(corrupt_events) == 1
    assert corrupt_events[0].fields["key"] == key.describe()
    # The carcass was removed and the re-derivation re-published it.
    assert cache.fetch(key) is not None


def test_foreign_bytes_count_as_corrupt(cache):
    key = DerivationKey.of("pepa", "src")
    path = cache.path_of(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"this is not a pickle")
    assert cache.fetch(key) is None
    assert cache.stats.corrupt == 1
    assert not path.exists()


def test_non_dict_entry_counts_as_corrupt(cache):
    key = DerivationKey.of("pepa", "src")
    path = cache.path_of(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps([1, 2, 3]))
    assert cache.fetch(key) is None
    assert cache.stats.corrupt == 1


def test_no_cache_installed_means_no_files(tmp_path):
    assert get_cache() is None
    space = derive(parse_model(SRC))
    assert space.size == 2
    assert not list(tmp_path.rglob("*.pkl"))


def test_use_cache_restores_previous(tmp_path):
    outer = DerivationCache(tmp_path / "outer")
    try:
        assert set_cache(outer) is None
        with use_cache(None):
            assert get_cache() is None
        assert get_cache() is outer
    finally:
        set_cache(None)


def test_oversized_cached_space_is_rejected(cache):
    """A hit larger than the caller's max_states must not bypass the cap."""
    from repro.exceptions import StateSpaceError

    with use_cache(cache):
        derive(parse_model(SRC))  # 2 states, now cached
        with pytest.raises(StateSpaceError):
            derive(parse_model(SRC), max_states=1)


def test_clear_removes_entries(cache):
    key = DerivationKey.of("pepa", "src")
    cache.store(key, {"schema": "x"})
    assert cache.clear() == 1
    assert len(cache) == 0
    assert cache.fetch(key) is None
