"""The content-addressed derivation cache: accounting, invalidation,
corruption recovery, and the ambient installation protocol."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.batch.cache import DerivationCache, get_cache, set_cache, use_cache
from repro.core.keys import DerivationKey
from repro.obs import EventStream, MetricsRegistry, use_events, use_metrics
from repro.pepa.measures import analyse
from repro.pepa.parser import parse_model
from repro.pepa.statespace import derive

SRC = """
r = 2.0;
P = (work, r).Q;
Q = (rest, 1.0).P;
P
"""

SRC_OTHER_RATE = SRC.replace("r = 2.0", "r = 3.0")


@pytest.fixture
def cache(tmp_path):
    return DerivationCache(tmp_path / "cache")


def test_fetch_miss_then_store_then_hit(cache):
    key = DerivationKey.of("pepa", "some source")
    assert cache.fetch(key) is None
    cache.store(key, {"schema": "x", "value": 42})
    assert cache.fetch(key) == {"schema": "x", "value": 42}
    assert cache.stats.as_dict() == {
        "hits": 1, "misses": 1, "stores": 1, "corrupt": 0,
        "evictions": 0, "store_errors": 0,
    }
    assert key in cache
    assert len(cache) == 1


def test_derive_miss_populates_and_second_derive_hits(cache):
    model = parse_model(SRC)
    with use_cache(cache):
        first = derive(model)
        second = derive(parse_model(SRC))
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert [str(s) for s in second.states] == [str(s) for s in first.states]
    assert len(second.arcs) == len(first.arcs)


def test_rate_change_invalidates(cache):
    with use_cache(cache):
        derive(parse_model(SRC))
        derive(parse_model(SRC_OTHER_RATE))
    # Different rate value => different source => different key: no hit.
    assert cache.stats.hits == 0
    assert cache.stats.misses == 2
    assert len(cache) == 2


def test_cached_analysis_is_numerically_identical(cache, tmp_path):
    cold = analyse(parse_model(SRC))
    with use_cache(cache):
        analyse(parse_model(SRC))          # populate
        warm = analyse(parse_model(SRC))   # statespace + ctmc both from cache
    assert cache.stats.hits >= 2
    assert warm.chain.labels == cold.chain.labels
    np.testing.assert_allclose(warm.pi, cold.pi, rtol=0, atol=0)
    assert warm.all_throughputs() == cold.all_throughputs()


def test_truncated_entry_recovers_and_reports(cache):
    model = parse_model(SRC)
    with use_cache(cache):
        space = derive(model)
    key = space.cache_key
    path = cache.path_of(key)
    path.write_bytes(path.read_bytes()[:10])  # truncate mid-pickle

    events, metrics = EventStream(), MetricsRegistry()
    with use_cache(cache), use_events(events), use_metrics(metrics):
        recovered = derive(parse_model(SRC))
    assert recovered.size == space.size
    assert cache.stats.corrupt == 1
    assert metrics.counter("cache.corrupt").value == 1
    corrupt_events = events.by_name("cache.corrupt")
    assert len(corrupt_events) == 1
    assert corrupt_events[0].fields["key"] == key.describe()
    # The carcass was removed and the re-derivation re-published it.
    assert cache.fetch(key) is not None


def test_foreign_bytes_count_as_corrupt(cache):
    key = DerivationKey.of("pepa", "src")
    path = cache.path_of(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"this is not a pickle")
    assert cache.fetch(key) is None
    assert cache.stats.corrupt == 1
    assert not path.exists()


def test_non_dict_entry_counts_as_corrupt(cache):
    key = DerivationKey.of("pepa", "src")
    path = cache.path_of(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps([1, 2, 3]))
    assert cache.fetch(key) is None
    assert cache.stats.corrupt == 1


def test_no_cache_installed_means_no_files(tmp_path):
    assert get_cache() is None
    space = derive(parse_model(SRC))
    assert space.size == 2
    assert not list(tmp_path.rglob("*.pkl"))


def test_use_cache_restores_previous(tmp_path):
    outer = DerivationCache(tmp_path / "outer")
    try:
        assert set_cache(outer) is None
        with use_cache(None):
            assert get_cache() is None
        assert get_cache() is outer
    finally:
        set_cache(None)


def test_oversized_cached_space_is_rejected(cache):
    """A hit larger than the caller's max_states must not bypass the cap."""
    from repro.exceptions import StateSpaceError

    with use_cache(cache):
        derive(parse_model(SRC))  # 2 states, now cached
        with pytest.raises(StateSpaceError):
            derive(parse_model(SRC), max_states=1)


def test_clear_removes_entries(cache):
    key = DerivationKey.of("pepa", "src")
    cache.store(key, {"schema": "x"})
    assert cache.clear() == 1
    assert len(cache) == 0
    assert cache.fetch(key) is None


# ---------------------------------------------------------------------------
# Atomic, bytes-first publication
# ---------------------------------------------------------------------------
def test_unpicklable_payload_leaves_no_files_behind(cache):
    """Serialisation happens before any file exists: a payload that
    cannot pickle must raise without littering temp files (regression —
    the v1 store created the temp file first)."""
    key = DerivationKey.of("pepa", "src")
    with pytest.raises(Exception):
        cache.store(key, {"bad": lambda: None})  # lambdas don't pickle
    leftovers = [p for p in cache.root.rglob("*") if p.is_file()]
    assert leftovers == []
    assert cache.stats.stores == 0


def test_store_failure_degrades_not_raises(cache, monkeypatch):
    """Filesystem trouble (ENOSPC et al.) loses the cache entry, never
    the run: store returns None and counts a store_error."""
    def full_disk(*args, **kwargs):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr("repro.batch.cache.tempfile.mkstemp", full_disk)
    key = DerivationKey.of("pepa", "src")
    events = EventStream()
    with use_events(events):
        assert cache.store(key, {"schema": "x"}) is None
    assert cache.stats.store_errors == 1
    assert cache.stats.stores == 0
    assert len(events.by_name("cache.store_error")) == 1
    assert key not in cache


# ---------------------------------------------------------------------------
# Checksummed entries and the verify() sweep
# ---------------------------------------------------------------------------
def test_bitflip_detected_on_fetch(cache):
    key = DerivationKey.of("pepa", "src")
    path = cache.store(key, {"schema": "x", "value": 1})
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF  # flip one payload bit; the header is untouched
    path.write_bytes(bytes(blob))
    assert cache.fetch(key) is None
    assert cache.stats.corrupt == 1
    assert not path.exists()  # purged


def test_verify_purges_corrupt_keeps_good(cache):
    good = DerivationKey.of("pepa", "good")
    bad = DerivationKey.of("pepa", "bad")
    cache.store(good, {"schema": "x", "value": "good"})
    bad_path = cache.store(bad, {"schema": "x", "value": "bad"})
    blob = bytearray(bad_path.read_bytes())
    blob[len(blob) // 2] ^= 0x01
    bad_path.write_bytes(bytes(blob))

    report = cache.verify()
    assert report == {"checked": 2, "ok": 1, "corrupt": 1, "purged": 1}
    assert good in cache and bad not in cache
    assert cache.fetch(good) == {"schema": "x", "value": "good"}


def test_verify_clean_cache_reports_all_ok(cache):
    for i in range(3):
        cache.store(DerivationKey.of("pepa", f"src{i}"), {"schema": "x", "i": i})
    assert cache.verify() == {"checked": 3, "ok": 3, "corrupt": 0, "purged": 0}
    assert cache.stats.corrupt == 0


def test_legacy_headerless_entry_reads_as_corrupt(cache):
    """A raw-pickle (pre-checksum) entry self-heals: corrupt, purged,
    re-derived."""
    key = DerivationKey.of("pepa", "src")
    path = cache.path_of(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps({"schema": "x", "value": 1}))
    assert cache.fetch(key) is None
    assert cache.stats.corrupt == 1


# ---------------------------------------------------------------------------
# LRU size-budgeted eviction
# ---------------------------------------------------------------------------
def _sized_payload(tag: str, approx_bytes: int) -> dict:
    return {"schema": "x", "tag": tag, "blob": "y" * approx_bytes}


def test_eviction_keeps_total_under_budget(tmp_path):
    cache = DerivationCache(tmp_path / "cache", max_bytes=4096)
    for i in range(8):
        cache.store(DerivationKey.of("pepa", f"src{i}"), _sized_payload(str(i), 900))
    assert cache.total_bytes() <= 4096
    assert cache.stats.evictions > 0
    assert len(cache) < 8


def test_eviction_is_least_recently_used(tmp_path):
    import os
    import time as _time

    cache = DerivationCache(tmp_path / "cache", max_bytes=3000)
    keys = [DerivationKey.of("pepa", f"src{i}") for i in range(3)]
    paths = [cache.store(k, _sized_payload(str(i), 800))
             for i, k in enumerate(keys)]
    # Age the entries explicitly (mtime granularity is filesystem-bound),
    # then *touch* entry 0 via a hit so it becomes the most recent.
    now = _time.time()
    for i, path in enumerate(paths):
        os.utime(path, (now - 100 + i, now - 100 + i))
    assert cache.fetch(keys[0]) is not None
    # A fourth store pushes past 3000 bytes: entry 1 (oldest untouched)
    # must be the casualty, never the just-hit entry 0.
    cache.store(DerivationKey.of("pepa", "src3"), _sized_payload("3", 800))
    assert keys[0] in cache
    assert keys[1] not in cache


def test_eviction_emits_metrics_and_events(tmp_path):
    events, metrics = EventStream(), MetricsRegistry()
    cache = DerivationCache(tmp_path / "cache", max_bytes=2000)
    with use_events(events), use_metrics(metrics):
        for i in range(4):
            cache.store(DerivationKey.of("pepa", f"src{i}"),
                        _sized_payload(str(i), 900))
    assert metrics.counter("cache.evictions").value == cache.stats.evictions > 0
    assert len(events.by_name("cache.evict")) == cache.stats.evictions
    assert metrics.gauge("cache.bytes").value <= 2000


def test_unbounded_cache_never_evicts(cache):
    for i in range(6):
        cache.store(DerivationKey.of("pepa", f"src{i}"), _sized_payload(str(i), 2000))
    assert cache.stats.evictions == 0
    assert len(cache) == 6


def test_hit_rate_gauge_tracks_ratio(cache):
    metrics = MetricsRegistry()
    key = DerivationKey.of("pepa", "src")
    with use_metrics(metrics):
        cache.fetch(key)                   # miss
        cache.store(key, {"schema": "x"})
        cache.fetch(key)                   # hit
        cache.fetch(key)                   # hit
    assert metrics.gauge("cache.hit_rate").value == pytest.approx(2 / 3)


class TestStaleSchemaEviction:
    """A cached generator written under an older payload schema must be
    evicted and rebuilt — never silently shadowed (the pre-PR behaviour
    swallowed the decode error and left the stale entry in place)."""

    def _poison(self, cache, child):
        cache.store(child, {"schema": "repro-ctmc/0", "bogus": True})

    def test_stale_ctmc_payload_is_evicted_and_rebuilt(self, cache):
        model = parse_model(SRC)
        with use_cache(cache):
            analyse(model)                      # populate statespace + ctmc
            space = derive(parse_model(SRC))    # cache hit, carries the key
        child = space.cache_key.child("ctmc")
        self._poison(cache, child)

        events, metrics = EventStream(), MetricsRegistry()
        with use_cache(cache), use_events(events), use_metrics(metrics):
            warm = analyse(parse_model(SRC))
        assert warm.n_states == space.size
        stale = events.by_name("cache.stale_schema")
        assert len(stale) == 1
        assert stale[0].fields["key"] == child.describe()
        assert stale[0].fields["schema"] == "repro-ctmc/0"
        assert metrics.counter("cache.stale_schema").value == 1
        # the slot was re-published under the current schema
        refreshed = cache.fetch(child)
        assert refreshed is not None and refreshed["schema"] != "repro-ctmc/0"

    def test_stale_entry_is_unlinked_even_without_collectors(self, cache):
        model = parse_model(SRC)
        with use_cache(cache):
            analyse(model)
            space = derive(parse_model(SRC))
        child = space.cache_key.child("ctmc")
        self._poison(cache, child)
        with use_cache(cache):
            analyse(parse_model(SRC))
        refreshed = cache.fetch(child)
        assert refreshed is not None and refreshed["schema"] != "repro-ctmc/0"
