"""Importable ``call``-kind targets for the batch chaos battery.

Batch workers resolve ``call`` tasks by importing ``module:function``,
so the misbehaving callables the supervision tests need must live in a
real module (this one — importable as ``tests.batch.chaos_helpers``
from the repo root in every worker), not in closures.  Cross-attempt
state (``fail_first_attempts``) goes through marker files because each
attempt may run in a different process.
"""

from __future__ import annotations

import os
import time

from repro.exceptions import ReproError


def ok_task(value: int = 1) -> dict:
    return {"value": value}


def fail_first_attempts(counter_dir: str, times: int, value: int = 7) -> dict:
    """Fail the first ``times`` invocations, then succeed.

    Counts invocations via marker files in ``counter_dir`` so the count
    survives process boundaries — exactly what a retried pool task is.
    """
    os.makedirs(counter_dir, exist_ok=True)
    so_far = len(os.listdir(counter_dir))
    with open(os.path.join(counter_dir, f"call-{so_far}.{os.getpid()}"), "w"):
        pass
    if so_far < times:
        raise RuntimeError(f"transient failure {so_far + 1} of {times}")
    return {"value": value, "failed_first": times}


def raise_repro_error() -> dict:
    raise ReproError("contextual failure").with_context(
        stage="test", model="chaos", detail="x" * 500,
    )


def raise_memory_error() -> dict:
    raise MemoryError("allocation of " + "many " * 200 + "bytes failed")


def raise_system_exit() -> dict:
    raise SystemExit(42)


def raise_keyboard_interrupt() -> dict:
    raise KeyboardInterrupt()


def sleep_then_return(seconds: float, value: int = 3) -> dict:
    time.sleep(seconds)
    return {"value": value}
