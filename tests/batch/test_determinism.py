"""The batch contract: parallelism changes wall-clock, never content.

A three-diagram batch run at ``--jobs 1``, ``2`` and ``4`` must produce
byte-identical measures documents and identical merged metrics totals —
the property the CI batch smoke step also pins end-to-end.
"""

from __future__ import annotations

import pytest

from repro.batch import BatchTask, run_batch

PEPA_SRC = """
r = 2.0;
P = (work, r).Q;
Q = (rest, 1.0).P;
P
"""

def _three_diagram_tasks():
    return [
        BatchTask(id="pepa", kind="pepa", payload={"source": PEPA_SRC}),
        BatchTask(id="e2", kind="experiment", payload={"experiment": "E2"}),
        BatchTask(id="e5", kind="experiment", payload={"experiment": "E5"}),
    ]


@pytest.fixture(scope="module")
def reports(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("det-cache")
    return {
        jobs: run_batch(_three_diagram_tasks(), jobs=jobs, cache_dir=cache_dir)
        for jobs in (1, 2, 4)
    }


def test_all_jobs_counts_succeed(reports):
    for jobs, report in reports.items():
        assert report.ok, f"jobs={jobs}: {report.summary()}"


def test_measures_documents_are_byte_identical(reports):
    serial = reports[1].measures_json()
    assert reports[2].measures_json() == serial
    assert reports[4].measures_json() == serial


def test_merged_metrics_totals_are_identical(reports):
    """Solver metrics totals must match across schedules.

    The first run populates the cache (exploration counters tick); the
    later runs hit it (no exploration).  So compare jobs=2 against
    jobs=4 — both fully cached — and check the solver-side counters,
    which run on hits and misses alike, against the serial run too.
    """
    warm_a = reports[2].merged_metrics()["metrics"]
    warm_b = reports[4].merged_metrics()["metrics"]
    assert warm_a == warm_b

    serial = reports[1].merged_metrics()["metrics"]
    for name, metric in serial.items():
        if name.startswith("cache.") or name in ("states_explored", "transitions"):
            continue
        assert warm_a.get(name) == metric, f"metric {name} diverged"


def test_per_task_results_align(reports):
    for jobs in (2, 4):
        for serial_result, parallel_result in zip(
            reports[1].results, reports[jobs].results
        ):
            assert serial_result.task_id == parallel_result.task_id
            assert serial_result.measures == parallel_result.measures
            assert serial_result.ok == parallel_result.ok
