"""The batch engine: execution paths, failure capture, merged views."""

from __future__ import annotations

import pytest

from repro.batch import BatchEngine, BatchTask, run_batch
from repro.resilience.budget import BudgetSpec

SRC = """
r = 2.0;
P = (work, r).Q;
Q = (rest, 1.0).P;
P
"""

BROKEN_SRC = "this is not PEPA at all ;;;"


def _tasks():
    return [
        BatchTask(id="model", kind="pepa", payload={"source": SRC}),
        BatchTask(id="e1", kind="experiment", payload={"experiment": "E1"}),
    ]


def test_inline_run_produces_measures_and_observability(tmp_path):
    report = run_batch(_tasks(), jobs=1, cache_dir=tmp_path / "cache")
    assert report.ok
    assert [r.task_id for r in report.results] == ["model", "e1"]
    model_result = report.results[0]
    assert model_result.measures["n_states"] == 2
    assert "work" in model_result.measures["throughputs"]
    # Each task carries its own trace/metrics/events snapshots.
    assert model_result.trace["schema"] == "repro-trace/1"
    assert model_result.trace["traces"]
    assert model_result.metrics["metrics"]
    # Cache traffic was recorded per task and totalled.
    totals = report.cache_totals()
    assert totals["misses"] > 0 and totals["stores"] > 0


def test_failed_task_degrades_itself_only():
    report = run_batch([
        BatchTask(id="bad", kind="pepa", payload={"source": BROKEN_SRC}),
        BatchTask(id="good", kind="pepa", payload={"source": SRC}),
    ])
    assert not report.ok
    assert [r.task_id for r in report.failures] == ["bad"]
    assert report.results[0].error is not None
    assert report.results[1].ok
    # The status line names the casualty, not just a count — CI logs
    # truncated to the summary still say what to replay.
    assert "1 task(s) FAILED (bad)" in report.summary()


def test_unknown_kind_is_a_captured_failure():
    report = run_batch([BatchTask(id="x", kind="nonsense")])
    assert not report.ok
    assert "ValueError" in report.results[0].error


def test_duplicate_task_ids_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        run_batch([
            BatchTask(id="same", kind="pepa", payload={"source": SRC}),
            BatchTask(id="same", kind="pepa", payload={"source": SRC}),
        ])


def test_jobs_must_be_positive():
    with pytest.raises(ValueError, match="jobs"):
        BatchEngine(jobs=0)


def test_default_budget_applies_to_budgetless_tasks():
    spec = BudgetSpec(max_states=1)
    report = run_batch(
        [BatchTask(id="model", kind="pepa", payload={"source": SRC})],
        default_budget=spec,
    )
    assert not report.ok
    assert "Budget" in report.results[0].error


def test_task_budget_overrides_default():
    roomy = BudgetSpec(max_states=10_000)
    report = run_batch(
        [BatchTask(id="model", kind="pepa", payload={"source": SRC}, budget=roomy)],
        default_budget=BudgetSpec(max_states=1),
    )
    assert report.ok


def test_merged_events_are_task_tagged(tmp_path):
    report = run_batch(_tasks(), jobs=1, cache_dir=tmp_path / "cache")
    events = report.merged_events()
    assert events, "cache traffic must produce events"
    assert {event["task"] for event in events} <= {"model", "e1"}
    # Task order, not interleaved: all of model's events precede e1's.
    task_sequence = [event["task"] for event in events]
    assert task_sequence == sorted(task_sequence, key=["model", "e1"].index)


def test_merged_trace_concatenates_in_task_order():
    report = run_batch(_tasks())
    merged = report.merged_trace()
    assert merged["schema"] == "repro-trace/1"
    assert len(merged["traces"]) >= 2


def test_measures_json_is_canonical():
    report = run_batch(_tasks())
    text = report.measures_json()
    assert text.endswith("\n")
    again = run_batch(_tasks()).measures_json()
    assert text == again


def test_no_cache_dir_means_no_cache_traffic():
    report = run_batch(_tasks())
    assert report.cache_totals() == {}


def test_pool_run_with_two_workers(tmp_path):
    report = run_batch(_tasks(), jobs=2, cache_dir=tmp_path / "cache")
    assert report.ok
    assert report.jobs == 2
    assert [r.task_id for r in report.results] == ["model", "e1"]


class TestProfileWiring:
    def test_profiled_inline_run_attaches_per_task_profiles(self):
        from repro.obs import ProfileConfig

        report = run_batch(_tasks(), profile=ProfileConfig(interval=0.001))
        assert report.ok
        for result in report.results:
            assert result.profile.get("schema") == "repro-profile/1"
        merged = report.merged_profile()
        assert merged["schema"] == "repro-profile/1"
        assert merged["sample_count"] == sum(
            r.profile["sample_count"] for r in report.results)

    def test_unprofiled_run_has_empty_profiles(self):
        report = run_batch(_tasks())
        assert all(result.profile == {} for result in report.results)
        assert report.merged_profile()["sample_count"] == 0

    def test_ambient_profile_config_reaches_inline_tasks(self):
        from repro.obs import ProfileConfig, use_profile_config

        with use_profile_config(ProfileConfig(interval=0.001)):
            report = run_batch(_tasks())
        assert all(result.profile.get("schema") == "repro-profile/1"
                   for result in report.results)

    def test_profiled_pool_run(self, tmp_path):
        from repro.obs import ProfileConfig

        report = run_batch(_tasks(), jobs=2, cache_dir=tmp_path / "cache",
                           profile=ProfileConfig(interval=0.001))
        assert report.ok
        for result in report.results:
            assert result.profile.get("schema") == "repro-profile/1"
