"""Unit tests for the workload builders."""

import math

import pytest

from repro.pepa.measures import analyse
from repro.pepa.parser import parse_model
from repro.pepanets.measures import analyse_net
from repro.pepanets.parser import parse_net
from repro.pepanets.semantics import explore_net
from repro.pepa.statespace import derive
from repro.uml.validate import validate_for_extraction
from repro.workloads import (
    FILE_PEPA_SOURCE,
    IM_PEPANET_SOURCE,
    TOMCAT_RATES,
    build_client_statechart,
    build_file_activity_diagram,
    build_instant_message_diagram,
    build_pda_activity_diagram,
    build_server_statechart,
    build_web_model,
    client_server_model,
    courier_ring_net,
    symmetric_branches_model,
    tandem_queue_model,
)


class TestPaperDiagrams:
    @pytest.mark.parametrize(
        "builder",
        [build_file_activity_diagram, build_instant_message_diagram, build_pda_activity_diagram],
    )
    def test_diagrams_pass_extraction_validation(self, builder):
        assert validate_for_extraction(builder()) == []

    def test_file_sources_parse(self):
        model = parse_model(FILE_PEPA_SOURCE)
        assert "File" in model.environment.components

    def test_im_pepanet_source_matches_paper_shape(self):
        net = parse_net(IM_PEPANET_SOURCE)
        space = explore_net(net)
        assert space.size == 4
        assert space.firing_actions == {"transmit"}


class TestWebModel:
    def test_uncached_state_count(self):
        model, _ = build_web_model(cached=False)
        assert derive(model).size == 7

    def test_cached_state_count(self):
        model, _ = build_web_model(cached=True)
        assert derive(model).size == 8

    def test_request_response_balance(self):
        model, _ = build_web_model(cached=False)
        a = analyse(model)
        assert math.isclose(a.throughput("request"), a.throughput("response"), rel_tol=1e-9)

    def test_cache_hit_ratio(self):
        """servlethit:servletmiss = 19:1 by the configured weights."""
        model, _ = build_web_model(cached=True)
        a = analyse(model)
        ratio = a.throughput("servlethit") / a.throughput("servletmiss")
        assert math.isclose(ratio, TOMCAT_RATES["servlethit"] / TOMCAT_RATES["servletmiss"],
                            rel_tol=1e-9)

    def test_rates_override(self):
        model, _ = build_web_model(cached=False, rates={"translate": 50.0})
        a = analyse(model)
        p_wait = a.probability_of_local_state("WaitForResponse")
        model_slow, _ = build_web_model(cached=False)
        a_slow = analyse(model_slow)
        assert p_wait < a_slow.probability_of_local_state("WaitForResponse")

    def test_statecharts_have_expected_states(self):
        client = build_client_statechart()
        assert {s.name for s in client.simple_states()} == {
            "GenerateRequest", "WaitForResponse", "ProcessResponse"
        }
        server = build_server_statechart(cached=True)
        assert "ExecuteResidentServlet" in {s.name for s in server.simple_states()}


class TestScalingFamilies:
    def test_client_server_state_growth(self):
        sizes = [derive(client_server_model(n)).size for n in (1, 2, 3)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_client_server_solves(self):
        a = analyse(client_server_model(3))
        assert math.isclose(a.throughput("request"), a.throughput("response"), rel_tol=1e-9)

    def test_courier_ring_marking_count(self):
        # 1 courier on n places with 1 cell each: n markings
        assert explore_net(courier_ring_net(4, 1)).size == 4

    def test_courier_ring_multi_token(self):
        space = explore_net(courier_ring_net(3, 2))
        # 2 tokens over 3 places with 2 distinguishable cells each
        assert space.size > 3
        analysis = analyse_net(courier_ring_net(3, 2), reducible="bscc")
        total = sum(analysis.location_distribution().values())
        assert math.isclose(total, 2.0, rel_tol=1e-9)

    def test_symmetric_branches_solve(self):
        model = symmetric_branches_model(4)
        a = analyse(model)
        assert a.n_states == 5
        p_hub = a.probability_of_local_state("Hub")
        assert math.isclose(p_hub, 3.0 / (3.0 + 4), rel_tol=1e-9)

    def test_tandem_queue_shape(self):
        model = tandem_queue_model(2, 2)
        space = derive(model)
        assert space.size == 9  # 3 levels x 3 levels

    def test_tandem_queue_flow_balance(self):
        a = analyse(tandem_queue_model(2, 3))
        assert math.isclose(a.throughput("mv0"), a.throughput("mv2"), rel_tol=1e-9)

    def test_roaming_fleet_conserves_sessions(self):
        from repro.workloads import roaming_fleet_net

        net = roaming_fleet_net(2, 3)
        analysis = analyse_net(net, reducible="bscc")
        total = sum(analysis.location_distribution().values())
        assert math.isclose(total, 2.0, rel_tol=1e-9)
        assert analysis.throughput("handover") > 0

    def test_roaming_fleet_growth(self):
        from repro.workloads import roaming_fleet_net

        small = explore_net(roaming_fleet_net(1, 3)).size
        more_sessions = explore_net(roaming_fleet_net(2, 3)).size
        more_cells = explore_net(roaming_fleet_net(1, 5)).size
        assert more_sessions > small
        assert more_cells > small

    def test_parameter_validation(self):
        from repro.exceptions import WellFormednessError
        from repro.workloads import roaming_fleet_net

        with pytest.raises(WellFormednessError):
            client_server_model(0)
        with pytest.raises(WellFormednessError):
            courier_ring_net(1)
        with pytest.raises(WellFormednessError):
            symmetric_branches_model(0)
        with pytest.raises(WellFormednessError):
            tandem_queue_model(0, 1)
        with pytest.raises(WellFormednessError):
            roaming_fleet_net(0, 3)
        with pytest.raises(WellFormednessError):
            roaming_fleet_net(1, 1)
