"""The batch-layer chaos harness: fault plans, spec parsing, ambient
installation, and the cache-level fault hooks."""

from __future__ import annotations

import pickle

import pytest

from repro.batch.cache import DerivationCache
from repro.core.keys import DerivationKey
from repro.resilience.faultinject import (
    BATCH_FAULT_KINDS,
    BatchFault,
    BatchFaultPlan,
    InjectedWorkerCrash,
    current_task,
    get_batch_faults,
    get_current_task,
    set_batch_faults,
    use_batch_faults,
)


def test_fault_kind_validated():
    with pytest.raises(ValueError, match="unknown batch fault kind"):
        BatchFault(kind="meteor-strike")
    for kind in BATCH_FAULT_KINDS:
        BatchFault(kind=kind)  # all documented kinds construct


def test_matches_task_and_attempt():
    fault = BatchFault(kind="kill", task="model", attempts=(1, 3))
    assert fault.matches("model", 1)
    assert not fault.matches("model", 2)
    assert fault.matches("model", 3)
    assert not fault.matches("other", 1)
    wildcard = BatchFault(kind="hang", task=None)
    assert wildcard.matches("anything", 1)
    assert not wildcard.matches("anything", 2)


@pytest.mark.parametrize("spec,kind,task,attempts,delay", [
    ("kill:model", "kill", "model", (1,), 30.0),
    ("kill:model@2,3", "kill", "model", (2, 3), 30.0),
    ("hang:model@1:0.5", "hang", "model", (1,), 0.5),
    ("cache-enospc:*", "cache-enospc", None, (1,), 30.0),
    ("cache-bitflip:@1,2", "cache-bitflip", None, (1, 2), 30.0),
])
def test_parse_spec_grammar(spec, kind, task, attempts, delay):
    plan = BatchFaultPlan.parse([spec])
    assert len(plan.faults) == 1
    fault = plan.faults[0]
    assert (fault.kind, fault.task, fault.attempts, fault.delay) == \
        (kind, task, attempts, delay)


@pytest.mark.parametrize("bad", ["kill", "nonsense:model", "kill:m@x"])
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        BatchFaultPlan.parse([bad])


def test_plan_is_picklable():
    """Plans ship to pool workers via initargs — they must pickle."""
    plan = BatchFaultPlan.parse(["kill:a@1", "hang:b@1,2:5"])
    assert pickle.loads(pickle.dumps(plan)) == plan


def test_apply_task_start_inline_kill_raises_crash():
    plan = BatchFaultPlan.parse(["kill:model@1"])
    with pytest.raises(InjectedWorkerCrash):
        plan.apply_task_start("model", 1, inline=True)
    plan.apply_task_start("model", 2, inline=True)  # attempt 2: no fault
    plan.apply_task_start("other", 1, inline=True)  # other task: no fault


def test_injected_crash_is_not_an_exception():
    """The crash stand-in must sail past ``except Exception`` capture."""
    assert issubclass(InjectedWorkerCrash, BaseException)
    assert not issubclass(InjectedWorkerCrash, Exception)


def test_apply_task_start_task_error_raises_runtime_error():
    plan = BatchFaultPlan.parse(["task-error:model@1"])
    with pytest.raises(RuntimeError, match="injected"):
        plan.apply_task_start("model", 1, inline=True)


def test_apply_task_start_hang_sleeps(monkeypatch):
    naps = []
    monkeypatch.setattr("repro.resilience.faultinject.time.sleep", naps.append)
    BatchFaultPlan.parse(["hang:model@1:12.5"]).apply_task_start(
        "model", 1, inline=True)
    assert naps == [12.5]


def test_ambient_plan_install_and_restore():
    plan = BatchFaultPlan.parse(["kill:x@1"])
    assert get_batch_faults() is None
    with use_batch_faults(plan):
        assert get_batch_faults() is plan
        with use_batch_faults(None):
            assert get_batch_faults() is None
        assert get_batch_faults() is plan
    assert get_batch_faults() is None


def test_current_task_scoping():
    assert get_current_task() is None
    with current_task("model", 2):
        assert get_current_task() == ("model", 2)
        with current_task("inner", 1):
            assert get_current_task() == ("inner", 1)
        assert get_current_task() == ("model", 2)
    assert get_current_task() is None


# ---------------------------------------------------------------------------
# Cache-level faults through the real DerivationCache
# ---------------------------------------------------------------------------
def test_enospc_fault_degrades_store(tmp_path):
    cache = DerivationCache(tmp_path / "cache")
    key = DerivationKey.of("pepa", "src")
    plan = BatchFaultPlan.parse(["cache-enospc:model@1"])
    with use_batch_faults(plan), current_task("model", 1):
        assert cache.store(key, {"schema": "x"}) is None
    assert cache.stats.store_errors == 1
    assert key not in cache
    # Attempt 2 (fault exhausted): the store goes through.
    with use_batch_faults(plan), current_task("model", 2):
        assert cache.store(key, {"schema": "x"}) is not None
    assert key in cache


def test_bitflip_fault_caught_by_checksum(tmp_path):
    cache = DerivationCache(tmp_path / "cache")
    key = DerivationKey.of("pepa", "src")
    plan = BatchFaultPlan.parse(["cache-bitflip:model@1"])
    with use_batch_faults(plan), current_task("model", 1):
        cache.store(key, {"schema": "x", "value": 9})
    # The entry was published, then sabotaged; the checksum must catch it.
    assert cache.fetch(key) is None
    assert cache.stats.corrupt == 1
    # verify() on an already-purged store finds nothing further.
    assert cache.verify()["corrupt"] == 0


def test_no_plan_means_no_fault_cost(tmp_path):
    cache = DerivationCache(tmp_path / "cache")
    key = DerivationKey.of("pepa", "src")
    set_batch_faults(None)
    with current_task("model", 1):
        assert cache.store(key, {"schema": "x"}) is not None
    assert cache.fetch(key) == {"schema": "x"}
    assert cache.stats.store_errors == 0
