"""Tests for cooperative execution budgets (deadlines + state counts)."""

import pytest

from repro.exceptions import BudgetExceededError, ReproError
from repro.pepa import parse_model
from repro.pepa.statespace import derive
from repro.pepanets.parser import parse_net
from repro.pepanets.semantics import explore_net
from repro.resilience import Deadline, ExecutionBudget

CYCLE_SRC = "P1 = (a, 1.0).P2; P2 = (b, 1.0).P3; P3 = (c, 1.0).P1; P1"

NET_SRC = """
Tok = (go, 1).Tok;
A[Tok] = Tok[_];
B[_] = Tok[_];
ab = (go, 1) : A -> B;
ba = (go, 1) : B -> A;
"""


class TestDeadline:
    def test_unbounded_never_expires(self):
        d = Deadline.after(None)
        assert not d.expired
        assert d.remaining() == float("inf")

    def test_zero_deadline_expires_immediately(self):
        d = Deadline.after(0.0)
        assert d.expired
        assert d.remaining() <= 0.0

    def test_elapsed_is_monotone(self):
        d = Deadline.after(100.0)
        first = d.elapsed()
        second = d.elapsed()
        assert 0.0 <= first <= second
        assert not d.expired

    def test_repr_mentions_budget(self):
        assert "unbounded" in repr(Deadline.after(None))
        assert "5" in repr(Deadline.after(5.0))


class TestExecutionBudget:
    def test_state_budget_raises_with_resumable_summary(self):
        budget = ExecutionBudget.of(max_states=10)
        with pytest.raises(BudgetExceededError) as info:
            budget.checkpoint(stage="demo", explored=11, frontier=4)
        exc = info.value
        assert exc.explored == 11
        assert exc.frontier == 4
        assert exc.stage == "demo"
        assert "max_states=10" in exc.summary()
        assert "frontier=4" in exc.summary()
        # context mirrors the structured fields (uniform .context dict)
        assert exc.context["stage"] == "demo"
        assert exc.context["explored"] == 11

    def test_under_budget_passes(self):
        budget = ExecutionBudget.of(max_states=10, deadline_seconds=100.0)
        for i in range(200):
            budget.checkpoint(stage="demo", explored=5, frontier=0)

    def test_deadline_budget_raises(self):
        budget = ExecutionBudget.of(deadline_seconds=0.0, check_every=1)
        with pytest.raises(BudgetExceededError) as info:
            budget.checkpoint(stage="demo", explored=3, frontier=1)
        assert "deadline" in (info.value.limit or "")
        assert info.value.elapsed is not None

    def test_first_checkpoint_always_consults_clock(self):
        budget = ExecutionBudget.of(deadline_seconds=0.0, check_every=64)
        with pytest.raises(BudgetExceededError):
            budget.checkpoint(stage="demo", explored=1)

    def test_clock_checked_only_every_nth_call_after_first(self):
        budget = ExecutionBudget.of(deadline_seconds=1000.0, check_every=5)
        budget.checkpoint(stage="demo", explored=1)  # tick 1: checked, passes
        budget.deadline.seconds = 0.0  # expire the deadline mid-run
        for _ in range(4):  # ticks 2–5: rate-limited, not checked
            budget.checkpoint(stage="demo", explored=1)
        with pytest.raises(BudgetExceededError):  # tick 6: checked
            budget.checkpoint(stage="demo", explored=1)

    def test_is_a_repro_error(self):
        assert issubclass(BudgetExceededError, ReproError)


class TestBudgetedExploration:
    def test_pepa_derivation_respects_deadline(self):
        model = parse_model(CYCLE_SRC)
        budget = ExecutionBudget.of(deadline_seconds=0.0, check_every=1)
        with pytest.raises(BudgetExceededError) as info:
            derive(model, budget=budget)
        assert info.value.stage == "pepa state space"

    def test_pepa_derivation_without_budget_unchanged(self):
        model = parse_model(CYCLE_SRC)
        assert derive(model).size == 3

    def test_pepa_derivation_state_budget(self):
        model = parse_model(CYCLE_SRC)
        budget = ExecutionBudget.of(max_states=2)
        with pytest.raises(BudgetExceededError) as info:
            derive(model, budget=budget)
        assert info.value.explored == 3

    def test_net_exploration_respects_deadline(self):
        net = parse_net(NET_SRC)
        budget = ExecutionBudget.of(deadline_seconds=0.0, check_every=1)
        with pytest.raises(BudgetExceededError) as info:
            explore_net(net, budget=budget)
        assert info.value.stage == "pepa-net marking space"

    def test_net_exploration_with_roomy_budget_matches_plain(self):
        net = parse_net(NET_SRC)
        roomy = ExecutionBudget.of(deadline_seconds=300.0, max_states=10_000)
        assert explore_net(net, budget=roomy).size == explore_net(net).size
