"""Tests for the deterministic solver fault-injection harness."""

import numpy as np
import pytest

from repro.ctmc import build_ctmc, steady_state
from repro.ctmc.steady import SOLVERS
from repro.exceptions import SolverError
from repro.resilience import FaultInjector, FaultSpec, inject_fault


@pytest.fixture
def chain():
    return build_ctmc(2, [(0, "d", 1.0, 1), (1, "u", 3.0, 0)])


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gremlins")

    def test_first_n_targets_leading_calls(self):
        spec = FaultSpec.first_n("converge", 3)
        assert spec.applies_to(1) and spec.applies_to(3)
        assert not spec.applies_to(4)

    def test_default_targets_first_call_only(self):
        spec = FaultSpec(kind="nan")
        assert spec.applies_to(1)
        assert not spec.applies_to(2)


class TestFaultInjector:
    def test_registry_restored_after_block(self, chain):
        original = SOLVERS["direct"]
        with inject_fault("direct", FaultSpec(kind="converge")):
            assert SOLVERS["direct"] is not original
        assert SOLVERS["direct"] is original

    def test_registry_restored_even_on_error(self, chain):
        original = SOLVERS["direct"]
        with pytest.raises(SolverError):
            with inject_fault("direct", FaultSpec(kind="converge")):
                steady_state(chain, "direct")
        assert SOLVERS["direct"] is original

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError, match="unknown method"):
            FaultInjector("quantum", FaultSpec(kind="converge"))

    def test_nth_call_targeting_and_log(self, chain):
        with inject_fault("direct", FaultSpec(kind="converge", calls=(2,))) as inj:
            first = steady_state(chain, "direct")
            with pytest.raises(SolverError, match="injected"):
                steady_state(chain, "direct")
            third = steady_state(chain, "direct")
        assert inj.calls == 3
        assert inj.log == [(1, "pass"), (2, "fault"), (3, "pass")]
        assert np.allclose(first, third)

    def test_zero_fault_rejected_by_normalisation(self, chain):
        with inject_fault("direct", FaultSpec(kind="zero")):
            with pytest.raises(SolverError, match="zero vector"):
                steady_state(chain, "direct")

    def test_nan_fault_rejected_by_normalisation(self, chain):
        with inject_fault("direct", FaultSpec(kind="nan")):
            with pytest.raises(SolverError, match="non-finite"):
                steady_state(chain, "direct")

    def test_custom_exception_class(self, chain):
        class Flaky(ConnectionError):
            pass

        with inject_fault("direct", FaultSpec(kind="exception", exception=Flaky)):
            with pytest.raises(Flaky):
                steady_state(chain, "direct")

    def test_slow_fault_still_returns_correct_answer(self, chain):
        with inject_fault("direct", FaultSpec(kind="slow", delay=0.01)):
            pi = steady_state(chain, "direct")
        assert np.allclose(pi, [0.75, 0.25], atol=1e-9)

    def test_private_registry_untouched_by_default_registry(self, chain):
        private = dict(SOLVERS)
        with inject_fault("direct", FaultSpec(kind="converge"), solvers=private):
            # the live registry still works; only the private copy faults
            assert np.allclose(steady_state(chain, "direct"), [0.75, 0.25])
            with pytest.raises(SolverError, match="injected"):
                private["direct"](chain, 1e-12, 1000)
