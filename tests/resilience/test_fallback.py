"""Tests for the fallback-chain steady-state solver."""

import numpy as np
import pytest

from repro.ctmc import build_ctmc, steady_state
from repro.exceptions import SolverError
from repro.resilience import (
    FallbackPolicy,
    FaultSpec,
    SolveDiagnostics,
    inject_fault,
    solve_with_fallback,
)


def birth_death(n: int, birth: float, death: float):
    transitions = []
    for i in range(n):
        transitions.append((i, "arrive", birth, i + 1))
        transitions.append((i + 1, "serve", death, i))
    return build_ctmc(n + 1, transitions, labels=[f"q{i}" for i in range(n + 1)])


@pytest.fixture
def chain():
    return birth_death(8, birth=1.0, death=2.0)


class TestPolicy:
    def test_parse_comma_list(self):
        policy = FallbackPolicy.parse("direct, gmres ,power")
        assert policy.methods == ("direct", "gmres", "power")

    def test_parse_rejects_empty_spec(self):
        with pytest.raises(SolverError, match="empty"):
            FallbackPolicy.parse(" , ")

    def test_unknown_method_fails_fast(self, chain):
        with pytest.raises(SolverError, match="unknown steady-state method"):
            solve_with_fallback(chain, FallbackPolicy(methods=("quantum",)))

    def test_direct_gets_no_retries(self):
        policy = FallbackPolicy(retries=3)
        assert policy.attempts_for("direct") == 1
        assert policy.attempts_for("gmres") == 4


class TestFallbackChain:
    def test_happy_path_uses_first_method(self, chain):
        pi, diag = solve_with_fallback(chain)
        assert diag.method == "direct"
        assert len(diag.attempts) == 1
        assert diag.attempts[0].ok
        assert diag.succeeded

    def test_fallback_matches_unfaulted_answer(self, chain):
        """Acceptance: direct forced to fail, the chain still returns
        the correct distribution, and the diagnostics list both the
        failed and the successful attempt."""
        expected = steady_state(chain, "direct")
        with inject_fault("direct", FaultSpec(kind="converge")):
            pi, diag = solve_with_fallback(chain)
        assert np.allclose(pi, expected, atol=1e-8)
        assert diag.method == "gmres"
        outcomes = [(a.method, a.outcome) for a in diag.attempts]
        assert ("direct", "failed") in outcomes
        assert ("gmres", "converged") in outcomes

    def test_steady_state_fallback_method(self, chain):
        expected = steady_state(chain, "direct")
        with inject_fault("direct", FaultSpec(kind="converge")):
            pi = steady_state(chain, "fallback")
        assert np.allclose(pi, expected, atol=1e-8)

    def test_steady_state_policy_string(self, chain):
        pi = steady_state(chain, policy="power,direct")
        assert np.allclose(pi, steady_state(chain, "direct"), atol=1e-6)

    def test_nan_fault_is_caught_by_normalisation(self, chain):
        expected = steady_state(chain, "direct")
        with inject_fault("direct", FaultSpec(kind="nan")):
            pi, diag = solve_with_fallback(chain)
        assert np.allclose(pi, expected, atol=1e-8)
        assert diag.attempts[0].outcome == "failed"
        assert "non-finite" in diag.attempts[0].detail

    def test_transient_exception_fault_moves_on(self, chain):
        with inject_fault("direct", FaultSpec(kind="exception", message="disk on fire")):
            pi, diag = solve_with_fallback(chain)
        assert diag.attempts[0].outcome == "error"
        assert "disk on fire" in diag.attempts[0].detail
        assert diag.succeeded

    def test_retry_engages_on_transient_faults(self, chain):
        """Two injected failures on gmres, then the real solver: the
        retry loop must reach attempt 3 without falling back."""
        policy = FallbackPolicy(methods=("gmres", "direct"), retries=2, backoff=0.0)
        with inject_fault("gmres", FaultSpec.first_n("converge", 2)) as injector:
            pi, diag = solve_with_fallback(chain, policy)
        assert injector.calls == 3
        assert diag.method == "gmres"
        assert [a.attempt for a in diag.attempts_for("gmres")] == [1, 2, 3]
        assert np.allclose(pi, steady_state(chain, "direct"), atol=1e-8)

    def test_all_methods_failing_raises_with_diagnostics(self, chain):
        policy = FallbackPolicy(methods=("direct",))
        with inject_fault("direct", FaultSpec(kind="converge")):
            with pytest.raises(SolverError, match="fallback method"):
                try:
                    solve_with_fallback(chain, policy)
                except SolverError as exc:
                    assert isinstance(exc.diagnostics, SolveDiagnostics)
                    assert not exc.diagnostics.succeeded
                    assert exc.context["stage"] == "solve"
                    raise

    def test_deadline_exhaustion_raises(self, chain):
        policy = FallbackPolicy(deadline=0.0)
        with pytest.raises(SolverError, match="deadline"):
            solve_with_fallback(chain, policy)

    def test_bad_residual_rejected(self, chain):
        """A solver that converges to the wrong vector must be caught
        by the ‖πQ‖∞ sanity check, not returned."""

        def liar(chain, tol, max_iterations, options=None):
            return np.full(chain.n_states, 1.0 / chain.n_states)

        registry = {"liar": liar, "direct": __import__(
            "repro.ctmc.steady", fromlist=["SOLVERS"]).SOLVERS["direct"]}
        policy = FallbackPolicy(methods=("liar", "direct"))
        pi, diag = solve_with_fallback(chain, policy, solvers=registry)
        assert diag.attempts[0].outcome == "bad-residual"
        assert diag.method == "direct"
        assert np.allclose(pi, steady_state(chain, "direct"), atol=1e-8)


class TestReducibleChains:
    def test_bscc_embedding(self):
        # 0 -> 1 <-> 2 : transient start-up, recurrent {1, 2}
        chain = build_ctmc(
            3, [(0, "s", 1.0, 1), (1, "a", 1.0, 2), (2, "b", 3.0, 1)]
        )
        pi, diag = solve_with_fallback(chain, reducible="bscc")
        assert pi[0] == 0.0
        assert np.isclose(pi.sum(), 1.0)
        expected = steady_state(chain, "direct", reducible="bscc")
        assert np.allclose(pi, expected, atol=1e-8)

    def test_reducible_error_policy(self):
        chain = build_ctmc(3, [(0, "a", 1.0, 1), (1, "b", 1.0, 2)])
        with pytest.raises(SolverError, match="irreducible"):
            solve_with_fallback(chain)


class TestDiagnostics:
    def test_table_and_summary_render(self, chain):
        with inject_fault("direct", FaultSpec(kind="converge")):
            _, diag = solve_with_fallback(chain)
        table = diag.as_table()
        assert "direct" in table and "gmres" in table
        assert "failed" in table and "converged" in table
        assert "solved by gmres" in diag.summary()

    def test_single_state_chain_is_trivial(self):
        chain = build_ctmc(1, [(0, "tick", 1.0, 0)])
        pi, diag = solve_with_fallback(chain)
        assert pi.tolist() == [1.0]
        assert diag.method == "trivial"


class TestPreconditionerDiagnostics:
    def test_krylov_attempt_records_ilu_path(self, chain):
        pi, diag = solve_with_fallback(chain, FallbackPolicy(methods=("gmres",)))
        assert diag.succeeded
        assert diag.attempts[0].preconditioner == "ilu"

    def test_operator_chain_records_operator_path(self, chain):
        from repro.ctmc.chain import CTMC
        from repro.ctmc.operator import CsrGenerator

        wrapped = CTMC(labels=list(chain.labels), operator=CsrGenerator(chain.Q),
                       action_rates=dict(chain.action_rates))
        pi, diag = solve_with_fallback(wrapped, FallbackPolicy(methods=("bicgstab",)))
        assert diag.succeeded
        assert diag.attempts[0].preconditioner == "none-operator"
        assert not wrapped.materialized

    def test_non_krylov_attempts_leave_field_empty(self, chain):
        pi, diag = solve_with_fallback(chain, FallbackPolicy(methods=("direct",)))
        assert diag.attempts[0].preconditioner == ""
