"""Exploration-equivalence battery.

Pins that the shared kernel (:mod:`repro.core.explore`) produces
**identical state ordering and arc lists** to the pre-refactor
hand-rolled BFS loops, for all five bench workload families plus two
Petri nets.  The golden file was generated from the code *before*
``repro.core`` existed (see ``tests/core/_equivalence.py``); any diff
here means observable exploration order changed.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from tests.core._equivalence import (
    CASES,
    GOLDEN,
    PETRI_CASES,
    _builders,
    snapshot_case,
    snapshot_petri,
)


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN.read_text())


@pytest.mark.parametrize("family,kind,size", CASES,
                         ids=[c[0] for c in CASES])
def test_workload_family_exploration_is_unchanged(golden, family, kind, size):
    key = family + ":" + ",".join(f"{k}={v}" for k, v in size.items())
    expected = golden["cases"][key]
    actual = snapshot_case(kind, _builders()[family](**size))
    assert actual["states"] == expected["states"], "state ordering changed"
    # the arc *list* (order included) is pinned — stronger than the
    # multiset the CTMC needs, so assert the multiset first for a
    # readable failure, then the full ordering
    assert Counter(map(tuple, actual["arcs"])) == \
        Counter(map(tuple, expected["arcs"])), "arc multiset changed"
    assert actual["arcs"] == expected["arcs"], "arc ordering changed"


@pytest.mark.parametrize("name", PETRI_CASES)
def test_petri_reachability_is_unchanged(golden, name):
    expected = golden["petri"][name]
    actual = snapshot_petri(name)
    assert actual["states"] == expected["states"]
    assert Counter(map(tuple, actual["arcs"])) == \
        Counter(map(tuple, expected["arcs"]))
    assert actual["arcs"] == expected["arcs"]


def test_golden_file_covers_all_five_families(golden):
    assert {c["family"] for c in golden["cases"].values()} == {
        "file_protocol", "client_server", "tandem_queue",
        "courier_ring", "roaming_fleet",
    }
