"""Unit tests for the shared BFS kernel (:mod:`repro.core.explore`)."""

import pytest

from repro.core.explore import Exploration, explore_lts
from repro.core.lts import LabelledArc
from repro.exceptions import BudgetExceededError, StateSpaceError
from repro.obs import EventStream, MetricsRegistry, Tracer, use_events, \
    use_metrics, use_tracer
from repro.resilience.budget import ExecutionBudget


def counter_chain(n: int):
    """Successor fn for the line graph 0 -> 1 -> ... -> n (deadlock at n)."""

    def successors(state: int):
        if state < n:
            yield "step", 1.0, state + 1

    return successors


def binary_tree(depth: int):
    """Successor fn for a binary branching structure over int states."""

    def successors(state: int):
        if state < 2 ** depth:
            yield "left", 1.0, 2 * state
            yield "right", 2.0, 2 * state + 1

    return successors


class TestKernel:
    def test_discovery_order_is_breadth_first(self):
        lts = explore_lts(1, binary_tree(2), stage="test.explore")
        # BFS from 1: children 2,3 then 4,5,6,7 then their children...
        assert lts.states[:7] == [1, 2, 3, 4, 5, 6, 7]
        assert lts.initial == 0
        assert lts.index[1] == 0

    def test_arcs_record_action_rate_and_indices(self):
        lts = explore_lts(0, counter_chain(2), stage="test.explore")
        assert lts.arcs == [
            LabelledArc(0, "step", 1.0, 1),
            LabelledArc(1, "step", 1.0, 2),
        ]

    def test_state_ceiling_raises_with_custom_message(self):
        with pytest.raises(StateSpaceError, match="only 3 allowed"):
            explore_lts(0, counter_chain(100), stage="test.explore",
                        max_states=3, overflow=lambda n: f"only {n} allowed")

    def test_state_ceiling_default_message_names_stage(self):
        with pytest.raises(StateSpaceError, match="test.explore"):
            explore_lts(0, counter_chain(100), stage="test.explore", max_states=3)

    def test_revisited_states_only_add_arcs(self):
        def successors(state: int):
            yield "loop", 1.0, 0  # every state returns to the root

        lts = explore_lts(0, successors, stage="test.explore")
        assert lts.size == 1
        assert lts.arcs == [LabelledArc(0, "loop", 1.0, 0)]


class TestBudget:
    def test_deadline_budget_uses_budget_stage(self):
        budget = ExecutionBudget.of(deadline_seconds=0.0, check_every=1)
        with pytest.raises(BudgetExceededError) as info:
            explore_lts(0, counter_chain(100), stage="test.explore",
                        budget=budget, budget_stage="demo stage")
        assert info.value.stage == "demo stage"

    def test_budget_stage_defaults_to_span_stage(self):
        budget = ExecutionBudget.of(deadline_seconds=0.0, check_every=1)
        with pytest.raises(BudgetExceededError) as info:
            explore_lts(0, counter_chain(100), stage="test.explore", budget=budget)
        assert info.value.stage == "test.explore"

    def test_state_budget_carries_progress(self):
        budget = ExecutionBudget.of(max_states=3)
        with pytest.raises(BudgetExceededError) as info:
            explore_lts(0, counter_chain(100), stage="test.explore", budget=budget)
        assert info.value.explored == 4


class TestHooks:
    def test_adjust_successor_can_merge_states(self):
        # Accelerate every odd state up to its even successor (the shape
        # of Karp–Miller ω-acceleration: replace before interning).
        def adjust(candidate: int, src: int, exploration: Exploration) -> int:
            return candidate + (candidate % 2)

        lts = explore_lts(0, counter_chain(4), stage="test.explore",
                          adjust_successor=adjust)
        # 0 -> 1 adjusted to 2, 2 -> 3 adjusted to 4, 4 has no successor
        assert lts.states == [0, 2, 4]
        assert [(a.source, a.target) for a in lts.arcs] == [(0, 1), (1, 2)]

    def test_on_new_state_sees_ancestor_chain(self):
        seen: list[list[int]] = []

        def on_new(candidate: int, src: int, exploration: Exploration) -> None:
            seen.append(list(exploration.ancestors(src)))

        explore_lts(0, counter_chain(3), stage="test.explore", on_new_state=on_new)
        # state k is discovered from k-1 whose ancestors run back to 0
        assert seen == [[0], [1, 0], [2, 1, 0]]

    def test_on_new_state_can_abort_search(self):
        def on_new(candidate: int, src: int, exploration: Exploration) -> None:
            if candidate == 5:
                raise StateSpaceError("state five is forbidden")

        with pytest.raises(StateSpaceError, match="five"):
            explore_lts(0, counter_chain(100), stage="test.explore",
                        on_new_state=on_new)

    def test_parent_chain_not_tracked_without_hooks(self):
        # No hook => no Exploration bookkeeping on the hot path.
        lts = explore_lts(0, counter_chain(5), stage="test.explore")
        assert lts.size == 6


class TestObservability:
    def test_span_reports_counts_under_given_key(self):
        tracer = Tracer()
        with use_tracer(tracer):
            explore_lts(0, counter_chain(3), stage="test.explore",
                        span_attrs={"flavour": "unit"}, span_count_key="markings")
        span = tracer.roots[0]
        assert span.name == "test.explore"
        assert span.attributes["flavour"] == "unit"
        assert span.attributes["max_states"] == 1_000_000
        assert span.attributes["markings"] == 4
        assert span.attributes["arcs"] == 3

    def test_span_closed_with_counts_on_overflow(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.raises(StateSpaceError):
                explore_lts(0, counter_chain(100), stage="test.explore",
                            max_states=2)
        span = tracer.roots[0]
        assert span.attributes["states"] == 2
        assert span.attributes["error"] == "StateSpaceError"

    def test_progress_events_every_interval_and_final(self):
        stream = EventStream()
        with use_events(stream):
            explore_lts(0, counter_chain(6), stage="test.explore",
                        progress_interval=2)
        progress = stream.by_name("explore.progress")
        # intermediate events at discovered indices 2, 4, 6 + final flush
        assert len(progress) == 4
        assert all(e.fields["stage"] == "test.explore" for e in progress)
        assert progress[-1].fields["explored"] == 7
        assert progress[-1].fields["frontier"] == 0

    def test_metrics_counters_incremented(self):
        metrics = MetricsRegistry()
        with use_metrics(metrics):
            explore_lts(0, counter_chain(4), stage="test.explore")
        assert metrics.counter("states_explored").value == 5
        assert metrics.counter("transitions").value == 4
