"""Fixture generator for the exploration-equivalence battery.

The ``repro.core.explore`` kernel replaced three hand-rolled BFS loops;
the contract of that refactor is *bit-for-bit equivalence*: identical
state ordering and identical arc lists for every workload family.  The
golden file ``tests/goldens/statespace_equivalence.json`` was generated
from the pre-refactor code (before ``repro.core`` existed) and must
never be regenerated casually — a diff here means the kernel changed
observable exploration order.

Regenerate (only with an explanation in the PR body)::

    PYTHONPATH=src python -m tests.core._equivalence --update
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN = Path(__file__).resolve().parents[1] / "goldens" / "statespace_equivalence.json"

#: (family, kind, size) — the five bench workload families at sizes
#: small enough to snapshot yet big enough to exercise interleavings.
CASES = [
    ("file_protocol", "pepa", {"n_readers": 2}),
    ("client_server", "pepa", {"n_clients": 3}),
    ("tandem_queue", "pepa", {"stages": 2, "capacity": 3}),
    ("courier_ring", "net", {"n_places": 3, "n_couriers": 2}),
    ("roaming_fleet", "net", {"n_sessions": 2, "n_transmitters": 3}),
]

PETRI_CASES = ["token_ring", "mutex"]


def _builders():
    from repro.workloads import (
        client_server_model,
        courier_ring_net,
        roaming_fleet_net,
        tandem_queue_model,
    )

    def file_protocol(n_readers: int):
        from repro.pepa.parser import parse_model

        readers = " || ".join(["FileReader"] * n_readers)
        source = f"""
        r_o = 2.0; r_r = 10.0; r_w = 4.0; r_c = 1.0;
        File = (openread, r_o).InStream + (openwrite, r_o).OutStream;
        InStream = (read, r_r).InStream + (close, r_c).File;
        OutStream = (write, r_w).OutStream + (close, r_c).File;
        FileReader = (openread, T).Reading + (openwrite, T).Writing;
        Reading = (read, T).Reading + (close, T).FileReader;
        Writing = (write, T).Writing + (close, T).FileReader;
        File <openread, openwrite, read, write, close> ({readers})
        """
        return parse_model(source)

    return {
        "file_protocol": file_protocol,
        "client_server": client_server_model,
        "tandem_queue": tandem_queue_model,
        "courier_ring": courier_ring_net,
        "roaming_fleet": roaming_fleet_net,
    }


def _petri_net(name: str):
    from repro.petri import PetriNet

    if name == "token_ring":
        net = PetriNet("ring")
        for i in range(4):
            net.add_place(f"p{i}", tokens=2 if i == 0 else 0)
        for i in range(4):
            net.add_transition(f"t{i}", {f"p{i}": 1}, {f"p{(i + 1) % 4}": 1})
        return net
    if name == "mutex":
        net = PetriNet("mutex")
        net.add_place("idle1", tokens=1)
        net.add_place("crit1", tokens=0)
        net.add_place("idle2", tokens=1)
        net.add_place("crit2", tokens=0)
        net.add_place("mutex", tokens=1)
        net.add_transition("enter1", {"idle1": 1, "mutex": 1}, {"crit1": 1})
        net.add_transition("exit1", {"crit1": 1}, {"idle1": 1, "mutex": 1})
        net.add_transition("enter2", {"idle2": 1, "mutex": 1}, {"crit2": 1})
        net.add_transition("exit2", {"crit2": 1}, {"idle2": 1, "mutex": 1})
        return net
    raise ValueError(name)


def snapshot_case(kind: str, model) -> dict:
    """Exploration snapshot: ordered state labels + ordered arc list."""
    if kind == "pepa":
        from repro.pepa.statespace import derive

        space = derive(model)
    else:
        from repro.pepanets.semantics import explore_net

        space = explore_net(model)
    return {
        "states": [space.state_label(i) for i in range(space.size)],
        "arcs": [[a.source, a.action, a.rate, a.target] for a in space.arcs],
    }


def snapshot_petri(name: str) -> dict:
    from repro.petri import build_reachability_graph

    graph = build_reachability_graph(_petri_net(name))
    return {
        "states": [str(m) for m in graph.markings],
        "arcs": [[s, t, d] for s, t, d in graph.edges],
    }


def generate() -> dict:
    builders = _builders()
    doc: dict = {"schema": "repro-equivalence/1", "cases": {}, "petri": {}}
    for family, kind, size in CASES:
        key = family + ":" + ",".join(f"{k}={v}" for k, v in size.items())
        doc["cases"][key] = {
            "family": family,
            "kind": kind,
            "size": size,
            **snapshot_case(kind, builders[family](**size)),
        }
    for name in PETRI_CASES:
        doc["petri"][name] = snapshot_petri(name)
    return doc


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the golden file from the current code")
    args = parser.parse_args()
    doc = generate()
    if args.update:
        GOLDEN.write_text(json.dumps(doc, indent=1) + "\n")
        n = len(doc["cases"]) + len(doc["petri"])
        print(f"wrote {n} snapshots to {GOLDEN}")
    else:
        print(json.dumps(doc, indent=1))


if __name__ == "__main__":
    main()
