"""Unit tests for the shared LTS structure (:mod:`repro.core.lts`)."""

import pytest

from repro.core.lts import LabelledArc, Lts


@pytest.fixture
def diamond() -> Lts:
    """0 -a/b-> 1,2 -c-> 3; state 3 is a deadlock; parallel a-arcs."""
    arcs = [
        LabelledArc(0, "a", 1.0, 1),
        LabelledArc(0, "a", 0.5, 1),
        LabelledArc(0, "b", 2.0, 2),
        LabelledArc(1, "c", 3.0, 3),
        LabelledArc(2, "c", 4.0, 3),
    ]
    return Lts(states=["s0", "s1", "s2", "s3"], arcs=arcs)


class TestAccessors:
    def test_size_len_initial(self, diamond):
        assert diamond.size == 4
        assert len(diamond) == 4
        assert diamond.initial == 0

    def test_default_index_interns_states(self, diamond):
        assert diamond.index == {"s0": 0, "s1": 1, "s2": 2, "s3": 3}

    def test_explicit_index_is_kept(self):
        index = {"x": 0}
        lts = Lts(states=["x"], arcs=[], index=index)
        assert lts.index is index

    def test_actions(self, diamond):
        assert diamond.actions() == {"a", "b", "c"}

    def test_state_label(self, diamond):
        assert diamond.state_label(2) == "s2"

    def test_deadlocks(self, diamond):
        assert diamond.deadlocks() == [3]

    def test_iter_transitions_matches_arcs(self, diamond):
        assert list(diamond.iter_transitions()) == [
            (a.source, a.action, a.rate, a.target) for a in diamond.arcs
        ]

    def test_repr_mentions_sizes(self, diamond):
        assert "states=4" in repr(diamond)
        assert "arcs=5" in repr(diamond)


class TestAdjacencyIndex:
    def test_successors_groups_by_source_in_arc_order(self, diamond):
        assert diamond.successors(0) == diamond.arcs[:3]
        assert diamond.successors(1) == [diamond.arcs[3]]
        assert diamond.successors(3) == []

    def test_arcs_by_action_groups_by_label(self, diamond):
        assert diamond.arcs_by_action("a") == diamond.arcs[:2]
        assert diamond.arcs_by_action("c") == diamond.arcs[3:]
        assert diamond.arcs_by_action("missing") == []

    def test_index_is_built_lazily(self, diamond):
        assert diamond.adjacency_builds == 0

    def test_index_is_built_at_most_once(self, diamond):
        # Many calls across all three indexed accessors: one build.
        for _ in range(5):
            diamond.successors(0)
            diamond.arcs_by_action("a")
            diamond.deadlocks()
        assert diamond.adjacency_builds == 1

    def test_successors_returns_constant_time_lookup(self, diamond):
        """After the one-time build, ``successors`` is a plain list
        lookup — the same list object every call, no per-call scan."""
        first = diamond.successors(0)
        assert diamond.successors(0) is first
