"""Deliverable check: every public item carries a doc comment.

Walks every module under ``repro``; everything exported via ``__all__``
(and every public module itself) must have a non-trivial docstring.
This keeps the documentation promise enforceable instead of aspirational.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MIN_DOC = 10  # characters; filters out "" and placeholder docstrings


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) >= MIN_DOC, (
        f"module {module.__name__} lacks a docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    exported = getattr(module, "__all__", None)
    if not exported:
        return
    undocumented = []
    for name in exported:
        obj = getattr(module, name)
        if isinstance(obj, (str, frozenset, dict, tuple, float, int)):
            continue  # constants: documented at module level
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue  # type aliases etc.: documented at module level
        doc = inspect.getdoc(obj)
        if not doc or len(doc.strip()) < MIN_DOC:
            undocumented.append(name)
    assert not undocumented, (
        f"{module.__name__}: undocumented public items: {undocumented}"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_document_public_methods(module):
    exported = getattr(module, "__all__", None)
    if not exported:
        return
    problems = []
    for name in exported:
        obj = getattr(module, name)
        if not inspect.isclass(obj) or obj.__module__ != module.__name__:
            continue
        for attr_name, attr in vars(obj).items():
            if attr_name.startswith("_"):
                continue
            if inspect.isfunction(attr):
                doc = inspect.getdoc(attr)
                if not doc:
                    problems.append(f"{name}.{attr_name}")
    assert not problems, f"{module.__name__}: undocumented methods: {problems}"
