"""Unit tests for exact lumping."""

import math

import numpy as np
import pytest

from repro.ctmc import build_ctmc, lump, steady_state
from repro.ctmc.lumping import coarsest_lumping, verify_lumpable


def symmetric_pair():
    """Two interchangeable 'replica' states 1 and 2 between hub states 0
    and 3: {1, 2} is lumpable."""
    return build_ctmc(
        4,
        [
            (0, "out", 1.0, 1),
            (0, "out", 1.0, 2),
            (1, "fwd", 2.0, 3),
            (2, "fwd", 2.0, 3),
            (3, "home", 4.0, 0),
        ],
        labels=["hub", "r1", "r2", "sink"],
    )


class TestCoarsestLumping:
    def test_symmetric_states_merge(self):
        blocks = coarsest_lumping(symmetric_pair())
        sizes = sorted(len(b) for b in blocks)
        assert sizes == [1, 1, 2]
        merged = next(b for b in blocks if len(b) == 2)
        assert sorted(merged.tolist()) == [1, 2]

    def test_initial_partition_respected(self):
        chain = symmetric_pair()
        # force r1 and r2 apart via the initial partition
        blocks = coarsest_lumping(chain, lambda i, lbl: lbl)
        assert all(len(b) == 1 for b in blocks)

    def test_asymmetric_rates_do_not_merge(self):
        chain = build_ctmc(
            4,
            [
                (0, "out", 1.0, 1),
                (0, "out", 1.0, 2),
                (1, "fwd", 2.0, 3),
                (2, "fwd", 5.0, 3),  # different rate: not lumpable
                (3, "home", 4.0, 0),
            ],
        )
        blocks = coarsest_lumping(chain)
        assert all(len(b) == 1 for b in blocks)

    def test_verify_lumpable(self):
        chain = symmetric_pair()
        good = [np.array([0]), np.array([1, 2]), np.array([3])]
        bad = [np.array([0, 1]), np.array([2]), np.array([3])]
        assert verify_lumpable(chain, good)
        assert not verify_lumpable(chain, bad)


class TestQuotientChain:
    def test_stationary_distribution_aggregates(self):
        chain = symmetric_pair()
        lumped = lump(chain)
        pi_full = steady_state(chain)
        pi_lumped = steady_state(lumped.chain)
        for b, members in enumerate(lumped.blocks):
            assert math.isclose(pi_lumped[b], pi_full[members].sum(), rel_tol=1e-9)

    def test_generator_rows_sum_to_zero(self):
        lumped = lump(symmetric_pair())
        sums = np.asarray(lumped.chain.Q.sum(axis=1)).ravel()
        assert np.allclose(sums, 0.0)

    def test_throughput_preserved(self):
        from repro.ctmc import throughput

        chain = symmetric_pair()
        lumped = lump(chain)
        for action in chain.action_rates:
            assert math.isclose(
                throughput(chain, action),
                throughput(lumped.chain, action),
                rel_tol=1e-9,
            )

    def test_lift_distributes_uniformly(self):
        chain = symmetric_pair()
        lumped = lump(chain)
        pi_lumped = steady_state(lumped.chain)
        lifted = lumped.lift(pi_lumped, chain)
        assert math.isclose(lifted.sum(), 1.0, rel_tol=1e-9)
        # symmetric states get equal shares — which here is also exact
        pi_full = steady_state(chain)
        assert np.allclose(lifted, pi_full, atol=1e-9)

    def test_initial_state_mapped(self):
        chain = symmetric_pair()
        lumped = lump(chain)
        assert lumped.chain.initial == int(lumped.block_of[chain.initial])

    def test_larger_symmetric_ring(self):
        """N identical parallel branches collapse to one."""
        n_branches = 5
        transitions = []
        # state 0 = hub; states 1..n = branches; all identical
        for b in range(1, n_branches + 1):
            transitions.append((0, "go", 1.0, b))
            transitions.append((b, "ret", 3.0, 0))
        chain = build_ctmc(n_branches + 1, transitions)
        lumped = lump(chain)
        assert lumped.n_blocks == 2
        pi = steady_state(lumped.chain)
        # hub sees exit rate n*1, branches return at 3
        expected_hub = 3.0 / (3.0 + n_branches)
        assert math.isclose(pi[lumped.block_of[0]], expected_hub, rel_tol=1e-9)
