"""Unit tests for transient analysis (uniformization)."""

import math

import numpy as np
import pytest

from repro.ctmc import build_ctmc, steady_state, transient_curve, transient_distribution
from repro.ctmc.transient import expected_rewards_at
from repro.exceptions import SolverError


def two_state(a=1.0, b=3.0):
    return build_ctmc(2, [(0, "down", a, 1), (1, "up", b, 0)])


def analytic_two_state(t, a=1.0, b=3.0):
    """P(state 0 at t | start 0) for the 2-state chain: closed form."""
    s = a + b
    return b / s + (a / s) * math.exp(-s * t)


class TestAgainstClosedForm:
    @pytest.mark.parametrize("t", [0.0, 0.1, 0.5, 1.0, 5.0])
    def test_two_state_exact(self, t):
        chain = two_state()
        dist = transient_distribution(chain, t, 0)
        assert math.isclose(dist[0], analytic_two_state(t), abs_tol=1e-9)

    def test_expm_matches_uniformization(self):
        chain = two_state()
        u = transient_distribution(chain, 0.7, 0, method="uniformization")
        e = transient_distribution(chain, 0.7, 0, method="expm")
        assert np.allclose(u, e, atol=1e-9)

    def test_long_run_converges_to_steady_state(self):
        chain = two_state()
        pi = steady_state(chain)
        dist = transient_distribution(chain, 100.0, 0)
        assert np.allclose(dist, pi, atol=1e-9)

    def test_pure_death_chain_absorbs(self):
        chain = build_ctmc(3, [(0, "d", 2.0, 1), (1, "d", 2.0, 2)])
        dist = transient_distribution(chain, 50.0, 0)
        assert math.isclose(dist[2], 1.0, abs_tol=1e-8)


class TestInterfaces:
    def test_distribution_initial_vector(self):
        chain = two_state()
        half = np.array([0.5, 0.5])
        dist = transient_distribution(chain, 0.0, half)
        assert np.allclose(dist, half)

    def test_bad_initial_distribution_rejected(self):
        chain = two_state()
        with pytest.raises(SolverError):
            transient_distribution(chain, 1.0, np.array([0.7, 0.7]))
        with pytest.raises(SolverError):
            transient_distribution(chain, 1.0, np.array([1.5, -0.5]))

    def test_initial_index_out_of_range(self):
        with pytest.raises(SolverError):
            transient_distribution(two_state(), 1.0, 7)

    def test_negative_time_rejected(self):
        with pytest.raises(SolverError):
            transient_distribution(two_state(), -0.1, 0)

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError, match="unknown transient"):
            transient_distribution(two_state(), 1.0, 0, method="magic")

    def test_curve_matches_pointwise(self):
        chain = two_state()
        times = np.array([0.1, 0.4, 1.0])
        curve = transient_curve(chain, times, 0)
        for row, t in zip(curve, times):
            assert np.allclose(row, transient_distribution(chain, float(t), 0), atol=1e-9)

    def test_curve_requires_sorted_times(self):
        with pytest.raises(SolverError, match="sorted"):
            transient_curve(two_state(), np.array([1.0, 0.5]), 0)

    def test_expected_rewards(self):
        chain = two_state()
        r = expected_rewards_at(chain, 0.0, np.array([1.0, 0.0]), 0)
        assert r == 1.0
        r_inf = expected_rewards_at(chain, 100.0, np.array([1.0, 0.0]), 0)
        assert math.isclose(r_inf, 0.75, abs_tol=1e-8)
