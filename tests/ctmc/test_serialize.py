"""Exact CTMC round-trips through the cacheable payload form."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmc.serialize import CTMC_PAYLOAD_SCHEMA, ctmc_from_payload, ctmc_to_payload
from repro.ctmc.steady import steady_state
from repro.pepa.ctmcgen import ctmc_of_model
from repro.pepa.parser import parse_model

SRC = """
r_up = 3.0; r_down = 1.0;
On = (switch_off, r_down).Off;
Off = (switch_on, r_up).On;
On
"""


@pytest.fixture
def chain():
    _space, chain = ctmc_of_model(parse_model(SRC))
    return chain


def test_round_trip_is_exact(chain):
    restored = ctmc_from_payload(ctmc_to_payload(chain))
    assert restored.n_states == chain.n_states
    assert restored.labels == chain.labels
    assert restored.initial == chain.initial
    np.testing.assert_array_equal(
        restored.Q.toarray(), chain.Q.tocsr().toarray()
    )
    assert set(restored.action_rates) == set(chain.action_rates)
    for action in chain.action_rates:
        np.testing.assert_array_equal(
            np.asarray(restored.action_rates[action]),
            np.asarray(chain.action_rates[action]),
        )


def test_round_trip_solves_identically(chain):
    restored = ctmc_from_payload(ctmc_to_payload(chain))
    np.testing.assert_array_equal(steady_state(restored), steady_state(chain))


def test_payload_is_schema_stamped(chain):
    payload = ctmc_to_payload(chain)
    assert payload["schema"] == CTMC_PAYLOAD_SCHEMA


def test_foreign_schema_is_rejected(chain):
    payload = ctmc_to_payload(chain)
    payload["schema"] = "something-else"
    with pytest.raises(ValueError):
        ctmc_from_payload(payload)
