"""Cross-solver consistency on seeded random ergodic CTMCs.

Every steady-state method in the registry — and the resilient fallback
chain on top of them — must agree on the same stationary distribution.
The chains are built from a seeded RNG: a directed Hamiltonian cycle
guarantees irreducibility (hence ergodicity, as the state space is
finite), then extra random transitions vary the structure.  The direct
sparse-LU solution is the reference; each other method must match it
componentwise within ``1e-8`` and sum to one.

The slow iterative methods (power iteration and the stationary
splittings) only see small chains; the Krylov methods get larger ones.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import CTMC, build_ctmc, steady_state
from repro.ctmc.steady import SOLVERS
from repro.resilience.fallback import FallbackPolicy, solve_with_fallback

AGREEMENT_ATOL = 1e-8

#: methods safe at any size vs methods that need small, well-mixed chains
FAST_METHODS = sorted(set(SOLVERS) & {"direct", "gmres", "bicgstab", "lgmres"})
SLOW_METHODS = sorted(set(SOLVERS) - set(FAST_METHODS))

#: methods that must stay matrix-free on an operator-backed chain
MATRIX_FREE_METHODS = sorted(
    set(SOLVERS) - {"direct", "gauss_seidel"}
)


def random_ergodic_ctmc(n: int, seed: int, extra_density: float = 0.4) -> CTMC:
    """A seeded random irreducible CTMC on ``n`` states.

    The cycle ``0 -> 1 -> ... -> n-1 -> 0`` makes every state reachable
    from every other; extra uniformly-drawn transitions (density
    ``extra_density`` over the off-diagonal pairs) randomise the
    structure.  Rates live in ``[0.1, 10]`` so the generator stays
    well-conditioned for every iterative family.
    """
    rng = np.random.default_rng(seed)
    transitions = [
        (i, "cycle", float(rng.uniform(0.1, 10.0)), (i + 1) % n) for i in range(n)
    ]
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < extra_density:
                transitions.append((i, "hop", float(rng.uniform(0.1, 10.0)), j))
    return build_ctmc(n, transitions, labels=[f"s{i}" for i in range(n)])


def reference_pi(chain: CTMC) -> np.ndarray:
    return steady_state(chain, "direct")


def assert_consistent(pi: np.ndarray, reference: np.ndarray) -> None:
    assert pi.shape == reference.shape
    assert np.all(pi >= 0.0)
    assert abs(pi.sum() - 1.0) < 1e-10
    assert np.allclose(pi, reference, atol=AGREEMENT_ATOL, rtol=0.0)


class TestSeededAgreement:
    """Fixed seeds: fully deterministic, run on every pytest invocation."""

    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("method", FAST_METHODS)
    def test_fast_methods_medium_chains(self, method, seed):
        chain = random_ergodic_ctmc(25, seed)
        assert_consistent(steady_state(chain, method), reference_pi(chain))

    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("method", SLOW_METHODS)
    def test_slow_methods_small_chains(self, method, seed):
        chain = random_ergodic_ctmc(8, seed)
        assert_consistent(steady_state(chain, method), reference_pi(chain))

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_fallback_chain_agrees(self, seed):
        chain = random_ergodic_ctmc(25, seed)
        pi, diag = solve_with_fallback(chain, FallbackPolicy())
        assert diag.succeeded
        assert_consistent(pi, reference_pi(chain))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_fallback_starting_from_iterative_method_agrees(self, seed):
        # The chain may succeed on gmres or fall through to direct;
        # either way the answer must be the same distribution.
        chain = random_ergodic_ctmc(12, seed)
        policy = FallbackPolicy(methods=("gmres", "direct"))
        pi, diag = solve_with_fallback(chain, policy)
        assert diag.succeeded
        assert diag.method in {"gmres", "direct"}
        assert_consistent(pi, reference_pi(chain))


class TestPropertyAgreement:
    """Hypothesis sweeps over sizes and seeds."""

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=3, max_value=20),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_krylov_methods_match_direct(self, n, seed):
        chain = random_ergodic_ctmc(n, seed)
        reference = reference_pi(chain)
        for method in ("gmres", "bicgstab"):
            assert_consistent(steady_state(chain, method), reference)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=3, max_value=8),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_slow_methods_match_direct(self, n, seed):
        chain = random_ergodic_ctmc(n, seed)
        reference = reference_pi(chain)
        for method in SLOW_METHODS:
            assert_consistent(steady_state(chain, method), reference)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=3, max_value=15),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_fallback_matches_direct(self, n, seed):
        chain = random_ergodic_ctmc(n, seed)
        pi, diag = solve_with_fallback(chain, FallbackPolicy())
        assert diag.succeeded
        assert_consistent(pi, reference_pi(chain))

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=3, max_value=12),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           density=st.floats(min_value=0.0, max_value=1.0))
    def test_distribution_is_stationary(self, n, seed, density):
        # Not just solver-vs-solver: the answer must satisfy pi Q = 0.
        chain = random_ergodic_ctmc(n, seed, extra_density=density)
        pi = reference_pi(chain)
        residual = np.abs(chain.Q.transpose() @ pi).max()
        assert residual < 1e-9


class TestMatrixFreeBackend:
    """The same seeded chains through the operator-only backend.

    Wrapping the CSR matrix in a :class:`CsrGenerator` and handing only
    the operator to the chain exercises the matrix-free solver path on
    arbitrary (non-compositional) generators: answers must agree with
    the materialised backend to the same tolerance, and no iterative
    method may trigger materialisation.
    """

    @staticmethod
    def operator_only(chain: CTMC) -> CTMC:
        from repro.ctmc.operator import CsrGenerator

        return CTMC(
            labels=list(chain.labels),
            action_rates=dict(chain.action_rates),
            initial=chain.initial,
            operator=CsrGenerator(chain.Q),
        )

    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("method", sorted(set(MATRIX_FREE_METHODS) & set(FAST_METHODS)))
    def test_krylov_methods_stay_matrix_free(self, method, seed):
        chain = random_ergodic_ctmc(25, seed)
        wrapped = self.operator_only(chain)
        assert_consistent(steady_state(wrapped, method), reference_pi(chain))
        assert not wrapped.materialized

    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("method", sorted(set(MATRIX_FREE_METHODS) - set(FAST_METHODS)))
    def test_slow_methods_stay_matrix_free(self, method, seed):
        chain = random_ergodic_ctmc(8, seed)
        wrapped = self.operator_only(chain)
        assert_consistent(steady_state(wrapped, method), reference_pi(chain))
        assert not wrapped.materialized

    @pytest.mark.parametrize("method", sorted(set(SOLVERS) - set(MATRIX_FREE_METHODS)))
    def test_materialising_methods_agree_too(self, method):
        chain = random_ergodic_ctmc(8, 3)
        wrapped = self.operator_only(chain)
        assert_consistent(steady_state(wrapped, method), reference_pi(chain))
        assert wrapped.materialized

    @pytest.mark.parametrize("seed", [0, 1])
    def test_fallback_chain_on_operator_backend(self, seed):
        chain = random_ergodic_ctmc(12, seed)
        wrapped = self.operator_only(chain)
        pi, diag = solve_with_fallback(
            wrapped, FallbackPolicy(methods=("gmres", "bicgstab", "power"))
        )
        assert diag.succeeded
        assert_consistent(pi, reference_pi(chain))
        assert not wrapped.materialized


def test_registry_is_covered():
    """Every registered method is exercised by this module."""
    assert set(FAST_METHODS) | set(SLOW_METHODS) == set(SOLVERS)
