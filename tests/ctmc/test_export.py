"""Unit tests for CTMC export formats."""

import numpy as np
import pytest

from repro.ctmc import build_ctmc, to_dot, to_matrix_market, to_prism, write_prism_files


def sample_chain():
    return build_ctmc(
        3,
        [(0, "a", 1.0, 1), (1, "b", 2.0, 2), (2, "c", 0.5, 0)],
        labels=["S0", "S1", "S2"],
    )


class TestPrism:
    def test_tra_header_and_rows(self):
        tra, _, _ = to_prism(sample_chain())
        lines = tra.strip().splitlines()
        assert lines[0] == "3 3"
        assert lines[1].startswith("0 1 ")
        assert len(lines) == 4

    def test_sta_enumerates_states(self):
        _, sta, _ = to_prism(sample_chain())
        lines = sta.strip().splitlines()
        assert lines[0] == "(s)"
        assert lines[1] == "0:(0)"
        assert len(lines) == 4

    def test_lab_marks_initial(self):
        _, _, lab = to_prism(sample_chain())
        assert '0="init"' in lab
        assert "\n0: 0" in lab

    def test_lab_marks_deadlocks(self):
        chain = build_ctmc(2, [(0, "a", 1.0, 1)])
        _, _, lab = to_prism(chain)
        assert "1: 1" in lab

    def test_write_files(self, tmp_path):
        paths = write_prism_files(sample_chain(), tmp_path / "model")
        for p in paths:
            assert p.exists()
            assert p.read_text()
        assert {p.suffix for p in paths} == {".tra", ".sta", ".lab"}

    def test_transitions_sorted(self):
        chain = build_ctmc(3, [(2, "z", 1.0, 0), (0, "a", 1.0, 2), (1, "m", 1.0, 0)])
        tra, _, _ = to_prism(chain)
        rows = [tuple(map(float, line.split()[:2])) for line in tra.strip().splitlines()[1:]]
        assert rows == sorted(rows)


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path):
        import scipy.io

        chain = sample_chain()
        path = to_matrix_market(chain, tmp_path / "gen.mtx")
        loaded = scipy.io.mmread(str(path)).tocsr()
        assert np.allclose(loaded.toarray(), chain.Q.toarray())


class TestDot:
    def test_contains_states_and_arcs(self):
        dot = to_dot(sample_chain())
        assert dot.startswith("digraph")
        assert 'label="S1"' in dot
        assert "s0 -> s1" in dot

    def test_initial_state_highlighted(self):
        dot = to_dot(sample_chain())
        assert "doublecircle" in dot

    def test_size_limit(self):
        big = build_ctmc(
            300,
            [(i, "step", 1.0, (i + 1) % 300) for i in range(300)],
        )
        with pytest.raises(ValueError, match="refusing"):
            to_dot(big)

    def test_quotes_escaped(self):
        chain = build_ctmc(2, [(0, "a", 1.0, 1), (1, "b", 1.0, 0)],
                           labels=['say "hi"', "other"])
        dot = to_dot(chain)
        assert '"say \'hi\'"' in dot.replace("label=", "", 1) or "say 'hi'" in dot
