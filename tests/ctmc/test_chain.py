"""Unit tests for the CTMC container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ctmc import CTMC, build_ctmc
from repro.exceptions import SolverError


def two_state():
    return build_ctmc(2, [(0, "down", 1.0, 1), (1, "up", 3.0, 0)], labels=["On", "Off"])


class TestBuild:
    def test_generator_rows_sum_to_zero(self):
        c = two_state()
        sums = np.asarray(c.Q.sum(axis=1)).ravel()
        assert np.allclose(sums, 0.0)

    def test_parallel_transitions_sum(self):
        c = build_ctmc(2, [(0, "a", 1.0, 1), (0, "b", 2.0, 1), (1, "c", 1.0, 0)])
        assert c.Q[0, 1] == 3.0

    def test_self_loop_counts_for_throughput_not_generator(self):
        c = build_ctmc(2, [(0, "spin", 5.0, 0), (0, "go", 1.0, 1), (1, "back", 1.0, 0)])
        assert c.Q[0, 0] == -1.0  # only the real departure
        assert c.action_rates["spin"][0] == 5.0

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(SolverError):
            build_ctmc(2, [(0, "a", 0.0, 1)])
        with pytest.raises(SolverError):
            build_ctmc(2, [(0, "a", -1.0, 1)])

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(SolverError):
            CTMC(sp.identity(3, format="csr") * 0.0, labels=["only-one"])

    def test_non_square_rejected(self):
        with pytest.raises(SolverError):
            CTMC(sp.csr_matrix((2, 3)))

    def test_action_rate_vectors(self):
        c = two_state()
        assert c.action_rates["down"].tolist() == [1.0, 0.0]
        assert c.action_rates["up"].tolist() == [0.0, 3.0]


class TestStructure:
    def test_exit_rates(self):
        c = two_state()
        assert c.exit_rates().tolist() == [1.0, 3.0]
        assert c.max_exit_rate() == 3.0

    def test_absorbing_states(self):
        c = build_ctmc(3, [(0, "a", 1.0, 1), (1, "b", 1.0, 2)])
        assert c.absorbing_states().tolist() == [2]

    def test_irreducibility(self):
        assert two_state().is_irreducible()
        chain = build_ctmc(3, [(0, "a", 1.0, 1), (1, "b", 1.0, 2)])
        assert not chain.is_irreducible()

    def test_bottom_sccs(self):
        # 0 -> 1 <-> 2 : the bottom SCC is {1, 2}
        c = build_ctmc(3, [(0, "a", 1.0, 1), (1, "b", 1.0, 2), (2, "c", 1.0, 1)])
        bsccs = c.bottom_sccs()
        assert len(bsccs) == 1
        assert sorted(bsccs[0].tolist()) == [1, 2]

    def test_restricted_to_rebuilds_diagonal(self):
        c = build_ctmc(3, [(0, "a", 1.0, 1), (1, "b", 1.0, 2), (2, "c", 1.0, 1),
                           (1, "leak", 9.0, 0)])
        sub = c.restricted_to(np.array([1, 2]))
        sums = np.asarray(sub.Q.sum(axis=1)).ravel()
        assert np.allclose(sums, 0.0)
        assert sub.n_states == 2
        assert sub.labels == []

    def test_uniformized_is_stochastic(self):
        P, lam = two_state().uniformized()
        assert lam >= 3.0
        sums = np.asarray(P.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)
        assert P.min() >= 0.0

    def test_uniformized_rate_too_small_rejected(self):
        with pytest.raises(SolverError):
            two_state().uniformized(rate=0.5)

    def test_coo_triplets_exclude_diagonal(self):
        rows, cols, vals = two_state().to_coo_triplets()
        assert all(r != c for r, c in zip(rows, cols))
        assert sorted(vals.tolist()) == [1.0, 3.0]
