"""Unit tests for the embedded DTMC."""

import math

import numpy as np
import pytest

from repro.ctmc import build_ctmc, ctmc_pi_from_embedded, steady_state
from repro.ctmc.dtmc import dtmc_stationary, embedded_dtmc
from repro.exceptions import SolverError


def chain_with_choice():
    return build_ctmc(
        3,
        [(0, "l", 1.0, 1), (0, "r", 3.0, 2), (1, "x", 5.0, 0), (2, "y", 0.5, 0)],
    )


class TestEmbedded:
    def test_rows_are_stochastic(self):
        P = embedded_dtmc(chain_with_choice())
        sums = np.asarray(P.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_branch_probabilities(self):
        P = embedded_dtmc(chain_with_choice())
        assert math.isclose(P[0, 1], 0.25)
        assert math.isclose(P[0, 2], 0.75)

    def test_absorbing_state_gets_self_loop(self):
        chain = build_ctmc(2, [(0, "go", 1.0, 1)])
        P = embedded_dtmc(chain)
        assert P[1, 1] == 1.0


class TestCrossCheck:
    def test_embedded_route_matches_direct_solver(self):
        chain = chain_with_choice()
        pi_direct = steady_state(chain)
        pi_embedded = ctmc_pi_from_embedded(chain)
        assert np.allclose(pi_direct, pi_embedded, atol=1e-8)

    def test_birth_death_cross_check(self):
        transitions = []
        for i in range(5):
            transitions.append((i, "birth", 2.0, i + 1))
            transitions.append((i + 1, "death", 3.0, i))
        chain = build_ctmc(6, transitions)
        assert np.allclose(steady_state(chain), ctmc_pi_from_embedded(chain), atol=1e-8)

    def test_absorbing_chain_rejected(self):
        chain = build_ctmc(2, [(0, "go", 1.0, 1)])
        with pytest.raises(SolverError, match="absorbing"):
            ctmc_pi_from_embedded(chain)

    def test_dtmc_stationary_on_periodic_chain(self):
        """A two-cycle is periodic; damping must still converge to
        (1/2, 1/2)."""
        import scipy.sparse as sp

        P = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        nu = dtmc_stationary(P)
        assert np.allclose(nu, [0.5, 0.5], atol=1e-8)

    def test_non_square_rejected(self):
        import scipy.sparse as sp

        with pytest.raises(SolverError):
            dtmc_stationary(sp.csr_matrix((2, 3)))
