"""Unit tests for passage-time densities, quantiles and moments."""

import math

import numpy as np
import pytest

from repro.ctmc import build_ctmc, mean_passage_time
from repro.ctmc.density import (
    passage_time_density,
    passage_time_moments,
    passage_time_quantile,
)
from repro.exceptions import SolverError


def single_step(rate=2.0):
    return build_ctmc(2, [(0, "go", rate, 1), (1, "back", 1.0, 0)])


def erlang_chain(stages=3, rate=2.0):
    transitions = [(i, "s", rate, i + 1) for i in range(stages)]
    transitions.append((stages, "loop", 1.0, 0))
    return build_ctmc(stages + 1, transitions)


class TestDensity:
    def test_exponential_density(self):
        chain = single_step(2.0)
        times = np.array([0.0, 0.25, 1.0, 2.0])
        density = passage_time_density(chain, 0, [1], times)
        expected = 2.0 * np.exp(-2.0 * times)
        assert np.allclose(density, expected, atol=1e-8)

    def test_density_integrates_to_cdf(self):
        """Trapezoidal integral of f matches the CDF."""
        from repro.ctmc import passage_time_cdf

        chain = erlang_chain(3, 2.0)
        times = np.linspace(0, 6, 600)
        density = passage_time_density(chain, 0, [3], times)
        integral = np.trapezoid(density, times)
        cdf_end = passage_time_cdf(chain, 0, [3], np.array([times[-1]]))[0]
        assert math.isclose(integral, cdf_end, abs_tol=1e-3)

    def test_source_in_targets_gives_zero_density(self):
        chain = single_step()
        density = passage_time_density(chain, 1, [1], np.array([0.5]))
        assert density[0] == 0.0

    def test_erlang_mode_location(self):
        """Erlang(k, λ) density peaks at (k-1)/λ."""
        chain = erlang_chain(3, 2.0)
        times = np.linspace(0.05, 4.0, 400)
        density = passage_time_density(chain, 0, [3], times)
        peak_t = times[np.argmax(density)]
        assert math.isclose(peak_t, 2 / 2.0, abs_tol=0.05)


class TestQuantile:
    def test_exponential_median(self):
        chain = single_step(2.0)
        median = passage_time_quantile(chain, 0, [1], 0.5)
        assert math.isclose(median, math.log(2) / 2.0, rel_tol=1e-4)

    def test_quantiles_monotone(self):
        chain = erlang_chain(3, 2.0)
        q50 = passage_time_quantile(chain, 0, [3], 0.5)
        q95 = passage_time_quantile(chain, 0, [3], 0.95)
        assert q50 < q95

    def test_source_in_targets(self):
        assert passage_time_quantile(single_step(), 1, [1], 0.9) == 0.0

    def test_bad_probability_rejected(self):
        with pytest.raises(SolverError):
            passage_time_quantile(single_step(), 0, [1], 1.5)


class TestMoments:
    def test_exponential_moments(self):
        chain = single_step(2.0)
        m1, m2 = passage_time_moments(chain, 0, [1], 2)
        assert math.isclose(m1, 0.5, rel_tol=1e-12)
        assert math.isclose(m2, 2 / 4.0, rel_tol=1e-12)  # E[T^2] = 2/λ²

    def test_erlang_moments(self):
        """Erlang(3, 2): mean 1.5, variance 3/4."""
        chain = erlang_chain(3, 2.0)
        m1, m2 = passage_time_moments(chain, 0, [3], 2)
        assert math.isclose(m1, 1.5, rel_tol=1e-12)
        variance = m2 - m1**2
        assert math.isclose(variance, 0.75, rel_tol=1e-12)

    def test_first_moment_matches_mean_passage_time(self):
        chain = erlang_chain(4, 1.5)
        [m1] = passage_time_moments(chain, 0, [4], 1)
        assert math.isclose(m1, mean_passage_time(chain, 0, [4]), rel_tol=1e-12)

    def test_source_in_targets(self):
        assert passage_time_moments(single_step(), 1, [1], 3) == [0.0, 0.0, 0.0]

    def test_zero_moments_rejected(self):
        with pytest.raises(SolverError):
            passage_time_moments(single_step(), 0, [1], 0)
