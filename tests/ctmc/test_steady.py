"""Unit and property tests for the steady-state solvers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import CTMC, build_ctmc, steady_state
from repro.ctmc.steady import SOLVERS
from repro.exceptions import SolverError

ALL_METHODS = sorted(SOLVERS)


def birth_death(n: int, birth: float, death: float) -> CTMC:
    """M/M/1/n queue: closed-form geometric stationary distribution."""
    transitions = []
    for i in range(n):
        transitions.append((i, "arrive", birth, i + 1))
        transitions.append((i + 1, "serve", death, i))
    return build_ctmc(n + 1, transitions, labels=[f"q{i}" for i in range(n + 1)])


def geometric_pi(n: int, rho: float) -> np.ndarray:
    weights = rho ** np.arange(n + 1)
    return weights / weights.sum()


class TestAnalyticAgreement:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_two_state(self, method):
        chain = build_ctmc(2, [(0, "d", 1.0, 1), (1, "u", 3.0, 0)])
        pi = steady_state(chain, method)
        assert np.allclose(pi, [0.75, 0.25], atol=1e-7)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_birth_death_geometric(self, method):
        chain = birth_death(8, birth=1.0, death=2.0)
        pi = steady_state(chain, method)
        assert np.allclose(pi, geometric_pi(8, 0.5), atol=1e-6)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_uniform_cycle(self, method):
        n = 6
        chain = build_ctmc(n, [(i, "step", 2.0, (i + 1) % n) for i in range(n)])
        pi = steady_state(chain, method)
        assert np.allclose(pi, np.full(n, 1 / n), atol=1e-6)


class TestValidation:
    def test_unknown_method(self):
        chain = birth_death(2, 1.0, 1.0)
        with pytest.raises(SolverError, match="unknown"):
            steady_state(chain, "quantum")

    def test_reducible_chain_rejected(self):
        chain = build_ctmc(3, [(0, "a", 1.0, 1), (1, "b", 1.0, 2)])
        with pytest.raises(SolverError, match="irreducible"):
            steady_state(chain)

    def test_reducible_error_names_absorbing_state(self):
        chain = build_ctmc(2, [(0, "a", 1.0, 1)], labels=["start", "sink"])
        with pytest.raises(SolverError, match="sink"):
            steady_state(chain)

    def test_check_can_be_skipped_for_known_irreducible(self):
        chain = birth_death(3, 1.0, 1.0)
        pi = steady_state(chain, check_irreducible=False)
        assert math.isclose(pi.sum(), 1.0)

    def test_single_state(self):
        chain = CTMC(build_ctmc(2, [(0, "a", 1.0, 1), (1, "b", 1.0, 0)]).Q[:1, :1].tocsr() * 0)
        pi = steady_state(chain)
        assert pi.tolist() == [1.0]

    def test_empty_chain_rejected(self):
        import scipy.sparse as sp

        with pytest.raises(SolverError):
            steady_state(CTMC(sp.csr_matrix((0, 0))))


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_ergodic_chain_balance(self, n, seed):
        """On random irreducible chains the direct solver satisfies
        global balance and agrees with the power method."""
        rng = np.random.default_rng(seed)
        transitions = []
        # Ring to guarantee irreducibility, plus random extra edges.
        for i in range(n):
            transitions.append((i, "ring", float(rng.uniform(0.5, 2.0)), (i + 1) % n))
        for _ in range(n):
            i, j = rng.integers(0, n, size=2)
            if i != j:
                transitions.append((int(i), "extra", float(rng.uniform(0.1, 3.0)), int(j)))
        chain = build_ctmc(n, transitions)
        pi = steady_state(chain, "direct")
        assert math.isclose(pi.sum(), 1.0, rel_tol=1e-9)
        # global balance: pi Q = 0
        residual = np.abs(pi @ chain.Q.toarray()).max()
        assert residual < 1e-8
        pi_power = steady_state(chain, "power", tol=1e-13)
        assert np.allclose(pi, pi_power, atol=1e-6)


class TestValidationOrdering:
    """The method name must be validated before the (potentially
    expensive) irreducibility analysis — a typo fails in O(1)."""

    def test_unknown_method_beats_reducibility_check(self):
        chain = build_ctmc(3, [(0, "a", 1.0, 1), (1, "b", 1.0, 2)])  # reducible
        with pytest.raises(SolverError, match="unknown steady-state method"):
            steady_state(chain, "quantum")

    def test_unknown_method_skips_scc_analysis(self):
        chain = birth_death(4, 1.0, 1.0)
        calls = []
        original = chain.is_irreducible
        chain.is_irreducible = lambda: calls.append(1) or original()
        with pytest.raises(SolverError, match="unknown"):
            steady_state(chain, "tpyo")
        assert calls == []


class TestBsccPolicy:
    def test_multiple_bottom_sccs_rejected(self):
        # 1 -> 0 and 1 -> 2 with both {0} and {2} absorbing: the steady
        # state depends on the initial state, so "bscc" must refuse.
        chain = build_ctmc(
            3, [(1, "left", 1.0, 0), (1, "right", 1.0, 2),
                (0, "spin", 1.0, 0), (2, "spin", 1.0, 2)]
        )
        with pytest.raises(SolverError, match="2 bottom strongly connected"):
            steady_state(chain, reducible="bscc")

    def test_two_recurrent_classes_rejected(self):
        # two disjoint 2-cycles reachable from a common start
        chain = build_ctmc(
            5,
            [(0, "l", 1.0, 1), (0, "r", 1.0, 3),
             (1, "a", 1.0, 2), (2, "b", 1.0, 1),
             (3, "c", 1.0, 4), (4, "d", 1.0, 3)],
        )
        with pytest.raises(SolverError, match="depends on the initial state"):
            steady_state(chain, reducible="bscc")

    def test_unique_bscc_masses_transients_to_zero(self):
        chain = build_ctmc(
            3, [(0, "s", 1.0, 1), (1, "a", 1.0, 2), (2, "b", 3.0, 1)]
        )
        pi = steady_state(chain, reducible="bscc")
        assert pi[0] == 0.0
        assert np.allclose(pi[1:], [0.75, 0.25], atol=1e-9)

    def test_unknown_reducible_policy_rejected(self):
        chain = birth_death(2, 1.0, 1.0)
        with pytest.raises(SolverError, match="reducible policy"):
            steady_state(chain, reducible="maybe")


class TestNormalisationRejections:
    """Solvers returning garbage must be rejected by _normalise, never
    silently renormalised into a plausible-looking answer."""

    def _with_fake_solver(self, vector_fn):
        def fake(chain, tol, max_iterations, options=None):
            return vector_fn(chain.n_states)

        SOLVERS["_fake"] = fake
        try:
            chain = birth_death(3, 1.0, 2.0)
            return steady_state(chain, "_fake")
        finally:
            del SOLVERS["_fake"]

    def test_nan_vector_rejected(self):
        with pytest.raises(SolverError, match="non-finite"):
            self._with_fake_solver(lambda n: np.full(n, np.nan))

    def test_inf_vector_rejected(self):
        with pytest.raises(SolverError, match="non-finite"):
            self._with_fake_solver(lambda n: np.full(n, np.inf))

    def test_materially_negative_vector_rejected(self):
        def negative(n):
            v = np.full(n, 1.0 / n)
            v[0] = -0.5
            return v

        with pytest.raises(SolverError, match="negative"):
            self._with_fake_solver(negative)

    def test_zero_vector_rejected(self):
        with pytest.raises(SolverError, match="zero vector"):
            self._with_fake_solver(np.zeros)

    def test_tiny_negative_roundoff_clipped(self):
        def roundoff(n):
            v = np.full(n, 1.0 / n)
            v[0] = -1e-12  # direct-solve round-off territory
            return v

        pi = self._with_fake_solver(roundoff)
        assert pi.min() >= 0.0
        assert math.isclose(pi.sum(), 1.0)


class TestPreconditionerFallback:
    def test_spilu_valueerror_falls_back_to_unpreconditioned(self, monkeypatch):
        """spilu can raise ValueError/MemoryError on near-singular or
        huge systems; the Krylov solvers must drop to M=None, not crash."""
        import repro.ctmc.steady as steady_mod

        def broken_spilu(*args, **kwargs):
            raise ValueError("near-singular factorisation")

        monkeypatch.setattr(steady_mod.spla, "spilu", broken_spilu)
        chain = birth_death(6, 1.0, 2.0)
        for method in ("gmres", "bicgstab"):
            pi = steady_state(chain, method)
            assert np.allclose(pi, geometric_pi(6, 0.5), atol=1e-6)

    def test_spilu_memoryerror_falls_back(self, monkeypatch):
        import repro.ctmc.steady as steady_mod

        def huge_spilu(*args, **kwargs):
            raise MemoryError("fill-in blew up")

        monkeypatch.setattr(steady_mod.spla, "spilu", huge_spilu)
        chain = birth_death(6, 1.0, 2.0)
        pi = steady_state(chain, "gmres")
        assert np.allclose(pi, geometric_pi(6, 0.5), atol=1e-6)


class TestPreconditionerReporting:
    """Krylov attempts must report which preconditioner path ran via
    ``solver_options["info"]`` — ILU on a materialised chain, the
    unpreconditioned fallback when the factorisation fails, and the
    operator path (ILU impossible) on matrix-free chains."""

    def test_materialised_chain_reports_ilu(self):
        chain = birth_death(6, 1.0, 2.0)
        info: dict = {}
        steady_state(chain, "gmres", solver_options={"info": info})
        assert info["preconditioner"] == "ilu"

    def test_broken_spilu_reports_none_fallback(self, monkeypatch):
        import repro.ctmc.steady as steady_mod

        def broken_spilu(*args, **kwargs):
            raise ValueError("near-singular factorisation")

        monkeypatch.setattr(steady_mod.spla, "spilu", broken_spilu)
        chain = birth_death(6, 1.0, 2.0)
        info: dict = {}
        steady_state(chain, "bicgstab", solver_options={"info": info})
        assert info["preconditioner"] == "none-fallback"

    def test_operator_backed_chain_reports_none_operator(self):
        from repro.ctmc.chain import CTMC
        from repro.ctmc.operator import CsrGenerator

        base = birth_death(6, 1.0, 2.0)
        chain = CTMC(labels=list(base.labels), operator=CsrGenerator(base.Q))
        info: dict = {}
        pi = steady_state(chain, "lgmres", solver_options={"info": info})
        assert info["preconditioner"] == "none-operator"
        assert not chain.materialized
        assert np.allclose(pi, geometric_pi(6, 0.5), atol=1e-6)
