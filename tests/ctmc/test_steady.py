"""Unit and property tests for the steady-state solvers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import CTMC, build_ctmc, steady_state
from repro.ctmc.steady import SOLVERS
from repro.exceptions import SolverError

ALL_METHODS = sorted(SOLVERS)


def birth_death(n: int, birth: float, death: float) -> CTMC:
    """M/M/1/n queue: closed-form geometric stationary distribution."""
    transitions = []
    for i in range(n):
        transitions.append((i, "arrive", birth, i + 1))
        transitions.append((i + 1, "serve", death, i))
    return build_ctmc(n + 1, transitions, labels=[f"q{i}" for i in range(n + 1)])


def geometric_pi(n: int, rho: float) -> np.ndarray:
    weights = rho ** np.arange(n + 1)
    return weights / weights.sum()


class TestAnalyticAgreement:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_two_state(self, method):
        chain = build_ctmc(2, [(0, "d", 1.0, 1), (1, "u", 3.0, 0)])
        pi = steady_state(chain, method)
        assert np.allclose(pi, [0.75, 0.25], atol=1e-7)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_birth_death_geometric(self, method):
        chain = birth_death(8, birth=1.0, death=2.0)
        pi = steady_state(chain, method)
        assert np.allclose(pi, geometric_pi(8, 0.5), atol=1e-6)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_uniform_cycle(self, method):
        n = 6
        chain = build_ctmc(n, [(i, "step", 2.0, (i + 1) % n) for i in range(n)])
        pi = steady_state(chain, method)
        assert np.allclose(pi, np.full(n, 1 / n), atol=1e-6)


class TestValidation:
    def test_unknown_method(self):
        chain = birth_death(2, 1.0, 1.0)
        with pytest.raises(SolverError, match="unknown"):
            steady_state(chain, "quantum")

    def test_reducible_chain_rejected(self):
        chain = build_ctmc(3, [(0, "a", 1.0, 1), (1, "b", 1.0, 2)])
        with pytest.raises(SolverError, match="irreducible"):
            steady_state(chain)

    def test_reducible_error_names_absorbing_state(self):
        chain = build_ctmc(2, [(0, "a", 1.0, 1)], labels=["start", "sink"])
        with pytest.raises(SolverError, match="sink"):
            steady_state(chain)

    def test_check_can_be_skipped_for_known_irreducible(self):
        chain = birth_death(3, 1.0, 1.0)
        pi = steady_state(chain, check_irreducible=False)
        assert math.isclose(pi.sum(), 1.0)

    def test_single_state(self):
        chain = CTMC(build_ctmc(2, [(0, "a", 1.0, 1), (1, "b", 1.0, 0)]).Q[:1, :1].tocsr() * 0)
        pi = steady_state(chain)
        assert pi.tolist() == [1.0]

    def test_empty_chain_rejected(self):
        import scipy.sparse as sp

        with pytest.raises(SolverError):
            steady_state(CTMC(sp.csr_matrix((0, 0))))


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_ergodic_chain_balance(self, n, seed):
        """On random irreducible chains the direct solver satisfies
        global balance and agrees with the power method."""
        rng = np.random.default_rng(seed)
        transitions = []
        # Ring to guarantee irreducibility, plus random extra edges.
        for i in range(n):
            transitions.append((i, "ring", float(rng.uniform(0.5, 2.0)), (i + 1) % n))
        for _ in range(n):
            i, j = rng.integers(0, n, size=2)
            if i != j:
                transitions.append((int(i), "extra", float(rng.uniform(0.1, 3.0)), int(j)))
        chain = build_ctmc(n, transitions)
        pi = steady_state(chain, "direct")
        assert math.isclose(pi.sum(), 1.0, rel_tol=1e-9)
        # global balance: pi Q = 0
        residual = np.abs(pi @ chain.Q.toarray()).max()
        assert residual < 1e-8
        pi_power = steady_state(chain, "power", tol=1e-13)
        assert np.allclose(pi, pi_power, atol=1e-6)
