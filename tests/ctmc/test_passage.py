"""Unit tests for passage-time measures."""

import math

import numpy as np
import pytest

from repro.ctmc import (
    build_ctmc,
    mean_passage_time,
    mean_time_per_visit,
    passage_time_cdf,
    steady_state,
    visit_frequency,
)
from repro.exceptions import SolverError


def three_cycle(r=2.0):
    return build_ctmc(3, [(0, "a", r, 1), (1, "b", r, 2), (2, "c", r, 0)],
                      labels=["A", "B", "C"])


class TestMeanPassage:
    def test_single_exponential_step(self):
        chain = build_ctmc(2, [(0, "go", 4.0, 1), (1, "back", 1.0, 0)])
        assert math.isclose(mean_passage_time(chain, 0, [1]), 0.25, rel_tol=1e-12)

    def test_chain_of_stages_sums_means(self):
        chain = three_cycle(r=2.0)
        # A -> B -> C: two exponential stages of mean 1/2 each
        assert math.isclose(mean_passage_time(chain, 0, [2]), 1.0, rel_tol=1e-12)

    def test_source_in_targets_is_zero(self):
        assert mean_passage_time(three_cycle(), 1, [1, 2]) == 0.0

    def test_empty_targets_rejected(self):
        with pytest.raises(SolverError):
            mean_passage_time(three_cycle(), 0, [])

    def test_out_of_range_target_rejected(self):
        with pytest.raises(SolverError):
            mean_passage_time(three_cycle(), 0, [99])

    def test_race_of_two_exits(self):
        chain = build_ctmc(
            3, [(0, "l", 1.0, 1), (0, "r", 3.0, 2), (1, "x", 1.0, 0), (2, "y", 1.0, 0)]
        )
        # time to reach {1, 2} is one exponential race at total rate 4
        assert math.isclose(mean_passage_time(chain, 0, [1, 2]), 0.25, rel_tol=1e-12)


class TestCdf:
    def test_single_step_cdf_is_exponential(self):
        chain = build_ctmc(2, [(0, "go", 2.0, 1), (1, "back", 1.0, 0)])
        times = np.array([0.1, 0.5, 1.0, 2.0])
        cdf = passage_time_cdf(chain, 0, [1], times)
        expected = 1.0 - np.exp(-2.0 * times)
        assert np.allclose(cdf, expected, atol=1e-8)

    def test_cdf_monotone(self):
        chain = three_cycle()
        times = np.linspace(0.05, 3.0, 12)
        cdf = passage_time_cdf(chain, 0, [2], times)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_source_in_targets_gives_ones(self):
        cdf = passage_time_cdf(three_cycle(), 2, [2], np.array([0.0, 1.0]))
        assert np.allclose(cdf, 1.0)

    def test_unsorted_times_are_handled(self):
        chain = build_ctmc(2, [(0, "go", 2.0, 1), (1, "back", 1.0, 0)])
        ordered = passage_time_cdf(chain, 0, [1], np.array([0.5, 1.0]))
        shuffled = passage_time_cdf(chain, 0, [1], np.array([1.0, 0.5]))
        assert math.isclose(shuffled[0], ordered[1], abs_tol=1e-10)
        assert math.isclose(shuffled[1], ordered[0], abs_tol=1e-10)


class TestRenewalMeasures:
    def test_visit_frequency_equals_entry_throughput(self):
        chain = three_cycle(r=2.0)
        pi = steady_state(chain)
        # each state is entered at the cycle frequency: rate 2 per state,
        # pi uniform 1/3 -> flux into B is pi(A)*2 = 2/3
        assert math.isclose(visit_frequency(chain, [1], pi), 2 / 3, rel_tol=1e-9)

    def test_mean_time_per_visit_is_sojourn(self):
        chain = three_cycle(r=2.0)
        # exponential sojourn with rate 2 -> mean 1/2
        assert math.isclose(mean_time_per_visit(chain, [1]), 0.5, rel_tol=1e-9)

    def test_block_of_states(self):
        chain = three_cycle(r=2.0)
        # entering {B, C} and traversing both stages: mean 1
        assert math.isclose(mean_time_per_visit(chain, [1, 2]), 1.0, rel_tol=1e-9)

    def test_never_entered_set_rejected(self):
        chain = build_ctmc(2, [(0, "go", 1.0, 1), (1, "back", 1.0, 0)])
        no_mass_outside = np.array([0.0, 1.0])  # all mass already inside {1}
        with pytest.raises(SolverError):
            mean_time_per_visit(chain, [1], no_mass_outside)
