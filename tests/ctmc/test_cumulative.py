"""Unit tests for cumulative rewards and sensitivity analysis."""

import math

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ctmc import build_ctmc, steady_state
from repro.ctmc.cumulative import accumulated_reward, reward_to_absorption, time_average_reward
from repro.ctmc.sensitivity import measure_sensitivity, stationary_derivative
from repro.exceptions import SolverError


def two_state(a=1.0, b=3.0):
    return build_ctmc(2, [(0, "down", a, 1), (1, "up", b, 0)])


class TestAccumulatedReward:
    def test_zero_horizon(self):
        chain = two_state()
        assert accumulated_reward(chain, 0.0, np.array([1.0, 0.0]), 0) == 0.0

    def test_constant_reward_accumulates_linearly(self):
        chain = two_state()
        r = np.array([2.0, 2.0])
        for t in (0.5, 1.0, 3.0):
            assert math.isclose(accumulated_reward(chain, t, r, 0), 2.0 * t, rel_tol=1e-9)

    def test_two_state_closed_form(self):
        """E[time in state 0 over [0,t] | start 0] has a closed form:
        (b/(a+b)) t + (a/(a+b)^2)(1 - e^{-(a+b)t})."""
        a, b = 1.0, 3.0
        chain = two_state(a, b)
        r = np.array([1.0, 0.0])
        s = a + b
        for t in (0.2, 1.0, 4.0):
            expected = (b / s) * t + (a / s**2) * (1 - math.exp(-s * t))
            assert math.isclose(accumulated_reward(chain, t, r, 0), expected, rel_tol=1e-8)

    def test_time_average_converges_to_steady_state(self):
        chain = two_state()
        r = np.array([1.0, 0.0])
        pi = steady_state(chain)
        avg = time_average_reward(chain, 200.0, r, 0)
        assert math.isclose(avg, pi[0], abs_tol=1e-3)

    def test_negative_time_rejected(self):
        with pytest.raises(SolverError):
            accumulated_reward(two_state(), -1.0, np.array([1.0, 0.0]), 0)

    def test_bad_reward_shape_rejected(self):
        with pytest.raises(SolverError):
            accumulated_reward(two_state(), 1.0, np.ones(5), 0)


class TestRewardToAbsorption:
    def test_unit_reward_is_mean_passage_time(self):
        from repro.ctmc import mean_passage_time

        chain = build_ctmc(3, [(0, "a", 2.0, 1), (1, "b", 2.0, 2), (2, "c", 2.0, 0)])
        r = np.ones(3)
        value = reward_to_absorption(chain, [2], r, source=0)
        assert math.isclose(value, mean_passage_time(chain, 0, [2]), rel_tol=1e-12)

    def test_weighted_energy_example(self):
        """Two stages with power draws 5 and 1: expected energy to
        absorption = 5·E[stage1] + 1·E[stage2]."""
        chain = build_ctmc(3, [(0, "x", 2.0, 1), (1, "y", 4.0, 2)])
        power = np.array([5.0, 1.0, 0.0])
        value = reward_to_absorption(chain, [2], power, source=0)
        assert math.isclose(value, 5.0 / 2.0 + 1.0 / 4.0, rel_tol=1e-12)

    def test_source_in_targets(self):
        chain = two_state()
        assert reward_to_absorption(chain, [0], np.ones(2), source=0) == 0.0

    def test_full_vector(self):
        chain = build_ctmc(3, [(0, "x", 1.0, 1), (1, "y", 1.0, 2)])
        vec = reward_to_absorption(chain, [2], np.ones(3))
        assert np.allclose(vec, [2.0, 1.0])

    def test_empty_targets_rejected(self):
        with pytest.raises(SolverError):
            reward_to_absorption(two_state(), [], np.ones(2))


class TestSensitivity:
    def test_two_state_analytic_derivative(self):
        """pi_0 = b/(a+b): d pi_0 / da = -b/(a+b)^2."""
        a, b = 1.0, 3.0
        chain = two_state(a, b)
        # direction: increase a (the 0->1 rate) by 1
        dQ = sp.csr_matrix(np.array([[-1.0, 1.0], [0.0, 0.0]]))
        dpi = stationary_derivative(chain, dQ)
        expected = -b / (a + b) ** 2
        assert math.isclose(dpi[0], expected, rel_tol=1e-9)
        assert math.isclose(dpi.sum(), 0.0, abs_tol=1e-12)

    def test_finite_difference_cross_check(self):
        a, b, h = 1.0, 3.0, 1e-6
        dQ = sp.csr_matrix(np.array([[-1.0, 1.0], [0.0, 0.0]]))
        dpi = stationary_derivative(two_state(a, b), dQ)
        pi_hi = steady_state(two_state(a + h, b))
        pi_lo = steady_state(two_state(a - h, b))
        fd = (pi_hi - pi_lo) / (2 * h)
        assert np.allclose(dpi, fd, atol=1e-5)

    def test_measure_sensitivity_with_reward_term(self):
        """throughput(down) = pi_0 * a; d/da = pi_0 + a * dpi_0/da."""
        a, b = 1.0, 3.0
        chain = two_state(a, b)
        pi = steady_state(chain)
        dQ = sp.csr_matrix(np.array([[-1.0, 1.0], [0.0, 0.0]]))
        rewards = chain.action_rates["down"]
        d_rewards = np.array([1.0, 0.0])  # d(a * 1_{s=0})/da
        value = measure_sensitivity(chain, dQ, rewards, d_rewards, pi)
        analytic = b / (a + b) + a * (-b / (a + b) ** 2)
        assert math.isclose(value, analytic, rel_tol=1e-9)

    def test_nonzero_row_sum_rejected(self):
        chain = two_state()
        bad = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, 0.0]]))
        with pytest.raises(SolverError, match="row sums"):
            stationary_derivative(chain, bad)

    def test_shape_mismatch_rejected(self):
        chain = two_state()
        with pytest.raises(SolverError, match="shape"):
            stationary_derivative(chain, sp.csr_matrix((3, 3)))


class TestPepaSensitivity:
    def test_profile_and_finite_difference(self):
        from repro.pepa import parse_model
        from repro.pepa.ctmcgen import ctmc_of_model
        from repro.pepa.sensitivity import sensitivity_profile, throughput_sensitivity

        def model(r_work):
            return parse_model(
                f"Busy = (work, {r_work}).Idle; Idle = (rest, 2.0).Busy; Busy"
            )

        space, chain = ctmc_of_model(model(1.0))
        sens = throughput_sensitivity(space, chain, "work", "work")
        # finite difference on throughput(work) w.r.t. scaling work rates
        h = 1e-6
        from repro.ctmc import throughput

        def tp(scale):
            s, c = ctmc_of_model(model(1.0 * scale))
            return throughput(c, "work")

        fd = (tp(1 + h) - tp(1 - h)) / (2 * h)
        assert math.isclose(sens, fd, rel_tol=1e-4)

        profile = sensitivity_profile(space, chain, "work")
        assert set(profile) == {"work", "rest"}
        # both rates raise the cycle frequency: positive sensitivities
        assert all(v > 0 for v in profile.values())

    def test_unknown_actions_rejected(self):
        from repro.pepa import parse_model
        from repro.pepa.ctmcgen import ctmc_of_model
        from repro.pepa.sensitivity import throughput_sensitivity

        space, chain = ctmc_of_model(parse_model("P = (a, 1).P; P"))
        with pytest.raises(SolverError):
            throughput_sensitivity(space, chain, "ghost", "a")
        with pytest.raises(SolverError):
            throughput_sensitivity(space, chain, "a", "ghost")
