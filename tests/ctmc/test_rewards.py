"""Unit tests for reward measures."""

import math

import numpy as np
import pytest

from repro.ctmc import (
    all_throughputs,
    build_ctmc,
    expectation,
    mean_population,
    probability_by_label,
    throughput,
    utilisation,
)
from repro.exceptions import SolverError


def queue_chain():
    """M/M/1/3 with arrival 1, service 2; labels carry the queue length."""
    transitions = []
    for i in range(3):
        transitions.append((i, "arrive", 1.0, i + 1))
        transitions.append((i + 1, "serve", 2.0, i))
    return build_ctmc(4, transitions, labels=[f"len={i}" for i in range(4)])


class TestThroughput:
    def test_flow_balance(self):
        chain = queue_chain()
        assert math.isclose(throughput(chain, "arrive"), throughput(chain, "serve"), rel_tol=1e-9)

    def test_unknown_action_is_zero(self):
        assert throughput(queue_chain(), "ghost") == 0.0

    def test_all_throughputs_sorted_keys(self):
        ths = all_throughputs(queue_chain())
        assert list(ths) == ["arrive", "serve"]

    def test_explicit_pi_used(self):
        chain = queue_chain()
        pi = np.array([1.0, 0.0, 0.0, 0.0])
        # in state 0 only arrivals occur, at rate 1
        assert throughput(chain, "arrive", pi) == 1.0
        assert throughput(chain, "serve", pi) == 0.0


class TestExpectation:
    def test_vector_rewards(self):
        chain = queue_chain()
        lengths = np.arange(4, dtype=float)
        mean_len = expectation(chain, lengths)
        rho = 0.5
        weights = rho ** np.arange(4)
        expected = (weights * np.arange(4)).sum() / weights.sum()
        assert math.isclose(mean_len, expected, rel_tol=1e-9)

    def test_sparse_mapping_rewards(self):
        chain = queue_chain()
        assert math.isclose(
            expectation(chain, {3: 1.0}),
            probability_by_label(chain, "len=3"),
            rel_tol=1e-12,
        )

    def test_bad_shape_rejected(self):
        with pytest.raises(SolverError):
            expectation(queue_chain(), np.ones(7))

    def test_bad_mapping_state_rejected(self):
        with pytest.raises(SolverError):
            expectation(queue_chain(), {99: 1.0})


class TestProbabilities:
    def test_labels_partition(self):
        chain = queue_chain()
        total = sum(probability_by_label(chain, f"len={i}") for i in range(4))
        assert math.isclose(total, 1.0, rel_tol=1e-9)

    def test_regex_matching(self):
        chain = queue_chain()
        p_nonzero = probability_by_label(chain, r"len=[123]", regex=True)
        p0 = probability_by_label(chain, "len=0")
        assert math.isclose(p_nonzero + p0, 1.0, rel_tol=1e-9)

    def test_unlabelled_chain_rejected(self):
        chain = build_ctmc(2, [(0, "a", 1.0, 1), (1, "b", 1.0, 0)])
        with pytest.raises(SolverError, match="labels"):
            probability_by_label(chain, "x")

    def test_utilisation_by_index(self):
        chain = queue_chain()
        busy = utilisation(chain, lambda i, lbl: i > 0)
        assert math.isclose(busy, 1.0 - probability_by_label(chain, "len=0"), rel_tol=1e-9)


class TestPopulation:
    def test_mean_queue_length_from_labels(self):
        chain = queue_chain()
        mean_len = mean_population(chain, lambda lbl: int(lbl.split("=")[1]))
        assert math.isclose(mean_len, expectation(chain, np.arange(4.0)), rel_tol=1e-12)
