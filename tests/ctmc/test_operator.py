"""Unit tests of the generator-operator layer (repro.ctmc.operator).

The contract under test: a :class:`GeneratorOperator` is an exact,
matrix-free stand-in for the generator matrix — ``matvec``/``rmatvec``
must agree with the materialised ``Q`` to floating-point exactness, and
a chain built on an operator must never materialise unless something
explicitly asks for ``chain.Q``.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ctmc.chain import CTMC, build_ctmc
from repro.ctmc.operator import (
    CsrGenerator,
    GeneratorOperator,
    KroneckerDescriptor,
    KroneckerTerm,
)

SPMV_ATOL = 1e-12


def small_chain() -> CTMC:
    transitions = [
        (0, "a", 2.0, 1),
        (1, "b", 1.0, 2),
        (2, "c", 3.0, 0),
        (0, "d", 0.5, 2),
        (2, "loop", 4.0, 2),  # self-loop: counts for action rates only
    ]
    return build_ctmc(3, transitions, labels=["s0", "s1", "s2"])


def two_component_descriptor() -> tuple[KroneckerDescriptor, np.ndarray]:
    """A hand-built two-component descriptor and its dense expansion.

    Component 0 (3 local states) performs ``a`` locally; the two
    components synchronise on ``s`` with a scale group implementing the
    apparent-rate denominator.
    """
    Ra = np.array([[0.0, 2.0, 0.0], [0.0, 0.0, 1.0], [3.0, 0.0, 0.0]])
    S0 = np.array([[0.0, 1.5, 0.0], [0.0, 0.0, 0.0], [1.5, 0.0, 0.0]])
    S1 = np.array([[0.0, 1.0], [1.0, 0.0]])
    denom = S0.sum(axis=1)
    denom[denom == 0.0] = 1.0
    terms = [
        KroneckerTerm("a", 1.0, {0: Ra}),
        KroneckerTerm("s", 1.0, {0: S0, 1: S1}, (((0, S0.sum(axis=1)),),)),
    ]
    n = 6
    descriptor = KroneckerDescriptor([3, 2], terms, np.arange(n))
    inv = np.where(S0.sum(axis=1) > 0, 1.0 / np.where(denom > 0, denom, 1.0), 0.0)
    R = np.kron(Ra, np.eye(2)) + np.diag(np.kron(inv, np.ones(2))) @ np.kron(S0, S1)
    dense = R - np.diag(R.sum(axis=1))
    return descriptor, dense


class TestCsrGenerator:
    def test_protocol_conformance(self):
        chain = small_chain()
        assert isinstance(chain.generator, GeneratorOperator)

    def test_matvec_matches_matrix(self):
        chain = small_chain()
        op = chain.generator
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = rng.normal(size=3)
            np.testing.assert_allclose(op.matvec(x), chain.Q @ x, atol=SPMV_ATOL)
            np.testing.assert_allclose(
                op.rmatvec(x), chain.Q.transpose() @ x, atol=SPMV_ATOL
            )

    def test_exit_rates_are_negated_diagonal(self):
        chain = small_chain()
        np.testing.assert_allclose(
            chain.generator.exit_rates(), -chain.Q.diagonal(), atol=SPMV_ATOL
        )

    def test_to_linear_operator(self):
        chain = small_chain()
        x = np.arange(3, dtype=float)
        lo = chain.generator.to_linear_operator()
        lo_t = chain.generator.to_linear_operator(transpose=True)
        np.testing.assert_allclose(lo @ x, chain.Q @ x, atol=SPMV_ATOL)
        np.testing.assert_allclose(lo_t @ x, chain.Q.T @ x, atol=SPMV_ATOL)

    def test_to_csr_is_identity(self):
        chain = small_chain()
        assert (chain.generator.to_csr() != chain.Q).nnz == 0

    def test_spmv_count_and_bytes(self):
        op = CsrGenerator(small_chain().Q)
        assert op.stored_bytes > 0
        assert op.spmv_count == 0
        op.matvec(np.ones(3))
        op.rmatvec(np.ones(3))
        assert op.spmv_count == 2
        assert "csr" in op.description


class TestKroneckerDescriptor:
    def test_matches_dense_expansion(self):
        descriptor, dense = two_component_descriptor()
        np.testing.assert_allclose(
            descriptor.to_csr().toarray(), dense, atol=SPMV_ATOL
        )

    def test_matvec_never_materialises(self):
        descriptor, dense = two_component_descriptor()
        rng = np.random.default_rng(1)
        for _ in range(5):
            x = rng.normal(size=6)
            np.testing.assert_allclose(descriptor.matvec(x), dense @ x, atol=SPMV_ATOL)
            np.testing.assert_allclose(
                descriptor.rmatvec(x), dense.T @ x, atol=SPMV_ATOL
            )
        assert descriptor.spmv_count == 10

    def test_exit_rates(self):
        descriptor, dense = two_component_descriptor()
        np.testing.assert_allclose(
            descriptor.exit_rates(), -np.diag(dense), atol=SPMV_ATOL
        )

    def test_projection_restricts_to_reachable(self):
        descriptor, dense = two_component_descriptor()
        keep = np.array([0, 1, 3, 5])
        projected = KroneckerDescriptor([3, 2], list(descriptor.terms), keep)
        sub = dense[np.ix_(keep, keep)]
        # The projected generator keeps the full-space row totals, so
        # only the off-diagonal block structure must match.
        got = projected.to_csr().toarray()
        off = ~np.eye(len(keep), dtype=bool)
        np.testing.assert_allclose(got[off], sub[off], atol=SPMV_ATOL)

    def test_action_rates_sum_over_terms(self):
        descriptor, _ = two_component_descriptor()
        assert set(descriptor.action_rates) == {"a", "s"}
        assert descriptor.stored_nnz > 0
        assert descriptor.stored_bytes > 0
        assert "kronecker" in descriptor.description

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            KroneckerDescriptor(
                [3, 2],
                [KroneckerTerm("a", 1.0, {0: np.ones((2, 2))})],
                np.arange(6),
            )


class TestOperatorBackedChain:
    def test_stays_matrix_free_until_Q_is_asked_for(self):
        base = small_chain()
        chain = CTMC(labels=list(base.labels), operator=CsrGenerator(base.Q),
                     action_rates=dict(base.action_rates))
        assert not chain.materialized
        chain.exit_rates()
        chain.max_exit_rate()
        assert chain.is_irreducible()
        assert not chain.materialized
        assert chain.Q is not None  # explicit materialisation
        assert chain.materialized

    def test_materialisation_is_observable(self):
        from repro.obs import EventStream, MetricsRegistry, use_events, use_metrics

        base = small_chain()
        chain = CTMC(labels=list(base.labels), operator=CsrGenerator(base.Q))
        events, metrics = EventStream(), MetricsRegistry()
        with use_events(events), use_metrics(metrics):
            _ = chain.Q
        assert len(events.by_name("solver.materialize")) == 1
        assert metrics.counter("generator.materialize").value == 1

    def test_chain_requires_some_backend(self):
        from repro.exceptions import SolverError

        with pytest.raises(SolverError):
            CTMC()

    def test_irreducibility_matches_materialised(self):
        # A reducible chain: state 2 is absorbing.
        chain = build_ctmc(3, [(0, "a", 1.0, 1), (1, "b", 1.0, 2), (2, "c", 1.0, 2)])
        op_chain = CTMC(labels=list(chain.labels), operator=CsrGenerator(chain.Q))
        assert chain.is_irreducible() == op_chain.is_irreducible() is False
