"""Failure-injection tests for the XMI layer.

The reader must convert every malformed document into a clear
:class:`XmiError` — never a crash, never a silently wrong model.  We
mutate a known-good document in targeted ways (and a few random ones)
and check the contract.
"""

import re

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError, XmiError
from repro.uml.model import UmlModel
from repro.uml.xmi import read_model, write_model
from repro.workloads import build_instant_message_diagram


def good_document() -> str:
    model = UmlModel(name="fuzz")
    model.add_activity_graph(build_instant_message_diagram())
    return write_model(model)


MUTATIONS = [
    # (description, mutator)
    ("truncated", lambda text: text[: len(text) // 2]),
    ("unbalanced tag", lambda text: text.replace("</XMI.content>", "", 1)),
    ("transition source dangles",
     lambda text: re.sub(r'source="[^"]+"', 'source="ghost-id"', text, count=1)),
    ("transition target dangles",
     lambda text: re.sub(r'target="[^"]+"', 'target="ghost-id"', text, count=1)),
    ("unknown element",
     lambda text: text.replace("<UML:ActionState", "<UML:Wormhole", 1)
                      .replace("</UML:ActionState>", "</UML:Wormhole>", 1)),
    ("pseudostate kind unsupported",
     lambda text: text.replace('kind="initial"', 'kind="deepHistory"', 1)),
    ("missing required id",
     lambda text: re.sub(r'<UML:Transition xmi.id="[^"]+"', "<UML:Transition", text, count=1)),
    ("tagged value without value",
     lambda text: re.sub(r'(<UML:TaggedValue tag="[^"]+") value="[^"]+"', r"\1", text, count=1)),
    ("two models in one document",
     lambda text: text.replace(
         "</XMI.content>",
         '<UML:Model xmi.id="m2" name="extra"/></XMI.content>', 1)),
]


@pytest.mark.parametrize("description,mutate", MUTATIONS, ids=[m[0] for m in MUTATIONS])
def test_targeted_mutations_raise_xmi_errors(description, mutate):
    mutated = mutate(good_document())
    if mutated == good_document():
        pytest.skip("mutation did not apply to this document")
    with pytest.raises(XmiError):
        read_model(mutated)


class TestAttributeValueFuzz:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
                   min_size=0, max_size=30))
    def test_names_round_trip_through_xml(self, name):
        """Arbitrary printable unicode in element names must survive the
        write/read cycle exactly (XML escaping handled by ElementTree)."""
        from repro.uml.activity import ActivityGraph

        model = UmlModel(name="n")
        g = ActivityGraph("g")
        g.add_action(name or "x")
        model.add_activity_graph(g)
        restored = read_model(write_model(model))
        restored_names = [a.name for a in restored.activity_graph("g").actions()]
        assert restored_names == [name or "x"]

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
                   min_size=1, max_size=20),
           st.text(alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
                   min_size=1, max_size=40))
    def test_tagged_values_round_trip(self, tag, value):
        from repro.uml.activity import ActivityGraph

        model = UmlModel(name="n")
        g = ActivityGraph("g")
        action = g.add_action("work")
        action.set_tag(tag, value)
        model.add_activity_graph(g)
        restored = read_model(write_model(model))
        assert restored.activity_graph("g").action_by_name("work").tag(tag) == value


class TestWriterRejectsUnrepresentable:
    def test_control_character_in_value_raises(self):
        from repro.uml.activity import ActivityGraph

        model = UmlModel(name="n")
        g = ActivityGraph("g")
        g.add_action("work").set_tag("note", "bad\x1fvalue")
        model.add_activity_graph(g)
        with pytest.raises(XmiError, match="control character"):
            write_model(model)

    def test_tab_and_newline_are_fine(self):
        from repro.uml.activity import ActivityGraph

        model = UmlModel(name="n")
        g = ActivityGraph("g")
        g.add_action("work").set_tag("note", "line one\nline\ttwo")
        model.add_activity_graph(g)
        restored = read_model(write_model(model))
        # XML attribute whitespace normalisation maps \n and \t to
        # spaces; the content survives modulo that, by the XML spec.
        assert restored.activity_graph("g").action_by_name("work").tag("note") in (
            "line one\nline\ttwo", "line one line two"
        )


class TestRandomByteFuzz:
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10_000), st.text(min_size=1, max_size=5))
    def test_random_splices_never_crash_uncontrolled(self, position, junk):
        """Splicing junk anywhere either still parses (harmless spot) or
        raises a library error — nothing else escapes."""
        text = good_document()
        position = position % len(text)
        mutated = text[:position] + junk + text[position:]
        try:
            read_model(mutated)
        except ReproError:
            pass  # the contract: controlled failure
