"""Unit tests for XMI read/write, the MDR and Poseidon processing."""

import pytest

from repro.exceptions import XmiError
from repro.uml import ActivityGraph, StateMachine, UmlModel
from repro.uml.xmi import (
    UML14_METAMODEL,
    Repository,
    add_synthetic_layout,
    extract_layout,
    postprocess,
    preprocess,
    read_model,
    write_model,
)


def sample_model() -> UmlModel:
    g = ActivityGraph("flow")
    init = g.add_initial()
    a = g.add_action("download file", rate=2.0)
    mv = g.add_action("handover", move=True)
    obj = g.add_object("u: SESSION", atloc="transmitter_1")
    obj2 = g.add_object("u*: SESSION", atloc="transmitter_2")
    g.connect(init, a)
    g.connect(a, mv)
    g.connect(obj, mv)
    g.connect(mv, obj2)

    sm = StateMachine("Client")
    i = sm.add_initial()
    s1 = sm.add_state("GenerateRequest")
    s2 = sm.add_state("WaitForResponse")
    sm.add_transition(i, s1, "")
    sm.add_transition(s1, s2, "request", rate=2.0)
    sm.add_transition(s2, s1, "response", rate=4.0)

    model = UmlModel(name="sample")
    model.add_activity_graph(g)
    model.add_state_machine(sm)
    return model


class TestRoundTrip:
    def test_structure_preserved(self):
        model = sample_model()
        restored = read_model(write_model(model))
        g = restored.activity_graph("flow")
        assert {n.kind for n in g.nodes.values()} == {"initial", "action", "object"}
        assert g.action_by_name("handover").is_move
        assert g.action_by_name("download file").tag("rate") == "2.0"
        assert g.locations() == ["transmitter_1", "transmitter_2"]
        assert len(g.edges) == 4

    def test_state_machine_preserved(self):
        restored = read_model(write_model(sample_model()))
        sm = restored.state_machine("Client")
        assert {s.name for s in sm.simple_states()} == {"GenerateRequest", "WaitForResponse"}
        assert sm.start_state().name == "GenerateRequest"
        rates = {t.trigger: t.rate for t in sm.transitions if t.trigger}
        assert rates == {"request": 2.0, "response": 4.0}

    def test_ids_preserved(self):
        model = sample_model()
        restored = read_model(write_model(model))
        original_ids = {e.xmi_id for e in model.all_elements()}
        restored_ids = {e.xmi_id for e in restored.all_elements()}
        assert original_ids == restored_ids

    def test_double_round_trip_is_stable(self):
        once = write_model(sample_model())
        twice = write_model(read_model(once))
        assert once == twice

    def test_fork_join_round_trip(self):
        g = ActivityGraph("parallel")
        init = g.add_initial()
        fork = g.add_fork("split")
        a, b = g.add_action("a"), g.add_action("b")
        join = g.add_join("barrier")
        g.connect(init, fork)
        g.connect(fork, a)
        g.connect(fork, b)
        g.connect(a, join)
        g.connect(b, join)
        model = UmlModel(name="fj")
        model.add_activity_graph(g)
        restored = read_model(write_model(model))
        kinds = {n.kind for n in restored.activity_graph("parallel").nodes.values()}
        assert "fork" in kinds and "join" in kinds
        fork_node = next(
            n for n in restored.activity_graph("parallel").nodes.values()
            if n.kind == "fork"
        )
        assert fork_node.name == "split"


class TestReaderValidation:
    def test_garbage_rejected(self):
        with pytest.raises(XmiError, match="well-formed"):
            read_model("this is not xml <")

    def test_wrong_root_rejected(self):
        with pytest.raises(XmiError, match="root"):
            read_model("<notXMI/>")

    def test_wrong_metamodel_rejected(self):
        text = write_model(sample_model()).replace('xmi.version="1.4"', 'xmi.version="2.0"')
        with pytest.raises(XmiError, match="metamodel"):
            read_model(text)

    def test_missing_content_rejected(self):
        with pytest.raises(XmiError, match="content"):
            read_model("<XMI xmi.version='1.2'><XMI.header/></XMI>")

    def test_foreign_element_rejected_without_preprocessor(self):
        text = add_synthetic_layout(write_model(sample_model()))
        # synthetic layout lives outside XMI.content, so craft one inside
        poisoned = text.replace(
            "<XMI.content>",
            "<XMI.content><Poseidon:Junk xmlns:Poseidon='com.gentleware.poseidon'/>",
        )
        with pytest.raises(XmiError, match="preprocessor"):
            read_model(poisoned)

    def test_unknown_uml_element_rejected(self):
        text = write_model(sample_model()).replace("UML:ActionState", "UML:Quantum")
        with pytest.raises(XmiError, match="metamodel"):
            read_model(text)


class TestMdr:
    def test_metamodel_attribute_validation(self):
        repo = Repository()
        repo.import_metamodel(UML14_METAMODEL)
        obj = repo.instantiate("ActionState")
        obj.set("name", "x")
        with pytest.raises(XmiError, match="no attribute"):
            obj.set("colour", "red")

    def test_required_attributes_enforced(self):
        repo = Repository()
        repo.import_metamodel(UML14_METAMODEL)
        obj = repo.instantiate("Transition")
        obj.set("xmi.id", "t1")
        with pytest.raises(XmiError, match="required"):
            obj.validate()

    def test_containment_rules_enforced(self):
        repo = Repository()
        repo.import_metamodel(UML14_METAMODEL)
        model = repo.instantiate("Model")
        action = repo.instantiate("ActionState")
        with pytest.raises(XmiError, match="may not contain"):
            model.add_child(action)

    def test_requires_metamodel_import(self):
        repo = Repository()
        with pytest.raises(XmiError, match="metamodel"):
            repo.instantiate("Model")

    def test_extents(self):
        repo = Repository()
        repo.import_metamodel(UML14_METAMODEL)
        repo.create_extent("a")
        with pytest.raises(XmiError, match="already"):
            repo.create_extent("a")
        obj = repo.instantiate("Model", "a")
        assert repo.extents["a"] == [obj]


class TestPoseidon:
    def test_preprocess_strips_layout(self):
        decorated = add_synthetic_layout(write_model(sample_model()))
        assert "Poseidon" in decorated
        clean = preprocess(decorated)
        assert "Poseidon" not in clean
        read_model(clean)  # now conforms to the metamodel

    def test_layout_extraction_keyed_by_id(self):
        model = sample_model()
        decorated = add_synthetic_layout(write_model(model))
        layout = extract_layout(decorated)
        assert model.xmi_id in layout
        block = layout[model.xmi_id]
        assert block.get("x") is not None

    def test_postprocess_restores_layout(self):
        model = sample_model()
        decorated = add_synthetic_layout(write_model(model))
        reflected = write_model(read_model(preprocess(decorated)))
        merged = postprocess(reflected, decorated)
        assert extract_layout(merged).keys() == extract_layout(decorated).keys()

    def test_postprocess_drops_layout_of_removed_elements(self):
        model = sample_model()
        decorated = add_synthetic_layout(write_model(model))
        # reflect a model with the state machine removed
        smaller = read_model(preprocess(decorated))
        smaller.state_machines.clear()
        merged = postprocess(write_model(smaller), decorated)
        remaining = extract_layout(merged)
        sm_id = model.state_machines[0].xmi_id
        assert sm_id not in remaining
        assert model.activity_graphs[0].xmi_id in remaining
