"""Unit tests for extraction-restriction validation (paper section 6)."""

from repro.uml import ActivityGraph, validate_for_extraction


def minimal_mobile_graph() -> ActivityGraph:
    g = ActivityGraph("mobile")
    init = g.add_initial()
    write = g.add_action("write")
    move = g.add_action("transmit", move=True)
    f0 = g.add_object("f: FILE", atloc="p1")
    f1 = g.add_object("f*: FILE", atloc="p1")
    f2 = g.add_object("f**: FILE", atloc="p2")
    g.connect(init, write)
    g.connect(write, move)
    g.connect(f0, write)
    g.connect(write, f1)
    g.connect(f1, move)
    g.connect(move, f2)
    return g


class TestCleanDiagram:
    def test_minimal_mobile_graph_passes(self):
        assert validate_for_extraction(minimal_mobile_graph()) == []


class TestInitialNodes:
    def test_missing_initial(self):
        g = ActivityGraph("g")
        g.add_action("a")
        problems = validate_for_extraction(g)
        assert any("initial" in p for p in problems)

    def test_duplicate_initial(self):
        g = minimal_mobile_graph()
        g.add_initial("again")
        assert any("initial" in p for p in validate_for_extraction(g))


class TestMobilityTags:
    def test_missing_atloc_flagged(self):
        g = minimal_mobile_graph()
        untagged = g.add_object("g: FILE")  # no atloc
        g.connect(g.action_by_name("write"), untagged)
        problems = validate_for_extraction(g)
        assert any("atloc" in p for p in problems)

    def test_atloc_not_required_without_mobility(self):
        g = ActivityGraph("local")
        init = g.add_initial()
        a = g.add_action("work")
        obj = g.add_object("f: FILE")  # no atloc, no moves anywhere
        g.connect(init, a)
        g.connect(obj, a)
        assert validate_for_extraction(g) == []


class TestMoveBalance:
    def test_unbalanced_move_flagged(self):
        g = minimal_mobile_graph()
        move = g.action_by_name("transmit")
        extra = g.add_object("x: FILE", atloc="p2")
        g.connect(move, extra)  # now 1 in, 2 out
        problems = validate_for_extraction(g)
        assert any("balanced" in p for p in problems)

    def test_move_without_objects_flagged(self):
        g = ActivityGraph("g")
        init = g.add_initial()
        mv = g.add_action("teleport", move=True)
        g.connect(init, mv)
        problems = validate_for_extraction(g)
        assert any("moves no object" in p for p in problems)


class TestControlFlow:
    def test_three_way_branch_flagged(self):
        g = minimal_mobile_graph()
        w = g.action_by_name("write")
        for i in range(3):
            g.connect(w, g.add_action(f"alt{i}"))
        problems = validate_for_extraction(g)
        assert any("binary choice" in p for p in problems)

    def test_degenerate_decision_flagged(self):
        g = minimal_mobile_graph()
        d = g.add_decision()
        g.connect(g.action_by_name("write"), d)
        g.connect(d, g.action_by_name("transmit"))
        problems = validate_for_extraction(g)
        assert any("decision" in p for p in problems)

    def test_object_to_object_edge_flagged(self):
        g = minimal_mobile_graph()
        a = g.add_object("y: FILE", atloc="p1")
        b = g.add_object("z: FILE", atloc="p1")
        g.connect(a, b)
        problems = validate_for_extraction(g)
        assert any("directly" in p for p in problems)

    def test_outgoing_from_final_flagged(self):
        g = minimal_mobile_graph()
        fin = g.add_final()
        g.connect(fin, g.action_by_name("write"))
        problems = validate_for_extraction(g)
        assert any("final" in p for p in problems)


class TestVariants:
    def test_decreasing_variant_flagged(self):
        g = ActivityGraph("g")
        init = g.add_initial()
        a = g.add_action("undo")
        before = g.add_object("f**: FILE", atloc="p1")
        after = g.add_object("f: FILE", atloc="p1")
        g.connect(init, a)
        g.connect(before, a)
        g.connect(a, after)
        problems = validate_for_extraction(g)
        assert any("variants must not decrease" in p for p in problems)


class TestForkJoin:
    """Rejection paths for the concurrency pseudostates (the fuzz
    generator never emits them, so these rules only fire on hand-built
    or imported diagrams — pin them explicitly)."""

    def test_degenerate_fork_flagged(self):
        g = minimal_mobile_graph()
        fork = g.add_fork()
        g.connect(g.action_by_name("write"), fork)
        g.connect(fork, g.add_action("only_branch"))
        problems = validate_for_extraction(g)
        assert any("fork" in p and "at least 2 branches" in p for p in problems)

    def test_wellformed_fork_join_pass(self):
        g = minimal_mobile_graph()
        fork = g.add_fork()
        join = g.add_join()
        g.connect(g.action_by_name("write"), fork)
        for i in range(2):
            branch = g.add_action(f"branch{i}")
            g.connect(fork, branch)
            g.connect(branch, join)
        g.connect(join, g.add_action("after"))
        assert validate_for_extraction(g) == []

    def test_join_with_single_input_flagged(self):
        g = minimal_mobile_graph()
        join = g.add_join()
        g.connect(g.action_by_name("write"), join)
        problems = validate_for_extraction(g)
        assert any("join" in p and "at least 2" in p for p in problems)

    def test_join_with_multiple_outputs_flagged(self):
        g = minimal_mobile_graph()
        join = g.add_join()
        for i in range(2):
            feeder = g.add_action(f"feeder{i}")
            g.connect(g.action_by_name("write"), feeder)
            g.connect(feeder, join)
        g.connect(join, g.add_action("out0"))
        g.connect(join, g.add_action("out1"))
        problems = validate_for_extraction(g)
        assert any("join" in p and "at most 1" in p for p in problems)


class TestObjectNames:
    def test_malformed_object_name_reported_not_raised(self):
        from repro.uml.activity import ActivityNode

        g = minimal_mobile_graph()
        # add_object validates eagerly, so smuggle the bad node in the
        # way an XMI import would: straight into the node table
        g._add(ActivityNode(name="not a box", kind="object"))
        problems = validate_for_extraction(g)
        assert any("not a box" in p and "obj: Class" in p for p in problems)

    def test_stars_and_underscores_accepted(self):
        g = minimal_mobile_graph()
        g.add_object("long_name_2***: Some_Class", atloc="p1")
        assert validate_for_extraction(g) == []
