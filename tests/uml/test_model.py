"""Unit tests for UML core elements, activity graphs and statecharts."""

import pytest

from repro.exceptions import UmlModelError
from repro.uml import (
    STEREOTYPE_MOVE,
    ActivityGraph,
    State,
    StateMachine,
    UmlElement,
    UmlModel,
)


class TestUmlElement:
    def test_ids_are_unique(self):
        a, b = UmlElement(name="a"), UmlElement(name="b")
        assert a.xmi_id != b.xmi_id

    def test_stereotypes(self):
        el = UmlElement(name="x")
        assert not el.is_move
        el.add_stereotype(STEREOTYPE_MOVE)
        assert el.is_move

    def test_tagged_values_stringify(self):
        el = UmlElement(name="x")
        el.set_tag("rate", 2.5)
        assert el.tag("rate") == "2.5"
        assert el.tag("missing") is None

    def test_atloc_shortcut(self):
        el = UmlElement(name="x")
        el.set_tag("atloc", "p1")
        assert el.atloc == "p1"


class TestActivityGraph:
    def test_object_name_parsing(self):
        g = ActivityGraph("g")
        obj = g.add_object("f**: FILE", atloc="p1")
        name, stars, cls = obj.object_parts()
        assert (name, stars, cls) == ("f", 2, "FILE")

    def test_malformed_object_name_rejected(self):
        g = ActivityGraph("g")
        with pytest.raises(UmlModelError, match="obj: Class"):
            g.add_object("not a name")

    def test_object_parts_on_action_rejected(self):
        g = ActivityGraph("g")
        action = g.add_action("work")
        with pytest.raises(UmlModelError, match="not an object"):
            action.object_parts()

    def test_connect_unknown_node_rejected(self):
        g = ActivityGraph("g")
        a = g.add_action("a")
        with pytest.raises(UmlModelError, match="endpoint"):
            g.connect(a, "nonexistent-id")

    def test_object_flow_queries(self):
        g = ActivityGraph("g")
        a = g.add_action("write")
        fin = g.add_object("f: FILE", atloc="p1")
        fout = g.add_object("f*: FILE", atloc="p1")
        g.connect(fin, a)
        g.connect(a, fout)
        assert g.inputs_of(a) == [fin]
        assert g.outputs_of(a) == [fout]
        assert g.control_successors(a) == []

    def test_locations_in_first_appearance_order(self):
        g = ActivityGraph("g")
        g.add_object("a: X", atloc="p2")
        g.add_object("b: X", atloc="p1")
        g.add_object("c: X", atloc="p2")
        assert g.locations() == ["p2", "p1"]

    def test_move_actions(self):
        g = ActivityGraph("g")
        g.add_action("stay")
        mv = g.add_action("handover", move=True)
        assert g.move_actions() == [mv]

    def test_initial_node_uniqueness(self):
        g = ActivityGraph("g")
        with pytest.raises(UmlModelError, match="initial"):
            g.initial_node()
        g.add_initial()
        g.initial_node()
        g.add_initial("second")
        with pytest.raises(UmlModelError, match="initial"):
            g.initial_node()

    def test_action_by_name_missing(self):
        g = ActivityGraph("g")
        with pytest.raises(UmlModelError, match="no action"):
            g.action_by_name("ghost")

    def test_rate_tag_on_action(self):
        g = ActivityGraph("g")
        a = g.add_action("download", rate=1.5)
        assert a.tag("rate") == "1.5"


class TestStateMachine:
    def test_duplicate_state_name_rejected(self):
        sm = StateMachine("M")
        sm.add_state("S")
        with pytest.raises(UmlModelError, match="already"):
            sm.add_state("S")

    def test_transition_endpoints_validated(self):
        sm = StateMachine("M")
        s = sm.add_state("S")
        with pytest.raises(UmlModelError, match="not a state"):
            sm.add_transition(s, "ghost", "go")

    def test_start_state(self):
        sm = StateMachine("M")
        init = sm.add_initial()
        s = sm.add_state("S")
        sm.add_transition(init, s, "")
        assert sm.start_state() is s

    def test_start_state_requires_single_outgoing(self):
        sm = StateMachine("M")
        init = sm.add_initial()
        s1, s2 = sm.add_state("A"), sm.add_state("B")
        sm.add_transition(init, s1, "")
        sm.add_transition(init, s2, "")
        with pytest.raises(UmlModelError, match="exactly"):
            sm.start_state()

    def test_transition_rate(self):
        sm = StateMachine("M")
        a, b = sm.add_state("A"), sm.add_state("B")
        tr = sm.add_transition(a, b, "go", rate=3.5)
        assert tr.rate == 3.5
        tr2 = sm.add_transition(b, a, "back")
        assert tr2.rate is None

    def test_triggers_deduplicated_in_order(self):
        sm = StateMachine("M")
        a, b = sm.add_state("A"), sm.add_state("B")
        sm.add_transition(a, b, "go")
        sm.add_transition(b, a, "back")
        sm.add_transition(a, a, "go")
        assert sm.triggers() == ["go", "back"]

    def test_kind_validation(self):
        with pytest.raises(UmlModelError, match="kind"):
            State(name="s", kind="nonsense")


class TestUmlModel:
    def test_lookup_by_name(self):
        m = UmlModel(name="m")
        g = ActivityGraph("flow")
        m.add_activity_graph(g)
        assert m.activity_graph("flow") is g
        with pytest.raises(UmlModelError):
            m.activity_graph("other")

    def test_duplicate_graph_rejected(self):
        m = UmlModel(name="m")
        m.add_activity_graph(ActivityGraph("g"))
        with pytest.raises(UmlModelError, match="already"):
            m.add_activity_graph(ActivityGraph("g"))

    def test_element_by_id(self):
        m = UmlModel(name="m")
        g = ActivityGraph("g")
        node = g.add_action("a")
        m.add_activity_graph(g)
        assert m.element_by_id(node.xmi_id) is node
        with pytest.raises(UmlModelError):
            m.element_by_id("missing")
