"""The frozen 25-seed golden mini-corpus (regression pin).

Each golden records a seed's scenario fingerprint (SHA-256 over both
renderings and the rate regime), the marking-space shape, and the
steady-state measures from *both* the extract path and the direct
construction.  Any change to the generator, the extractor, the PEPA-net
parser/printer or the solvers that moves these is caught here; run
``pytest --update-goldens`` after an intentional change and review the
diff under ``tests/goldens/corpus/``.
"""

import pytest

from repro.scenarios import generate_scenario
from repro.scenarios.fuzz import compare_spec

GOLDEN_SEEDS = tuple(range(25))


def corpus_document(seed: int) -> dict:
    from repro.extract import RateTable, extract_activity_diagram
    from repro.pepanets.measures import analyse_net
    from repro.pepanets.parser import parse_net
    from repro.uml.xmi.reader import read_model

    scenario = generate_scenario(seed)
    model = read_model(scenario.xmi_text())
    extraction = extract_activity_diagram(
        model.activity_graphs[0],
        RateTable.from_numbers(scenario.rates),
        reset_rate=scenario.spec.reset_rate,
    )
    extracted = analyse_net(extraction.net)
    direct = analyse_net(parse_net(scenario.net_text()))
    return {
        "seed": seed,
        "fingerprint": scenario.fingerprint(),
        "n_tokens": len(scenario.spec.tokens),
        "n_places": len(direct.net.places),
        "extract": {
            "n_states": extracted.n_states,
            "n_arcs": len(extracted.space.arcs),
            "throughputs": extracted.all_throughputs(),
            "locations": extracted.location_distribution(),
        },
        "direct": {
            "n_states": direct.n_states,
            "n_arcs": len(direct.space.arcs),
            "throughputs": direct.all_throughputs(),
            "locations": direct.location_distribution(),
        },
    }


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_corpus_seed_matches_golden(golden, seed):
    golden(f"corpus/seed-{seed:02d}", corpus_document(seed), rtol=1e-8)


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_corpus_seed_paths_agree(seed):
    assert compare_spec(generate_scenario(seed).spec) == []
