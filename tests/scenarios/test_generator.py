"""The scenario generator: determinism, structural invariants, and the
validity of every rendering against the rest of the tool chain."""

import pytest

from repro.scenarios import (
    GeneratorParams,
    corpus_net,
    corpus_source,
    generate_scenario,
    scenario_from_spec,
    spec_from_json,
    spec_to_json,
)
from repro.scenarios.generator import _place_order, _token_order, _token_visited

SEEDS = range(0, 40)


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        for seed in (0, 7, 123, 99991):
            a, b = generate_scenario(seed), generate_scenario(seed)
            assert a.spec == b.spec
            assert a.xmi_text() == b.xmi_text()
            assert a.net_text() == b.net_text()
            assert a.fingerprint() == b.fingerprint()

    def test_different_seeds_differ(self):
        fingerprints = {generate_scenario(seed).fingerprint() for seed in SEEDS}
        assert len(fingerprints) == len(SEEDS)

    def test_xmi_ids_are_pinned_not_global(self):
        # ids must not depend on how many UML elements other code
        # created earlier in the process
        from repro.uml.activity import ActivityGraph

        before = generate_scenario(11).xmi_text()
        g = ActivityGraph("noise")
        g.add_initial()
        g.add_action("noise")
        assert generate_scenario(11).xmi_text() == before

    def test_rates_survive_g_formatting(self):
        # %g is what the PEPA printers emit; every generated rate must
        # round-trip through it exactly or the two paths would diverge
        for seed in SEEDS:
            for name, rate in generate_scenario(seed).spec.rates:
                assert float(f"{rate:g}") == rate, (seed, name, rate)


class TestStructuralInvariants:
    def test_decision_only_in_single_token_static_free_scenarios(self):
        for seed in range(200):
            spec = generate_scenario(seed).spec
            if spec.decision is not None:
                assert len(spec.tokens) == 1
                assert not any(s.kind == "static" for s in spec.chain)
                assert all(len(branch) >= 1 for branch in spec.decision.branches)

    def test_statics_pinned_to_visited_places(self):
        for seed in range(200):
            spec = generate_scenario(seed).spec
            visited = {
                loc
                for t in range(len(spec.tokens))
                for loc in _token_visited(spec, t)
            }
            for step in spec.chain:
                if step.kind == "static":
                    assert step.target in visited

    def test_every_action_has_a_rate(self):
        for seed in range(100):
            spec = generate_scenario(seed).spec
            rates = dict(spec.rates)
            for step in spec.chain:
                assert step.action in rates
            if spec.decision:
                for branch in spec.decision.branches:
                    for action in branch:
                        assert action in rates

    def test_corpus_diversity(self):
        # the statics pool used to be drained in place by the chain
        # merge, silently disabling the cooperation variant — pin that
        # every scenario family actually occurs
        flavours = {"coop": 0, "decision": 0, "move": 0, "multi": 0}
        for seed in range(300):
            spec = generate_scenario(seed).spec
            flavours["decision"] += spec.decision is not None
            flavours["move"] += any(s.kind == "move" for s in spec.chain)
            flavours["multi"] += len(spec.tokens) > 1
            flavours["coop"] += any(
                s.kind == "static" and not s.action.startswith("st")
                for s in spec.chain
            )
        for flavour, count in flavours.items():
            assert count > 0, f"no {flavour} scenario in 300 seeds"

    def test_params_bound_the_draw(self):
        params = GeneratorParams(max_locations=1, max_tokens=1,
                                 decision_prob=0.0, max_static_activities=0)
        for seed in range(30):
            spec = generate_scenario(seed, params).spec
            assert len(spec.tokens) == 1
            assert spec.decision is None
            assert not any(s.kind in ("move", "static") for s in spec.chain)
            assert _place_order(spec) == ["Loc0"]


class TestRenderings:
    def test_xmi_validates_for_extraction(self):
        from repro.uml import validate_for_extraction
        from repro.uml.xmi.reader import read_model

        for seed in SEEDS:
            model = read_model(generate_scenario(seed).xmi_text())
            assert validate_for_extraction(model.activity_graphs[0]) == []

    def test_net_text_is_wellformed(self):
        from repro.pepanets.parser import parse_net
        from repro.pepanets.wellformed import check_net

        for seed in SEEDS:
            report = check_net(parse_net(generate_scenario(seed).net_text()))
            assert report.ok, (seed, report)

    def test_place_order_matches_graph_locations(self):
        for seed in SEEDS:
            scenario = generate_scenario(seed)
            graph = scenario.build_model().activity_graphs[0]
            assert graph.locations() == _place_order(scenario.spec)

    def test_token_order_is_chain_first_appearance(self):
        spec = generate_scenario(3).spec
        order = _token_order(spec)
        firsts = [s.token for s in spec.chain if s.token is not None]
        seen: list[int] = []
        for t in firsts:
            if t not in seen:
                seen.append(t)
        assert order == seen


class TestSpecJson:
    def test_round_trip(self):
        for seed in SEEDS:
            spec = generate_scenario(seed).spec
            assert spec_from_json(spec_to_json(spec)) == spec

    def test_rebuilt_scenario_renders_identically(self):
        scenario = generate_scenario(17)
        clone = scenario_from_spec(spec_from_json(spec_to_json(scenario.spec)))
        assert clone.xmi_text() == scenario.xmi_text()
        assert clone.net_text() == scenario.net_text()

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="repro-scenario/1"):
            spec_from_json('{"schema": "something-else"}')


class TestCorpusEntryPoints:
    def test_corpus_net_is_analysable(self):
        from repro.pepanets.measures import analyse_net

        analysis = analyse_net(corpus_net(0))
        assert analysis.n_states > 0

    def test_corpus_source_parses_to_same_marking_space(self):
        from repro.pepanets.measures import analyse_net
        from repro.pepanets.parser import parse_net

        direct = analyse_net(corpus_net(5))
        parsed = analyse_net(parse_net(corpus_source(5)))
        assert direct.n_states == parsed.n_states
        assert direct.all_throughputs() == parsed.all_throughputs()
