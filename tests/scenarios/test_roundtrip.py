"""Property-based round-trip battery over the generated corpus.

Two fixed points the tool chain promises:

* textual PEPA nets — ``net_source`` → ``parse_net`` → ``str`` →
  ``parse_net`` converges after one hop (printing is a fixed point of
  parse∘print);
* XMI — ``write_model`` → ``read_model`` → ``write_model`` preserves
  the document bytes, and the re-read model has the same structure.

Scenario seeds make good property inputs: each one is a fresh,
internally consistent model drawn from the whole parameter space, not a
hand-picked example.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pepanets.parser import parse_net
from repro.scenarios import generate_scenario
from repro.uml.xmi.reader import read_model
from repro.uml.xmi.writer import write_model

seeds = st.integers(min_value=0, max_value=99_999)

battery = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@battery
@given(seed=seeds)
def test_net_print_parse_is_fixed_point(seed):
    text = generate_scenario(seed).net_text()
    first = parse_net(text)
    printed = str(first)
    second = parse_net(printed)
    assert str(second) == printed
    assert sorted(second.places) == sorted(first.places)
    assert sorted(second.transitions) == sorted(first.transitions)


@battery
@given(seed=seeds)
def test_xmi_write_read_write_is_stable(seed):
    scenario = generate_scenario(seed)
    text = scenario.xmi_text()
    model = read_model(text)
    assert write_model(model) == text


@battery
@given(seed=seeds)
def test_xmi_reader_preserves_structure(seed):
    scenario = generate_scenario(seed)
    original = scenario.build_model().activity_graphs[0]
    recovered = read_model(scenario.xmi_text()).activity_graphs[0]
    assert list(recovered.nodes) == list(original.nodes)
    for node_id, node in original.nodes.items():
        twin = recovered.nodes[node_id]
        assert (twin.name, twin.kind) == (node.name, node.kind)
        assert twin.stereotypes == node.stereotypes
        assert twin.tagged_values == node.tagged_values
    assert [(e.source, e.target) for e in recovered.edges] == [
        (e.source, e.target) for e in original.edges
    ]
    assert recovered.locations() == original.locations()
