"""The differential oracle: it passes on honest scenarios, it *fails*
when either path is perturbed, and its shrinker/reproducer machinery
produces minimal, replayable artefacts."""

import json

from repro.scenarios import generate_scenario, scenario_from_spec, spec_from_json
from repro.scenarios.fuzz import (
    Mismatch,
    SeedResult,
    compare_seed,
    compare_spec,
    dump_reproducer,
    minimise_spec,
    run_sweep,
    within_tolerance,
)
from repro.scenarios.generator import Scenario, _static_steps


class TestTolerance:
    def test_exact_agreement(self):
        assert within_tolerance(1.234, 1.234)

    def test_relative_window(self):
        assert within_tolerance(100.0, 100.0 + 5e-7)
        assert not within_tolerance(100.0, 100.0 + 5e-5)

    def test_absolute_floor_near_zero(self):
        assert within_tolerance(0.0, 5e-9)
        assert not within_tolerance(0.0, 5e-8)


class TestOracleAgreement:
    def test_small_sweep_is_clean(self):
        report = run_sweep(range(0, 12))
        assert report.ok
        assert report.completed == 12
        assert not report.budget_exhausted

    def test_single_seed(self):
        result = compare_seed(42)
        assert result.ok
        assert result.mismatches == []


class TestOracleSensitivity:
    """A vacuous oracle would pass every sweep; prove it can fail."""

    def test_detects_perturbed_rate(self, monkeypatch):
        spec = generate_scenario(3).spec
        original = Scenario.net_text

        # perturb a plain activity (a move's local rate is overridden by
        # its net-transition rate, so perturbing one would be masked)
        name, rate = next((n, r) for n, r in spec.rates if n.startswith("act"))

        def perturbed(self):
            text = original(self)
            return text.replace(f"({name}, {rate:g})",
                                f"({name}, {rate * 1.001:g})")

        monkeypatch.setattr(Scenario, "net_text", perturbed)
        mismatches = compare_spec(spec)
        assert mismatches
        assert any("throughput" in m.field or "location" in m.field
                   for m in mismatches)

    def test_detects_pipeline_crash_as_finding(self, monkeypatch):
        from repro.exceptions import ExtractionError

        def boom(self):
            raise ExtractionError("injected")

        monkeypatch.setattr(Scenario, "xmi_text", boom)
        mismatches = compare_spec(generate_scenario(1).spec)
        assert [m.field for m in mismatches] == ["pipeline-error"]
        assert "injected" in mismatches[0].detail


class TestShrinking:
    def test_minimise_reaches_fixpoint(self):
        # pick a seed with statics: the predicate "has a static" must
        # shrink to a single static step and a single token activity
        seed = next(s for s in range(100)
                    if _static_steps(generate_scenario(s).spec))
        spec = generate_scenario(seed).spec

        def has_static(candidate):
            return bool(_static_steps(candidate))

        small = minimise_spec(spec, has_static)
        assert len(_static_steps(small)) == 1
        assert len([s for s in small.chain if s.kind != "static"]) == 1
        assert len(small.tokens) == 1

    def test_minimised_spec_still_renders(self):
        spec = generate_scenario(7).spec
        small = minimise_spec(spec, lambda candidate: True)
        scenario = scenario_from_spec(small)
        assert scenario.net_text()
        assert scenario.xmi_text()

    def test_normalise_drops_orphaned_statics(self):
        # dropping the token that visits a static's place must drop the
        # static too, or the extractor would reject the reproducer
        seed = next(
            s for s in range(200)
            if _static_steps(generate_scenario(s).spec)
            and len(generate_scenario(s).spec.tokens) > 1
        )
        spec = generate_scenario(seed).spec
        small = minimise_spec(spec, lambda candidate: True)
        assert compare_spec(small) == []  # still a valid, agreeing scenario


class TestReproducers:
    def test_dump_layout(self, tmp_path):
        spec = generate_scenario(9).spec
        result = SeedResult(
            seed=9, ok=False,
            mismatches=[Mismatch("n_states", "sizes differ", 10, 12)],
            spec=spec, minimised=spec,
        )
        directory = tmp_path / "repro"
        path = dump_reproducer(directory, result)
        files = {p.name for p in (directory / "seed-9").iterdir()}
        assert files == {"spec.json", "minimised.json", "scenario.xmi",
                         "scenario.pepanet", "rates.json", "report.json"}
        report = json.loads((directory / "seed-9" / "report.json").read_text())
        assert report["seed"] == 9
        assert report["mismatches"][0]["field"] == "n_states"
        assert path.endswith("seed-9")

    def test_spec_json_replays(self, tmp_path):
        spec = generate_scenario(9).spec
        result = SeedResult(seed=9, ok=False, mismatches=[], spec=spec)
        dump_reproducer(tmp_path, result)
        replayed = spec_from_json((tmp_path / "seed-9" / "spec.json").read_text())
        assert replayed == spec


class TestSweepDriver:
    def test_divergent_seed_is_reported_and_dumped(self, tmp_path, monkeypatch):
        def rigged(spec, **kwargs):
            if spec.seed == 2:
                return [Mismatch("n_states", "rigged", 1, 2)]
            return []

        monkeypatch.setattr("repro.scenarios.fuzz.compare_spec", rigged)
        report = run_sweep(range(0, 4), out_dir=tmp_path, minimise=False)
        assert not report.ok
        assert [r.seed for r in report.divergent] == [2]
        assert (tmp_path / "seed-2" / "spec.json").exists()
        assert "seed 2" in report.summary()

    def test_budget_exhaustion_stops_gracefully(self):
        report = run_sweep(range(0, 50), deadline=1e-9)
        assert report.budget_exhausted
        assert report.completed < 50
        assert report.ok  # unreached seeds are not failures
        # The in-flight seed is named so the sweep can be resumed there.
        assert report.exhausted_seed == report.completed
        assert (
            f"(budget exhausted at seed {report.exhausted_seed})"
            in report.summary()
        )
        assert report.as_json()["exhausted_seed"] == report.exhausted_seed

    def test_report_json_shape(self):
        report = run_sweep(range(0, 3))
        doc = report.as_json()
        assert doc["requested"] == 3
        assert doc["completed"] == 3
        assert doc["divergent"] == []
