"""Unit tests for shared utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.utils import (
    format_rate,
    format_table,
    fresh_name,
    sanitize_identifier,
    stable_sorted,
    topological_order,
)


class TestNaming:
    def test_sanitize_spaces(self):
        assert sanitize_identifier("detect weak signal") == "detect_weak_signal"

    def test_sanitize_punctuation(self):
        assert sanitize_identifier("f*: FILE", upper_initial=True) == "F_FILE"

    def test_sanitize_leading_digits(self):
        assert sanitize_identifier("123go") == "go"

    def test_sanitize_empty_fallback(self):
        assert sanitize_identifier("!!!") == "x"

    def test_upper_initial(self):
        assert sanitize_identifier("file", upper_initial=True) == "File"

    def test_lower_initial_default(self):
        assert sanitize_identifier("Transmit") == "transmit"

    def test_fresh_name_no_clash(self):
        assert fresh_name("P", set()) == "P"

    def test_fresh_name_increments(self):
        assert fresh_name("P", {"P"}) == "P_2"
        assert fresh_name("P", {"P", "P_2", "P_3"}) == "P_4"

    @given(st.text(min_size=1, max_size=30))
    def test_sanitize_always_valid(self, raw):
        ident = sanitize_identifier(raw)
        assert ident
        assert ident[0].isalpha()
        assert all(c.isalnum() or c == "_" for c in ident)


class TestOrdering:
    def test_stable_sorted_mixed_types(self):
        out = stable_sorted([3, "b", 1, "a"])
        assert out == [1, 3, "a", "b"]

    def test_stable_sorted_tuples(self):
        out = stable_sorted([(2, "x"), (1, "y")])
        assert out == [(1, "y"), (2, "x")]

    def test_topological_order_linear(self):
        order = topological_order(["a", "b", "c"], {"a": ["b"], "b": ["c"]})
        assert order == ["a", "b", "c"]

    def test_topological_order_cycle_raises(self):
        with pytest.raises(ReproError, match="cycle"):
            topological_order(["a", "b"], {"a": ["b"], "b": ["a"]})

    def test_topological_order_unknown_target(self):
        with pytest.raises(ReproError, match="not a node"):
            topological_order(["a"], {"a": ["ghost"]})

    def test_topological_deterministic_ties(self):
        order1 = topological_order(["b", "a", "c"], {})
        order2 = topological_order(["c", "a", "b"], {})
        assert order1 == order2 == ["a", "b", "c"]


class TestFormatting:
    def test_format_rate_plain(self):
        assert format_rate(0.25) == "0.25"
        assert format_rate(0.0) == "0"

    def test_format_rate_scientific(self):
        assert "e" in format_rate(1.2e-9)
        assert "e" in format_rate(3.4e12)

    def test_format_rate_trims_zeros(self):
        assert format_rate(2.0) == "2"

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bb", 10.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert lines[2].split()[0] == "a"

    def test_format_table_right_aligns_numbers(self):
        table = format_table(["v"], [[1.0], [100.0]])
        lines = table.splitlines()
        assert lines[2].endswith("1")
        assert lines[3].endswith("100")
