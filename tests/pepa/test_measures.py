"""Unit tests for model-level measures (analyse / ModelAnalysis)."""

import math

import pytest

from repro.pepa import analyse, parse_model


class TestTwoStateAnalytic:
    """On/Off with rates 1 (off) and 3 (on): pi = (3/4, 1/4) analytically."""

    def test_state_probabilities(self, two_state_model):
        result = analyse(two_state_model)
        probs = dict(result.state_probabilities())
        p_on = probs["On"]
        p_off = probs["Off"]
        assert math.isclose(p_on, 0.75, rel_tol=1e-9)
        assert math.isclose(p_off, 0.25, rel_tol=1e-9)

    def test_throughputs_balance(self, two_state_model):
        result = analyse(two_state_model)
        # each switch happens equally often in a 2-cycle
        assert math.isclose(result.throughput("switch_on"), result.throughput("switch_off"),
                            rel_tol=1e-9)
        assert math.isclose(result.throughput("switch_off"), 0.75 * 1.0, rel_tol=1e-9)

    def test_unknown_action_throughput_is_zero(self, two_state_model):
        assert analyse(two_state_model).throughput("no_such_action") == 0.0


class TestFileModel:
    def test_flow_balance_open_equals_close(self, file_model):
        """Conservation: every open is eventually closed, so in steady
        state open and close throughputs agree."""
        result = analyse(file_model)
        opens = result.throughput("openread") + result.throughput("openwrite")
        closes = result.throughput("close")
        assert math.isclose(opens, closes, rel_tol=1e-9)

    def test_read_beats_write_throughput(self, file_model):
        """r_read=10 vs r_write=4 with symmetric branching, so reads
        complete more often per unit time."""
        result = analyse(file_model)
        assert result.throughput("read") > result.throughput("write")

    def test_local_state_probabilities_partition(self, file_model):
        result = analyse(file_model)
        total = (
            result.probability_of_local_state("File")
            + result.probability_of_local_state("InStream")
            + result.probability_of_local_state("OutStream")
        )
        assert math.isclose(total, 1.0, rel_tol=1e-9)

    def test_local_state_word_boundary(self, file_model):
        """'File' must not match 'FileReader' (every state contains the
        reader component)."""
        p_closed = analyse(file_model).probability_of_local_state("File")
        assert p_closed < 1.0

    def test_utilisation_predicate(self, file_model):
        result = analyse(file_model)
        u = result.utilisation(lambda i, lbl: "InStream" in lbl)
        assert math.isclose(u, result.probability_of_local_state("InStream"), rel_tol=1e-12)

    def test_all_throughputs_keys(self, file_model):
        ths = analyse(file_model).all_throughputs()
        assert set(ths) == {"openread", "openwrite", "read", "write", "close"}
        assert all(v > 0 for v in ths.values())


class TestSolverChoice:
    @pytest.mark.parametrize("solver", ["direct", "gmres", "bicgstab", "power", "gauss_seidel", "jacobi"])
    def test_all_solvers_agree(self, file_model, solver):
        result = analyse(file_model, solver=solver)
        reference = analyse(file_model, solver="direct")
        for (_, p), (_, q) in zip(result.state_probabilities(), reference.state_probabilities()):
            assert math.isclose(p, q, abs_tol=1e-6)


class TestTimeDependentMeasures:
    def test_transient_converges_to_steady(self, two_state_model):
        result = analyse(two_state_model)
        p_inf = result.probability_of_local_state("On")
        p_t = result.transient_probability_of_local_state("On", 100.0)
        assert math.isclose(p_t, p_inf, abs_tol=1e-8)

    def test_transient_at_zero_is_initial(self, two_state_model):
        result = analyse(two_state_model)
        assert result.transient_probability_of_local_state("On", 0.0) == 1.0
        assert result.transient_probability_of_local_state("Off", 0.0) == 0.0

    def test_mean_time_to_local_state(self, two_state_model):
        result = analyse(two_state_model)
        # On --(rate 1)--> Off: mean 1.0
        assert math.isclose(result.mean_time_to_local_state("Off"), 1.0, rel_tol=1e-9)
        assert result.mean_time_to_local_state("On") == 0.0  # already there

    def test_unknown_local_state_rejected(self, two_state_model):
        from repro.exceptions import SolverError

        result = analyse(two_state_model)
        with pytest.raises(SolverError, match="Nowhere"):
            result.mean_time_to_local_state("Nowhere")


class TestErlangPipeline:
    def test_three_stage_cycle_uniform(self):
        """A 3-stage cycle with equal rates spends 1/3 of time per stage."""
        model = parse_model(
            "S1 = (go1, 2.0).S2; S2 = (go2, 2.0).S3; S3 = (go3, 2.0).S1; S1"
        )
        result = analyse(model)
        for name in ("S1", "S2", "S3"):
            assert math.isclose(result.probability_of_local_state(name), 1 / 3, rel_tol=1e-9)

    def test_rates_shift_residence(self):
        """Slower stages accumulate proportionally more probability:
        pi_i is proportional to 1/rate_i around a cycle."""
        model = parse_model(
            "S1 = (go1, 1.0).S2; S2 = (go2, 2.0).S3; S3 = (go3, 4.0).S1; S1"
        )
        result = analyse(model)
        p1 = result.probability_of_local_state("S1")
        p2 = result.probability_of_local_state("S2")
        p3 = result.probability_of_local_state("S3")
        assert math.isclose(p1 / p2, 2.0, rel_tol=1e-9)
        assert math.isclose(p2 / p3, 2.0, rel_tol=1e-9)
