"""Unit tests for state-space derivation."""

import pytest

from repro.exceptions import StateSpaceError, WellFormednessError
from repro.pepa import derive, parse_model

FILE_SRC = """
r_o = 2.0; r_r = 10.0; r_w = 4.0; r_c = 1.0;
File = (openread, r_o).InStream + (openwrite, r_o).OutStream;
InStream = (read, r_r).InStream + (close, r_c).File;
OutStream = (write, r_w).OutStream + (close, r_c).File;
FileReader = (openread, T).Reading + (openwrite, T).Writing;
Reading = (read, T).Reading + (close, T).FileReader;
Writing = (write, T).Writing + (close, T).FileReader;
File <openread, openwrite, read, write, close> FileReader
"""


class TestExploration:
    def test_two_state_cycle(self, two_state_model):
        space = derive(two_state_model)
        assert space.size == 2
        assert len(space.arcs) == 2
        assert space.initial == 0

    def test_file_model_space(self, file_model):
        space = derive(file_model)
        # File/Reader, InStream/Reading, OutStream/Writing
        assert space.size == 3
        assert space.actions() == {"openread", "openwrite", "read", "write", "close"}

    def test_deterministic_state_order(self, file_model):
        s1 = derive(file_model)
        s2 = derive(parse_model(FILE_SRC))
        assert [str(x) for x in s1.states] == [str(x) for x in s2.states]
        assert s1.arcs == s2.arcs

    def test_no_deadlocks_in_cyclic_model(self, file_model):
        assert derive(file_model).deadlocks() == []

    def test_cooperation_deadlock_detected(self):
        """After the shared 'a', each side insists on an action the other
        cannot match inside the cooperation set: a genuine deadlock."""
        model = parse_model(
            """
            X = (a, 1).Y;  Y = (b, 1).Y;
            Z = (a, T).W;  W = (c, 1).W;
            X <a, b, c> Z
            """
        )
        space = derive(model)
        assert space.size == 2
        assert len(space.deadlocks()) == 1

    def test_state_bound_enforced(self):
        model = parse_model(
            """
            P = (a, 1).P1; P1 = (a, 1).P2; P2 = (a, 1).P3; P3 = (a, 1).P;
            P || (P || (P || P))
            """
        )
        with pytest.raises(StateSpaceError, match="bound"):
            derive(model, max_states=10)

    def test_passive_at_top_level_rejected(self):
        model = parse_model("P = (a, T).P; P")
        with pytest.raises(WellFormednessError, match="passive"):
            derive(model)

    def test_successors(self, two_state_model):
        space = derive(two_state_model)
        succ = space.successors(0)
        assert len(succ) == 1
        assert succ[0].target == 1

    def test_arcs_by_action(self, two_state_model):
        space = derive(two_state_model)
        offs = space.arcs_by_action("switch_off")
        ons = space.arcs_by_action("switch_on")
        assert len(offs) == 1 and len(ons) == 1
        assert offs[0].rate == 1.0 and ons[0].rate == 3.0

    def test_parallel_components_interleave(self):
        model = parse_model("P = (a, 1).Q; Q = (b, 1).P; P || P")
        space = derive(model)
        assert space.size == 4  # {P,Q} x {P,Q}
        assert len(space.arcs) == 8

    def test_hiding_keeps_space_size(self):
        plain = parse_model("P = (a, 1).Q; Q = (b, 2).P; P")
        hidden = parse_model("P = (a, 1).Q; Q = (b, 2).P; P/{b}")
        assert derive(plain).size == derive(hidden).size
        space = derive(hidden)
        assert "tau" in space.actions()

    def test_multiset_transitions_both_recorded(self):
        model = parse_model("P = (a, 1).Q + (a, 1).Q; Q = (b, 1).P; P")
        space = derive(model)
        assert len([a for a in space.arcs if a.action == "a"]) == 2

    def test_state_label_is_printable(self, file_model):
        space = derive(file_model)
        for i in range(space.size):
            assert isinstance(space.state_label(i), str)
            assert space.state_label(i)


class TestMaxStatesBoundary:
    """The bound is inclusive: a model with exactly max_states states
    derives; one short of that raises (off-by-one guard)."""

    CYCLE_SRC = "P1 = (a, 1.0).P2; P2 = (b, 1.0).P3; P3 = (c, 1.0).P1; P1"

    def test_exact_bound_succeeds(self):
        model = parse_model(self.CYCLE_SRC)
        space = derive(model, max_states=3)
        assert space.size == 3

    def test_one_below_bound_raises(self):
        model = parse_model(self.CYCLE_SRC)
        with pytest.raises(StateSpaceError, match="bound of 2"):
            derive(model, max_states=2)

    def test_error_mentions_remediation(self):
        model = parse_model(self.CYCLE_SRC)
        with pytest.raises(StateSpaceError, match="raise max_states"):
            derive(model, max_states=1)
