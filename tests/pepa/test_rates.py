"""Unit tests for the PEPA rate algebra."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import RateError
from repro.pepa.rates import (
    PASSIVE,
    ActiveRate,
    PassiveRate,
    as_rate,
    cooperation_rate,
    rate_min,
    rate_ratio,
    rate_sum,
)

positive = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestConstruction:
    def test_active_requires_positive(self):
        with pytest.raises(RateError):
            ActiveRate(0.0)
        with pytest.raises(RateError):
            ActiveRate(-1.0)

    def test_active_rejects_nan_inf(self):
        with pytest.raises(RateError):
            ActiveRate(float("nan"))
        with pytest.raises(RateError):
            ActiveRate(float("inf"))

    def test_passive_requires_positive_weight(self):
        with pytest.raises(RateError):
            PassiveRate(0.0)
        with pytest.raises(RateError):
            PassiveRate(-2.0)

    def test_passive_has_no_value(self):
        with pytest.raises(RateError):
            _ = PASSIVE.value

    def test_as_rate_coerces_numbers(self):
        assert as_rate(2.5) == ActiveRate(2.5)
        assert as_rate(PASSIVE) is PASSIVE

    def test_str_forms(self):
        assert str(ActiveRate(2.0)) == "2"
        assert str(PASSIVE) == "T"
        assert str(PassiveRate(2.0)) == "2*T"

    def test_hashable_and_frozen(self):
        assert hash(ActiveRate(1.0)) == hash(ActiveRate(1.0))
        with pytest.raises(Exception):
            ActiveRate(1.0).rate = 2.0  # type: ignore[misc]


class TestArithmetic:
    def test_sum_actives(self):
        assert rate_sum(ActiveRate(1.0), ActiveRate(2.5)) == ActiveRate(3.5)

    def test_sum_passives_adds_weights(self):
        assert rate_sum(PassiveRate(1.0), PassiveRate(2.0)) == PassiveRate(3.0)

    def test_sum_mixed_is_illegal(self):
        with pytest.raises(RateError):
            rate_sum(ActiveRate(1.0), PASSIVE)
        with pytest.raises(RateError):
            rate_sum(PASSIVE, ActiveRate(1.0))

    def test_min_passive_dominates(self):
        assert rate_min(ActiveRate(3.0), PASSIVE) == ActiveRate(3.0)
        assert rate_min(PassiveRate(7.0), ActiveRate(0.1)) == ActiveRate(0.1)

    def test_min_two_passives(self):
        assert rate_min(PassiveRate(2.0), PassiveRate(5.0)) == PassiveRate(2.0)

    def test_min_two_actives(self):
        assert rate_min(ActiveRate(2.0), ActiveRate(5.0)) == ActiveRate(2.0)

    def test_ratio_like_kinds(self):
        assert rate_ratio(ActiveRate(1.0), ActiveRate(4.0)) == 0.25
        assert rate_ratio(PassiveRate(1.0), PassiveRate(2.0)) == 0.5

    def test_ratio_mixed_is_illegal(self):
        with pytest.raises(RateError):
            rate_ratio(ActiveRate(1.0), PASSIVE)


class TestCooperationRate:
    def test_active_active_min_law(self):
        # single activity each side: rate = min(r1, r2)
        r = cooperation_rate(ActiveRate(2.0), ActiveRate(5.0), ActiveRate(2.0), ActiveRate(5.0))
        assert r == ActiveRate(2.0)

    def test_passive_side_adopts_active_rate(self):
        r = cooperation_rate(PASSIVE, ActiveRate(3.0), PASSIVE, ActiveRate(3.0))
        assert r == ActiveRate(3.0)

    def test_weighted_passive_splits_probabilistically(self):
        # two passive partners with weights 1 and 3 share an active rate 4
        apparent_passive = PassiveRate(4.0)
        r1 = cooperation_rate(PassiveRate(1.0), ActiveRate(4.0), apparent_passive, ActiveRate(4.0))
        r3 = cooperation_rate(PassiveRate(3.0), ActiveRate(4.0), apparent_passive, ActiveRate(4.0))
        assert math.isclose(r1.value, 1.0)
        assert math.isclose(r3.value, 3.0)
        assert math.isclose(r1.value + r3.value, 4.0)

    def test_both_passive_stays_passive(self):
        r = cooperation_rate(PASSIVE, PASSIVE, PASSIVE, PASSIVE)
        assert r.is_passive()

    @given(positive, positive)
    def test_bounded_capacity(self, r1, r2):
        """The cooperation of single activities never exceeds either rate."""
        rate = cooperation_rate(ActiveRate(r1), ActiveRate(r2), ActiveRate(r1), ActiveRate(r2))
        assert rate.value <= min(r1, r2) * (1 + 1e-12)

    @given(positive, positive, positive)
    def test_apparent_rate_shares_sum_to_min(self, r1a, r1b, r2):
        """Two competing activities on the left sharing one right partner:
        total cooperation rate equals min(apparent_left, r2)."""
        apparent_left = ActiveRate(r1a + r1b)
        total = (
            cooperation_rate(ActiveRate(r1a), ActiveRate(r2), apparent_left, ActiveRate(r2)).value
            + cooperation_rate(ActiveRate(r1b), ActiveRate(r2), apparent_left, ActiveRate(r2)).value
        )
        assert math.isclose(total, min(r1a + r1b, r2), rel_tol=1e-9)


@given(positive, positive)
def test_rate_sum_commutes(a, b):
    assert math.isclose(rate_sum(ActiveRate(a), ActiveRate(b)).value,
                        rate_sum(ActiveRate(b), ActiveRate(a)).value)


@given(positive, positive)
def test_rate_min_commutes(a, b):
    assert rate_min(ActiveRate(a), ActiveRate(b)) == rate_min(ActiveRate(b), ActiveRate(a))
