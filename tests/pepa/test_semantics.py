"""Unit tests for the PEPA operational semantics."""

import math

import pytest

from repro.exceptions import WellFormednessError
from repro.pepa import (
    Cell,
    Const,
    Cooperation,
    Hiding,
    Prefix,
    apparent_rate,
    derivatives,
    enabled_actions,
    parse_expression,
    parse_model,
)
from repro.pepa.environment import Environment
from repro.pepa.rates import ActiveRate, PassiveRate


def env_of(*defs: tuple[str, str]) -> Environment:
    env = Environment()
    for name, body in defs:
        env.define(name, parse_expression(body))
    return env


class TestBasicRules:
    def test_prefix(self):
        env = Environment()
        ts = derivatives(parse_expression("(a, 2).P"), env)
        assert len(ts) == 1
        assert ts[0].action == "a"
        assert ts[0].rate == ActiveRate(2.0)
        assert ts[0].target == Const("P")

    def test_choice_collects_both_branches(self):
        env = Environment()
        ts = derivatives(parse_expression("(a, 1).P + (b, 2).Q"), env)
        assert {(t.action, t.target) for t in ts} == {("a", Const("P")), ("b", Const("Q"))}

    def test_choice_is_a_multiset(self):
        """Two identical activities race: both derivations are kept."""
        env = Environment()
        ts = derivatives(parse_expression("(a, 1).P + (a, 1).P"), env)
        assert len(ts) == 2

    def test_constant_unfolds(self):
        env = env_of(("P", "(a, 1).P"))
        ts = derivatives(Const("P"), env)
        assert len(ts) == 1 and ts[0].target == Const("P")

    def test_undefined_constant(self):
        with pytest.raises(WellFormednessError, match="undefined"):
            derivatives(Const("Nope"), Environment())

    def test_unguarded_recursion_detected(self):
        env = env_of(("X", "X"))
        with pytest.raises(WellFormednessError, match="unguarded"):
            derivatives(Const("X"), env)

    def test_exclude_suppresses_actions(self):
        env = Environment()
        ts = derivatives(parse_expression("(a, 1).P + (b, 2).Q"), env, exclude=frozenset({"a"}))
        assert [t.action for t in ts] == ["b"]


class TestHiding:
    def test_hidden_action_becomes_tau(self):
        env = env_of(("P", "(a, 1).P"))
        ts = derivatives(parse_expression("P/{a}"), env)
        assert ts[0].action == "tau"
        assert ts[0].rate == ActiveRate(1.0)
        assert isinstance(ts[0].target, Hiding)

    def test_unhidden_action_passes_through(self):
        env = env_of(("P", "(a, 1).P + (b, 2).P"))
        ts = derivatives(parse_expression("P/{a}"), env)
        assert {t.action for t in ts} == {"tau", "b"}

    def test_hidden_action_has_no_apparent_rate(self):
        env = env_of(("P", "(a, 1).P"))
        assert apparent_rate(parse_expression("P/{a}"), "a", env) is None


class TestCooperation:
    def test_interleaving_outside_set(self):
        env = env_of(("P", "(a, 1).P"), ("Q", "(b, 2).Q"))
        ts = derivatives(parse_expression("P || Q"), env)
        assert {t.action for t in ts} == {"a", "b"}
        assert len(ts) == 2

    def test_shared_action_synchronises(self):
        env = env_of(("P", "(a, 2).P"), ("Q", "(a, 5).Q"))
        ts = derivatives(parse_expression("P <a> Q"), env)
        assert len(ts) == 1
        assert math.isclose(ts[0].rate.value, 2.0)  # min law

    def test_shared_action_blocked_when_one_side_cannot(self):
        env = env_of(("P", "(a, 2).P"), ("Q", "(b, 5).Q"))
        ts = derivatives(parse_expression("P <a> Q"), env)
        # P's a is blocked; only Q's independent b remains
        assert {t.action for t in ts} == {"b"}

    def test_passive_cooperation_adopts_active_rate(self):
        env = env_of(("P", "(a, 3).P"), ("Q", "(a, T).Q"))
        ts = derivatives(parse_expression("P <a> Q"), env)
        assert len(ts) == 1
        assert math.isclose(ts[0].rate.value, 3.0)

    def test_two_passive_branches_split_by_weight(self):
        env = env_of(
            ("P", "(a, 4).P"),
            ("Q", "(a, T).Q1 + (a, 3*T).Q2"),
            ("Q1", "(b, 1).Q1"),
            ("Q2", "(b, 1).Q2"),
        )
        ts = derivatives(parse_expression("P <a> Q"), env)
        rates = sorted(t.rate.value for t in ts)
        assert len(ts) == 2
        assert math.isclose(rates[0], 1.0)
        assert math.isclose(rates[1], 3.0)
        assert math.isclose(sum(rates), 4.0)

    def test_competing_actives_bounded_capacity(self):
        """Two active a-activities on the left, one rate-3 partner on the
        right: the total a-rate is min(1+2, 3) = 3, split 1:2."""
        env = env_of(
            ("P", "(a, 1).P1 + (a, 2).P2"),
            ("P1", "(b, 1).P1"),
            ("P2", "(b, 1).P2"),
            ("Q", "(a, 3).Q"),
        )
        ts = derivatives(parse_expression("P <a> Q"), env)
        rates = sorted(t.rate.value for t in ts)
        assert math.isclose(sum(rates), 3.0)
        assert math.isclose(rates[0] * 2, rates[1])

    def test_nested_passive_resolution(self):
        """(Q1 || Q2) both passive in a, cooperating with an active P:
        total rate is P's rate, split evenly."""
        env = env_of(
            ("P", "(a, 6).P"),
            ("Q", "(a, T).Q"),
        )
        ts = derivatives(parse_expression("P <a> (Q || Q)"), env)
        assert len(ts) == 2
        for t in ts:
            assert math.isclose(t.rate.value, 3.0)

    def test_target_structure_preserved(self):
        env = env_of(("P", "(a, 1).P"), ("Q", "(a, T).Q"))
        ts = derivatives(parse_expression("P <a> Q"), env)
        assert isinstance(ts[0].target, Cooperation)
        assert ts[0].target.actions == frozenset({"a"})


class TestCells:
    def test_vacant_cell_is_inert(self):
        env = env_of(("File", "(a, 1).File"))
        assert derivatives(Cell("File", None), env) == []

    def test_full_cell_behaves_as_content(self):
        env = env_of(("File", "(a, 1).Done"), ("Done", "(b, 1).Done"))
        ts = derivatives(Cell("File", Const("File")), env)
        assert len(ts) == 1
        assert ts[0].target == Cell("File", Const("Done"))

    def test_cell_apparent_rate(self):
        env = env_of(("File", "(a, 2).File"))
        assert apparent_rate(Cell("File", Const("File")), "a", env) == ActiveRate(2.0)
        assert apparent_rate(Cell("File", None), "a", env) is None


class TestApparentRates:
    def test_choice_sums(self):
        env = Environment()
        expr = parse_expression("(a, 1).P + (a, 2.5).Q")
        assert apparent_rate(expr, "a", env) == ActiveRate(3.5)

    def test_passive_weights_sum(self):
        env = Environment()
        expr = parse_expression("(a, T).P + (a, 2*T).Q")
        assert apparent_rate(expr, "a", env) == PassiveRate(3.0)

    def test_cooperation_shared_takes_min(self):
        env = env_of(("P", "(a, 2).P"), ("Q", "(a, 5).Q"))
        assert apparent_rate(parse_expression("P <a> Q"), "a", env) == ActiveRate(2.0)

    def test_cooperation_unshared_sums(self):
        env = env_of(("P", "(a, 2).P"), ("Q", "(a, 5).Q"))
        assert apparent_rate(parse_expression("P || Q"), "a", env) == ActiveRate(7.0)

    def test_absent_action_is_none(self):
        env = Environment()
        assert apparent_rate(parse_expression("(a, 1).P"), "z", env) is None


class TestEnabledActions:
    def test_enabled_set(self, file_model):
        acts = enabled_actions(file_model.system, file_model.environment)
        assert acts == frozenset({"openread", "openwrite"})

    def test_protocol_property_no_write_after_openread(self, file_model):
        """Paper: 'read and write operations cannot be interleaved'."""
        env = file_model.environment
        ts = derivatives(file_model.system, env)
        in_stream = next(t.target for t in ts if t.action == "openread")
        assert "write" not in enabled_actions(in_stream, env)
        assert enabled_actions(in_stream, env) == frozenset({"read", "close"})
