"""Unit tests for PEPA-level sensitivity analysis.

The ground truth is finite differencing: scale every rate of the
perturbed action by (1+θ) in the *source*, re-solve, and compare the
measured slope against the analytic derivative.
"""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.pepa import parse_model
from repro.pepa.ctmcgen import ctmc_from_statespace
from repro.pepa.measures import analyse
from repro.pepa.sensitivity import (
    action_generator_derivative,
    sensitivity_profile,
    throughput_sensitivity,
)
from repro.pepa.statespace import derive

TEMPLATE = """
r_up = 3.0; r_down = {r_down};
On = (switch_off, r_down).Off;
Off = (switch_on, 3.0).On;
On
"""


def _derived(source: str):
    model = parse_model(source)
    space = derive(model)
    return space, ctmc_from_statespace(space)


def _finite_difference(measured: str, perturbed_rate_template: str,
                       base: float, theta: float = 1e-6) -> float:
    lo = analyse(parse_model(perturbed_rate_template.format(r_down=base)))
    hi = analyse(parse_model(
        perturbed_rate_template.format(r_down=base * (1 + theta))))
    return (hi.throughput(measured) - lo.throughput(measured)) / theta


class TestThroughputSensitivity:
    def test_matches_finite_difference_cross_action(self):
        space, chain = _derived(TEMPLATE.format(r_down=1.0))
        analytic = throughput_sensitivity(space, chain, "switch_on", "switch_off")
        numeric = _finite_difference("switch_on", TEMPLATE, 1.0)
        assert analytic == pytest.approx(numeric, rel=1e-4)

    def test_matches_finite_difference_self(self):
        # measured == perturbed exercises the product-rule term π·r
        space, chain = _derived(TEMPLATE.format(r_down=1.0))
        analytic = throughput_sensitivity(space, chain, "switch_off", "switch_off")
        numeric = _finite_difference("switch_off", TEMPLATE, 1.0)
        assert analytic == pytest.approx(numeric, rel=1e-4)

    def test_conserved_cycle_throughputs_move_together(self):
        # in a 2-state cycle both actions share one throughput, so both
        # sensitivities to the same perturbation must be equal
        space, chain = _derived(TEMPLATE.format(r_down=1.0))
        a = throughput_sensitivity(space, chain, "switch_on", "switch_off")
        b = throughput_sensitivity(space, chain, "switch_off", "switch_off")
        assert a == pytest.approx(b, rel=1e-9)

    def test_unknown_measured_action_rejected(self):
        space, chain = _derived(TEMPLATE.format(r_down=1.0))
        with pytest.raises(SolverError, match="no action 'teleport'"):
            throughput_sensitivity(space, chain, "teleport", "switch_on")

    def test_unknown_perturbed_action_rejected(self):
        space, chain = _derived(TEMPLATE.format(r_down=1.0))
        with pytest.raises(SolverError, match="no action 'teleport'"):
            throughput_sensitivity(space, chain, "switch_on", "teleport")


class TestGeneratorDerivative:
    def test_rows_sum_to_zero(self):
        space, _ = _derived(TEMPLATE.format(r_down=1.0))
        dQ = action_generator_derivative(space, "switch_off")
        assert np.allclose(dQ.toarray().sum(axis=1), 0.0)

    def test_unlabelled_action_gives_zero_matrix(self):
        space, _ = _derived(TEMPLATE.format(r_down=1.0))
        assert action_generator_derivative(space, "absent").nnz == 0

    def test_self_loops_cancel_in_generator(self):
        # a cooperation-free self-loop contributes nothing to dQ even
        # though the action still has throughput
        source = """
        Loop = (tick, 2.0).Loop;
        Loop
        """
        space, chain = _derived(source)
        assert action_generator_derivative(space, "tick").nnz == 0
        # ... but the product-rule term still reports d(throughput)/dθ = rate
        assert throughput_sensitivity(space, chain, "tick", "tick") == pytest.approx(2.0)


class TestSensitivityProfile:
    def test_sorted_by_absolute_impact(self):
        space, chain = _derived(TEMPLATE.format(r_down=1.0))
        profile = sensitivity_profile(space, chain, "switch_on")
        values = [abs(v) for v in profile.values()]
        assert values == sorted(values, reverse=True)
        assert set(profile) == {"switch_on", "switch_off"}

    def test_profile_consistent_with_pointwise_calls(self):
        space, chain = _derived(TEMPLATE.format(r_down=1.0))
        profile = sensitivity_profile(space, chain, "switch_on")
        for action, value in profile.items():
            assert value == pytest.approx(
                throughput_sensitivity(space, chain, "switch_on", action))
