"""Unit tests for the shared tokenizer."""

import pytest

from repro.exceptions import PepaSyntaxError
from repro.pepa.lexer import TokenStream, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


class TestTokenKinds:
    def test_simple_definition(self):
        assert kinds("P = (a, 1.0).P;") == [
            "IDENT", "DEF", "LPAREN", "IDENT", "COMMA", "NUMBER", "RPAREN",
            "DOT", "IDENT", "SEMI", "EOF",
        ]

    def test_numbers(self):
        toks = tokenize("1 2.5 .5 1e3 2.5e-2")
        assert [t.text for t in toks[:-1]] == ["1", "2.5", ".5", "1e3", "2.5e-2"]
        assert all(t.kind == "NUMBER" for t in toks[:-1])

    def test_cooperation_tokens(self):
        assert kinds("P <a, b> Q") == [
            "IDENT", "LANGLE", "IDENT", "COMMA", "IDENT", "RANGLE", "IDENT", "EOF"
        ]

    def test_parallel_bars(self):
        assert kinds("P || Q") == ["IDENT", "PAR", "IDENT", "EOF"]

    def test_underscore_is_special_only_alone(self):
        assert kinds("_")[0] == "UNDERSCORE"
        assert kinds("_foo")[0] == "IDENT"

    def test_identifier_with_prime(self):
        toks = tokenize("File'")
        assert toks[0].kind == "IDENT" and toks[0].text == "File'"

    def test_arrow(self):
        assert kinds("P1 -> P2") == ["IDENT", "ARROW", "IDENT", "EOF"]


class TestComments:
    def test_line_comment_slash(self):
        assert kinds("P // the rest is ignored\nQ") == ["IDENT", "IDENT", "EOF"]

    def test_line_comment_percent(self):
        assert kinds("P % PEPA-style comment\nQ") == ["IDENT", "IDENT", "EOF"]

    def test_block_comment(self):
        assert kinds("P /* multi\nline */ Q") == ["IDENT", "IDENT", "EOF"]

    def test_unterminated_block_comment(self):
        with pytest.raises(PepaSyntaxError):
            tokenize("P /* never closed")

    def test_slash_still_lexes_as_hiding(self):
        assert kinds("P/{a}") == ["IDENT", "SLASH", "LBRACE", "IDENT", "RBRACE", "EOF"]


class TestPositions:
    def test_line_and_column(self):
        toks = tokenize("P\n  Q")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_position_after_block_comment(self):
        toks = tokenize("/* one\ntwo */ P")
        assert toks[0].line == 2

    def test_error_carries_position(self):
        with pytest.raises(PepaSyntaxError) as exc:
            tokenize("P = @")
        assert exc.value.line == 1

    def test_unexpected_character(self):
        with pytest.raises(PepaSyntaxError):
            tokenize("P ? Q")


class TestTokenStream:
    def test_expect_and_advance(self):
        s = TokenStream(tokenize("P = Q"))
        assert s.expect("IDENT").text == "P"
        assert s.expect("DEF").text == "="
        assert s.expect("IDENT").text == "Q"
        assert s.at("EOF")

    def test_expect_failure_mentions_found_token(self):
        s = TokenStream(tokenize("P"))
        with pytest.raises(PepaSyntaxError, match="'P'"):
            s.expect("NUMBER")

    def test_save_restore(self):
        s = TokenStream(tokenize("A B C"))
        mark = s.save()
        s.advance()
        s.advance()
        s.restore(mark)
        assert s.current.text == "A"

    def test_peek_clamps_at_eof(self):
        s = TokenStream(tokenize("A"))
        assert s.peek(10).kind == "EOF"

    def test_advance_at_eof_is_stable(self):
        s = TokenStream(tokenize(""))
        assert s.advance().kind == "EOF"
        assert s.advance().kind == "EOF"
