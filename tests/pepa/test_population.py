"""Tests for the population (counting) semantics.

The headline property: the population CTMC is an exact lumping of the
unfolded interleaving, so every aggregate measure matches.
"""

import math
from math import comb

import numpy as np
import pytest

from repro.ctmc import steady_state, throughput
from repro.exceptions import WellFormednessError
from repro.pepa import parse_expression, parse_model
from repro.pepa.ctmcgen import ctmc_of_model
from repro.pepa.population import PopulationState, population_ctmc
from repro.workloads import client_server_model

CLIENT_SERVER_DEFS = """
Think = (think, 1.0).Ready;
Ready = (request, 2.0).Wait;
Wait  = (response, T).Think;
Idle  = (request, T).Serve;
Serve = (response, 5.0).Idle;
"""


def defs_environment():
    model = parse_model(CLIENT_SERVER_DEFS + "Idle")
    return model.environment


class TestConstruction:
    def test_state_count_is_multiset_bound(self):
        env = defs_environment()
        for n in (1, 2, 4):
            states, chain = population_ctmc(
                env, "Think", n, parse_expression("Idle"),
                {"request", "response"},
            )
            # 3 local states, times 2 server phases, but Wait-count and
            # server phase are correlated; bound: C(n+2, 2) * 2
            assert len(states) <= comb(n + 2, 2) * 2
            assert chain.n_states == len(states)

    def test_population_conserved(self):
        env = defs_environment()
        states, _ = population_ctmc(
            env, "Think", 5, parse_expression("Idle"), {"request", "response"}
        )
        assert all(s.total() == 5 for s in states)

    def test_replica_count_validated(self):
        env = defs_environment()
        with pytest.raises(WellFormednessError):
            population_ctmc(env, "Think", 0, parse_expression("Idle"), set())


class TestExactness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_throughput_matches_unfolded_model(self, n):
        env = defs_environment()
        _, pop_chain = population_ctmc(
            env, "Think", n, parse_expression("Idle"), {"request", "response"}
        )
        _, full_chain = ctmc_of_model(client_server_model(n))
        for action in ("think", "request", "response"):
            assert math.isclose(
                throughput(pop_chain, action),
                throughput(full_chain, action),
                rel_tol=1e-9,
            ), action

    @pytest.mark.parametrize("n", [2, 3])
    def test_mean_population_matches_unfolded(self, n):
        env = defs_environment()
        states, pop_chain = population_ctmc(
            env, "Think", n, parse_expression("Idle"), {"request", "response"}
        )
        pi = steady_state(pop_chain)
        mean_waiting_pop = sum(
            p * s.count_of("Wait") for p, s in zip(pi, states)
        )
        # unfolded: expected number of clients in Wait
        space, full_chain = ctmc_of_model(client_server_model(n))
        pi_full = steady_state(full_chain)
        mean_waiting_full = sum(
            p * str(space.states[i]).count("Wait")
            for i, p in enumerate(pi_full)
        )
        assert math.isclose(mean_waiting_pop, mean_waiting_full, rel_tol=1e-9)

    def test_state_space_reduction(self):
        env = defs_environment()
        n = 8
        states, _ = population_ctmc(
            env, "Think", n, parse_expression("Idle"), {"request", "response"}
        )
        from repro.pepa.statespace import derive

        full = derive(client_server_model(n))
        assert len(states) < full.size / 10  # massive reduction at n=8

    def test_scales_far_beyond_unfolding(self):
        """100 clients: the unfolded space would have ~2^99·102 states;
        the population space stays tiny and solves instantly."""
        env = defs_environment()
        states, chain = population_ctmc(
            env, "Think", 100, parse_expression("Idle"), {"request", "response"}
        )
        assert len(states) < 12_000
        pi = steady_state(chain)
        assert math.isclose(pi.sum(), 1.0, rel_tol=1e-9)
        # flow balance still holds
        assert math.isclose(
            throughput(chain, "request", pi), throughput(chain, "response", pi),
            rel_tol=1e-9,
        )


class TestDiagnostics:
    def test_passive_individual_activity_rejected(self):
        model = parse_model("P = (lonely, T).P; Q = (tick, 1).Q; Q")
        with pytest.raises(WellFormednessError, match="passive"):
            population_ctmc(
                model.environment, "P", 2, parse_expression("Q"), set()
            )

    def test_unknown_replica_rejected(self):
        env = defs_environment()
        with pytest.raises(WellFormednessError):
            population_ctmc(env, "Ghost", 2, parse_expression("Idle"), set())

    def test_state_rendering(self):
        env = defs_environment()
        states, _ = population_ctmc(
            env, "Think", 2, parse_expression("Idle"), {"request", "response"}
        )
        assert any("Think:2" in str(s) for s in states)


class TestEdgeShapes:
    """Boundary shapes the fluid compiler leans on: degenerate replicas,
    passive-only cooperation and the no-environment form."""

    def test_single_local_state_replica(self):
        """A one-state replica cycles in place: one population state,
        throughput n·r at every n."""
        model = parse_model("P = (tick, 2.0).P; P")
        for n in (1, 7):
            states, chain = population_ctmc(
                model.environment, "P", n, None, set()
            )
            assert len(states) == 1
            assert chain.n_states == 1
            pi = steady_state(chain)
            assert math.isclose(throughput(chain, "tick", pi), 2.0 * n)

    def test_passive_only_shared_action_with_sink(self):
        """A single-state passive sink never gates the replicas: the
        shared throughput equals the replicas' own apparent rate."""
        model = parse_model(
            "Reader = (read, 1.5).Writer; Writer = (write, 2.0).Reader;"
            "Sink = (write, T).Sink; Sink"
        )
        states, chain = population_ctmc(
            model.environment, "Reader", 3, parse_expression("Sink"),
            {"write"},
        )
        pi = steady_state(chain)
        expected = 3 / (1 / 1.5 + 1 / 2.0)  # n · cycle rate
        assert math.isclose(throughput(chain, "write", pi), expected, rel_tol=1e-9)
        # ... and matches the unfolded interleaving exactly
        sys_model = parse_model(
            "Reader = (read, 1.5).Writer; Writer = (write, 2.0).Reader;"
            "Sink = (write, T).Sink;"
            "(Reader || Reader || Reader) <write> Sink"
        )
        _, full_chain = ctmc_of_model(sys_model)
        assert math.isclose(
            throughput(chain, "write", pi),
            throughput(full_chain, "write"),
            rel_tol=1e-9,
        )

    def test_no_environment_rejects_cooperation_set(self):
        model = parse_model("P = (a, 1.0).P; P")
        with pytest.raises(WellFormednessError, match="environment component"):
            population_ctmc(model.environment, "P", 2, None, {"a"})

    def test_environment_states_enumerates_universe(self):
        from repro.pepa.population import environment_states

        env = defs_environment()
        states = environment_states(env, parse_expression("Idle"))
        assert sorted(str(s) for s in states) == ["Idle", "Serve"]

    def test_environment_states_bounded(self):
        from repro.exceptions import StateSpaceError
        from repro.pepa.population import environment_states

        env = defs_environment()
        with pytest.raises(StateSpaceError, match="exceeds"):
            environment_states(env, parse_expression("Idle"), max_states=1)
