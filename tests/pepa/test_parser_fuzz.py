"""Fuzzing the parsers: arbitrary text must either parse or raise a
positioned PepaSyntaxError / library error — never an uncontrolled
exception."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.pepa.parser import parse_expression, parse_model, parse_rate
from repro.pepanets.parser import parse_net

SETTINGS = dict(max_examples=150, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

# characters the lexer knows, plus junk it must reject cleanly
ALPHABET = "PQRabc()<>[]{}+.,;=/*|_ \n\t0123456789T#@$"
texts = st.text(alphabet=ALPHABET, min_size=0, max_size=80)


@settings(**SETTINGS)
@given(texts)
def test_parse_model_is_total(source):
    try:
        parse_model(source)
    except ReproError:
        pass
    except RecursionError:  # pragma: no cover - should never happen
        raise AssertionError("parser blew the stack")


@settings(**SETTINGS)
@given(texts)
def test_parse_expression_is_total(source):
    try:
        parse_expression(source)
    except ReproError:
        pass


@settings(**SETTINGS)
@given(texts)
def test_parse_net_is_total(source):
    try:
        parse_net(source)
    except ReproError:
        pass


@settings(**SETTINGS)
@given(texts)
def test_parse_rate_is_total(source):
    try:
        parse_rate(source)
    except (ReproError, OverflowError):
        # OverflowError: literals like 9e999999 overflow float(); the
        # lexer accepts them as NUMBER tokens, float() rejects them
        pass


def test_mutated_good_model_never_crashes_uncontrolled():
    """Single-character deletions of a valid model all fail cleanly or
    still parse."""
    good = (
        "r = 2.0; P = (a, r).Q; Q = (b, T).P; S = (a, 1).S; P <b> S"
    )
    for i in range(len(good)):
        mutated = good[:i] + good[i + 1:]
        try:
            parse_model(mutated)
        except ReproError:
            pass
