"""Property-based tests over randomly generated PEPA models.

A hypothesis strategy builds small random-but-well-formed PEPA models
(guarded recursive sequential components composed by cooperation), and
the properties assert semantic laws of the calculus and of the solver
stack:

* cooperation is commutative up to state-space isomorphism;
* hiding preserves the size and total rates of the state space;
* the multi-transition semantics conserves flow: in steady state, for
  every action, completions are finite and the global balance residual
  is numerically zero;
* simulation agrees with the numerical route (smoke-level tolerance).
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ctmc.steady import steady_state
from repro.pepa import (
    Choice,
    Const,
    Cooperation,
    Hiding,
    Prefix,
    derive,
    parse_model,
)
from repro.pepa.ctmcgen import ctmc_from_statespace
from repro.pepa.environment import Environment, PepaModel
from repro.pepa.rates import ActiveRate

# ----------------------------------------------------------------------
# Strategy: random guarded sequential components over a small alphabet
# ----------------------------------------------------------------------
ACTIONS = ["a", "b", "c"]
N_CONSTANTS = 3

rates = st.floats(min_value=0.1, max_value=9.0, allow_nan=False, allow_infinity=False)


@st.composite
def sequential_bodies(draw):
    """A list of N_CONSTANTS guarded bodies: each a choice of 1-2
    prefixes whose continuations are constants (always guarded)."""
    bodies = []
    for _ in range(N_CONSTANTS):
        n_branches = draw(st.integers(1, 2))
        branches = []
        for _ in range(n_branches):
            action = draw(st.sampled_from(ACTIONS))
            rate = draw(rates)
            target = draw(st.integers(0, N_CONSTANTS - 1))
            branches.append(Prefix(action, ActiveRate(rate), Const(f"C{target}")))
        body = branches[0]
        for br in branches[1:]:
            body = Choice(body, br)
        bodies.append(body)
    return bodies


@st.composite
def pepa_models(draw):
    bodies = draw(sequential_bodies())
    env = Environment()
    for i, body in enumerate(bodies):
        env.define(f"C{i}", body)
    coop = draw(st.sets(st.sampled_from(ACTIONS), max_size=2))
    left = Const("C0")
    right = Const(f"C{draw(st.integers(0, N_CONSTANTS - 1))}")
    system = Cooperation(left, right, frozenset(coop))
    return PepaModel(env, system)


COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**COMMON)
@given(pepa_models())
def test_state_space_is_finite_and_labelled(model):
    space = derive(model, max_states=5000)
    assert 1 <= space.size <= 5000
    for i in range(space.size):
        assert space.state_label(i)
    for arc in space.arcs:
        assert arc.rate > 0
        assert 0 <= arc.source < space.size
        assert 0 <= arc.target < space.size


@settings(**COMMON)
@given(pepa_models())
def test_cooperation_commutes(model):
    """P <L> Q and Q <L> P generate isomorphic state spaces: same size,
    same action multiset, same sorted rate multiset."""
    assert isinstance(model.system, Cooperation)
    flipped = PepaModel(
        model.environment,
        Cooperation(model.system.right, model.system.left, model.system.actions),
    )
    s1 = derive(model, max_states=5000)
    s2 = derive(flipped, max_states=5000)
    assert s1.size == s2.size
    assert sorted((a.action, round(a.rate, 9)) for a in s1.arcs) == sorted(
        (a.action, round(a.rate, 9)) for a in s2.arcs
    )


@settings(**COMMON)
@given(pepa_models(), st.sampled_from(ACTIONS))
def test_hiding_preserves_dynamics(model, hidden):
    """Hiding renames labels to tau but leaves the chain untouched."""
    hidden_model = PepaModel(model.environment, Hiding(model.system, frozenset({hidden})))
    s1 = derive(model, max_states=5000)
    s2 = derive(hidden_model, max_states=5000)
    assert s1.size == s2.size
    assert sorted(round(a.rate, 9) for a in s1.arcs) == sorted(
        round(a.rate, 9) for a in s2.arcs
    )
    assert hidden not in s2.actions()


@settings(**COMMON)
@given(pepa_models())
def test_steady_state_global_balance(model):
    """On the recurrent class: pi Q = 0 and throughput totals are
    finite and non-negative."""
    space = derive(model, max_states=5000)
    chain = ctmc_from_statespace(space)
    if chain.absorbing_states().size:
        return  # no steady state to check
    try:
        pi = steady_state(chain, reducible="bscc")
    except Exception:
        return  # several bottom components: initial-state dependent
    residual = np.abs(pi @ chain.Q.toarray()).max()
    assert residual < 1e-8
    assert math.isclose(pi.sum(), 1.0, rel_tol=1e-9)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pepa_models())
def test_simulation_smoke_agreement(model):
    """SSA runs and its residence fractions are a distribution."""
    from repro.sim import simulate_pepa

    result = simulate_pepa(model, 50.0, seed=0)
    assert math.isclose(sum(result.residence.values()), 50.0, rel_tol=1e-9)
    for count in result.action_counts.values():
        assert count >= 0
