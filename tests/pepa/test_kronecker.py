"""The compositional Kronecker descriptor vs the materialised CSR path.

The tentpole invariant: for every descriptor-representable model the
matrix-free generator is *element-exact* against the materialised
matrix (SpMV to 1e-12), every iterative solver agrees across the two
backends to 1e-8, and the iterative-solver path never materialises the
matrix (asserted through ``chain.materialized``).

Five workload families cover the supported composition algebra:
interleaving, active/passive synchronisation, multi-action cooperation
with multi-part passive groups (the paper's File protocol), an
active×active cooperation with constant apparent rates, and hiding
above a cooperation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmc.operator import DescriptorUnsupported, KroneckerDescriptor
from repro.ctmc.serialize import (
    CTMC_DESCRIPTOR_SCHEMA,
    ctmc_from_payload,
    ctmc_to_payload,
)
from repro.ctmc.steady import SOLVERS, steady_state
from repro.exceptions import SolverError
from repro.pepa.ctmcgen import ctmc_from_statespace
from repro.pepa.kronecker import build_descriptor, descriptor_chain
from repro.pepa.parser import parse_model
from repro.pepa.statespace import derive

SPMV_ATOL = 1e-12
SOLVE_ATOL = 1e-8

FAMILIES = {
    # n clients interleaved, passive on the shared action.
    "client_server": """
Client = (think, 1.2).ClientWait;
ClientWait = (serve, infty).Client;
Server = (serve, 4.0).ServerLog;
ServerLog = (log, 9.0).Server;
(Client <> Client <> Client) <serve> Server
""",
    # two independent two-stage tandem lines (nested cooperation under
    # an interleaving).
    "tandem_queue": """
Stage1A = (arrive, 1.5).Stage1B;
Stage1B = (pass, 2.5).Stage1A;
Stage2A = (pass, infty).Stage2B;
Stage2B = (depart, 3.0).Stage2A;
(Stage1A <pass> Stage2A) <> (Stage1A <pass> Stage2A)
""",
    # the paper's Figure 1 File protocol: five shared actions with a
    # fully passive reader (multi-part passive scale groups).
    "file_protocol": """
r_o = 2.0; r_r = 10.0; r_w = 4.0; r_c = 1.0;
File = (openread, r_o).InStream + (openwrite, r_o).OutStream;
InStream = (read, r_r).InStream + (close, r_c).File;
OutStream = (write, r_w).OutStream + (close, r_c).File;
FileReader = (openread, T).Reading + (openwrite, T).Writing;
Reading = (read, T).Reading + (close, T).FileReader;
Writing = (write, T).Writing + (close, T).FileReader;
File <openread, openwrite, read, write, close> FileReader
""",
    # active x active with constant apparent rates on both sides.
    "active_sync": """
Left = (sync, 1.0).LeftBusy;
LeftBusy = (work, 2.0).Left;
Right = (sync, 3.0).RightBusy;
RightBusy = (rest, 1.5).Right;
Left <sync> Right
""",
    # hiding above the cooperation folds the synchronised action to tau.
    "hidden_coop": """
Prod = (make, 2.0).ProdFull;
ProdFull = (hand, 4.0).Prod;
Cons = (hand, infty).ConsBusy;
ConsBusy = (use, 3.0).Cons;
(Prod <hand> Cons)/{hand}
""",
}

ITERATIVE_METHODS = sorted(set(SOLVERS) - {"direct"})


def both_backends(source: str):
    model = parse_model(source)
    space = derive(model)
    csr = ctmc_from_statespace(space)
    desc = descriptor_chain(space, model.environment)
    return csr, desc


@pytest.fixture(scope="module")
def backends():
    return {name: both_backends(src) for name, src in FAMILIES.items()}


class TestDescriptorExactness:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_materialised_descriptor_equals_csr(self, backends, family):
        csr, desc = backends[family]
        diff = np.abs((desc.generator.to_csr() - csr.Q).toarray()).max()
        assert diff <= SPMV_ATOL

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_spmv_matches_csr(self, backends, family):
        csr, desc = backends[family]
        n = csr.n_states
        rng = np.random.default_rng(hash(family) % 2**32)
        for _ in range(5):
            x = rng.normal(size=n)
            np.testing.assert_allclose(
                desc.generator.matvec(x), csr.Q @ x, atol=SPMV_ATOL
            )
            np.testing.assert_allclose(
                desc.generator.rmatvec(x), csr.Q.transpose() @ x, atol=SPMV_ATOL
            )

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_exit_and_action_rates_match(self, backends, family):
        csr, desc = backends[family]
        np.testing.assert_allclose(
            desc.exit_rates(), csr.exit_rates(), atol=SPMV_ATOL
        )
        assert set(desc.action_rates) == set(csr.action_rates)
        for action, vec in csr.action_rates.items():
            np.testing.assert_allclose(
                np.asarray(desc.action_rates[action]), np.asarray(vec),
                atol=SPMV_ATOL,
            )

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_labels_align(self, backends, family):
        csr, desc = backends[family]
        assert desc.labels == csr.labels
        assert desc.initial == csr.initial


class TestCrossBackendSolvers:
    """The consistency battery: every iterative method, both backends."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("method", ITERATIVE_METHODS)
    def test_backends_agree(self, backends, family, method):
        csr, desc = backends[family]
        reference = steady_state(csr, "direct")
        pi_csr = steady_state(csr, method)
        # a fresh descriptor chain per solve keeps materialisation
        # assertions independent between methods
        model = parse_model(FAMILIES[family])
        fresh = descriptor_chain(derive(model), model.environment)
        pi_desc = steady_state(fresh, method)
        np.testing.assert_allclose(pi_csr, reference, atol=SOLVE_ATOL, rtol=0.0)
        np.testing.assert_allclose(pi_desc, reference, atol=SOLVE_ATOL, rtol=0.0)
        if method not in ("gauss_seidel",):
            # every matrix-free method must leave the descriptor alone;
            # gauss_seidel is the declared materialising exception
            assert not fresh.materialized

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_direct_solver_materialises_transparently(self, backends, family):
        model = parse_model(FAMILIES[family])
        fresh = descriptor_chain(derive(model), model.environment)
        csr, _ = backends[family]
        pi = steady_state(fresh, "direct")
        assert fresh.materialized
        np.testing.assert_allclose(
            pi, steady_state(csr, "direct"), atol=SOLVE_ATOL, rtol=0.0
        )


class TestUnsupportedShapes:
    def test_state_dependent_active_active_is_rejected(self):
        # The left side's apparent rate of `sync` differs between its
        # enabled states, so min() does not factorise.
        src = """
A1 = (sync, 1.0).A2;
A2 = (sync, 5.0).A1;
B1 = (sync, 2.0).B2;
B2 = (back, 1.0).B1;
A1 <sync> B1
"""
        model = parse_model(src)
        space = derive(model)
        with pytest.raises(DescriptorUnsupported):
            build_descriptor(space, model.environment)

    def test_sequential_model_has_no_cooperation(self):
        src = "P = (a, 1.0).Q;\nQ = (b, 2.0).P;\nP\n"
        model = parse_model(src)
        space = derive(model)
        # A single sequential component is a one-factor descriptor.
        chain = descriptor_chain(space, model.environment)
        csr = ctmc_from_statespace(space)
        diff = np.abs((chain.generator.to_csr() - csr.Q).toarray()).max()
        assert diff <= SPMV_ATOL


class TestGeneratorKnob:
    def test_descriptor_mode_builds_descriptor(self):
        model = parse_model(FAMILIES["client_server"])
        space = derive(model)
        chain = ctmc_from_statespace(
            space, generator="descriptor", environment=model.environment
        )
        assert not chain.materialized
        assert isinstance(chain.generator, KroneckerDescriptor)

    def test_descriptor_mode_without_environment_raises(self):
        model = parse_model(FAMILIES["client_server"])
        space = derive(model)
        with pytest.raises(SolverError):
            ctmc_from_statespace(space, generator="descriptor")

    def test_auto_mode_falls_back_on_unsupported(self):
        from repro.obs import EventStream, use_events

        src = """
A1 = (sync, 1.0).A2;
A2 = (sync, 5.0).A1;
B1 = (sync, 2.0).B2;
B2 = (back, 1.0).B1;
A1 <sync> B1
"""
        model = parse_model(src)
        space = derive(model)
        events = EventStream()
        with use_events(events):
            chain = ctmc_from_statespace(
                space, generator="auto", environment=model.environment
            )
        assert chain.materialized  # CSR fallback
        assert len(events.by_name("generator.fallback")) == 1

    def test_unknown_mode_raises(self):
        model = parse_model(FAMILIES["client_server"])
        space = derive(model)
        with pytest.raises(SolverError):
            ctmc_from_statespace(space, generator="dense")

    def test_analyse_generator_matches_csr(self):
        from repro.pepa.measures import analyse

        model = parse_model(FAMILIES["client_server"])
        through_csr = analyse(model, solver="gmres").all_throughputs()
        through_desc = analyse(
            model, solver="gmres", generator="descriptor"
        ).all_throughputs()
        assert set(through_csr) == set(through_desc)
        for action, value in through_csr.items():
            assert abs(through_desc[action] - value) <= SOLVE_ATOL


class TestDescriptorSerialization:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_round_trip_stays_matrix_free(self, backends, family):
        _, desc = backends[family]
        payload = ctmc_to_payload(desc)
        assert payload["schema"] == CTMC_DESCRIPTOR_SCHEMA
        restored = ctmc_from_payload(payload)
        assert not restored.materialized
        assert isinstance(restored.generator, KroneckerDescriptor)
        assert restored.labels == desc.labels
        x = np.linspace(-1.0, 1.0, desc.n_states)
        np.testing.assert_array_equal(
            restored.generator.matvec(x), desc.generator.matvec(x)
        )
        for action, vec in desc.action_rates.items():
            np.testing.assert_array_equal(
                np.asarray(restored.action_rates[action]), np.asarray(vec)
            )
