"""Tests pinning the cached-hash optimisation's correctness.

The optimisation (repro.pepa.syntax._CachedHash) is only safe because
expressions are immutable; these tests pin the invariants it relies on
so a future refactor cannot silently break dictionary semantics.
"""

from hypothesis import given, settings

from repro.pepa import parse_expression
from repro.pepa.syntax import Cell, Choice, Const, Cooperation, Hiding, Prefix
from repro.pepa.rates import ActiveRate

from .test_parser_roundtrip import expressions  # reuse the AST strategy


class TestHashSemantics:
    def test_structurally_equal_nodes_hash_equal(self):
        a = parse_expression("(a, 1).P <x> Q/{y}")
        b = parse_expression("(a, 1).P <x> Q/{y}")
        assert a is not b
        assert a == b
        assert hash(a) == hash(b)

    def test_different_nodes_differ(self):
        pairs = [
            ("(a, 1).P", "(a, 2).P"),
            ("(a, 1).P", "(b, 1).P"),
            ("P <a> Q", "P <b> Q"),
            ("P <a> Q", "P || Q"),
            ("P/{a}", "P/{b}"),
            ("File[_]", "File[P]"),
        ]
        for left, right in pairs:
            assert parse_expression(left) != parse_expression(right)

    def test_hash_stable_across_calls(self):
        expr = parse_expression("(a, 1).(b, 2).P + (c, 3).Q")
        assert hash(expr) == hash(expr)

    def test_all_node_classes_use_cached_hash(self):
        nodes = [
            Prefix("a", ActiveRate(1.0), Const("P")),
            Choice(Const("P"), Const("Q")),
            Const("P"),
            Cooperation(Const("P"), Const("Q"), frozenset({"a"})),
            Hiding(Const("P"), frozenset({"a"})),
            Cell("File", None),
        ]
        for node in nodes:
            hash(node)
            assert hasattr(node, "_hash_cache")
            assert hash(node) == node._hash_cache

    @settings(max_examples=150, deadline=None)
    @given(expressions())
    def test_hash_consistent_with_equality(self, expr):
        """The contract: equal objects hash equal, and reconstruction
        from the printed form lands in the same dict bucket."""
        clone = parse_expression(str(expr))
        assert clone == expr
        assert hash(clone) == hash(expr)
        assert {expr: "v"}[clone] == "v"
