"""Property: printing and re-parsing any expression is the identity.

A hypothesis strategy generates random well-formed PEPA ASTs (including
cells, hiding, nested cooperations and weighted passive rates); the
parser must reproduce each tree exactly from its string rendering.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pepa import parse_expression
from repro.pepa.export import derivation_graph_dot
from repro.pepa.rates import ActiveRate, PassiveRate
from repro.pepa.syntax import Cell, Choice, Const, Cooperation, Hiding, Prefix

actions = st.sampled_from(["a", "b", "c", "go", "work"])
constants = st.sampled_from(["P", "Q", "Reader", "File"])
active_rates = st.floats(min_value=0.01, max_value=99.0,
                         allow_nan=False, allow_infinity=False).map(
    lambda v: ActiveRate(round(v, 4))
)
passive_rates = st.one_of(
    st.just(PassiveRate(1.0)),
    st.floats(min_value=0.5, max_value=9.0, allow_nan=False).map(
        lambda w: PassiveRate(round(w, 3))
    ),
)
rates = st.one_of(active_rates, passive_rates)


@st.composite
def sequentials(draw, depth=2):
    if depth == 0:
        return Const(draw(constants))
    kind = draw(st.sampled_from(["const", "prefix", "choice"]))
    if kind == "const":
        return Const(draw(constants))
    if kind == "prefix":
        return Prefix(draw(actions), draw(rates), draw(sequentials(depth - 1)))
    return Choice(draw(sequentials(depth - 1)), draw(sequentials(depth - 1)))


@st.composite
def expressions(draw, depth=2):
    if depth == 0:
        return draw(st.one_of(
            sequentials(1),
            st.builds(Cell, constants, st.none()),
        ))
    kind = draw(st.sampled_from(["seq", "coop", "hide", "cell"]))
    if kind == "seq":
        return draw(sequentials(depth))
    if kind == "coop":
        acts = frozenset(draw(st.sets(actions, max_size=2)))
        return Cooperation(draw(expressions(depth - 1)), draw(expressions(depth - 1)), acts)
    if kind == "hide":
        acts = frozenset(draw(st.sets(actions, min_size=1, max_size=2)))
        return Hiding(draw(expressions(depth - 1)), acts)
    content = draw(st.one_of(st.none(), sequentials(1)))
    return Cell(draw(constants), content)


SETTINGS = dict(max_examples=200, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@settings(**SETTINGS)
@given(expressions())
def test_print_parse_identity(expr):
    assert parse_expression(str(expr)) == expr


@settings(**SETTINGS)
@given(sequentials(3))
def test_sequential_print_parse_identity(expr):
    assert parse_expression(str(expr)) == expr


class TestDerivationGraphDot:
    def test_two_state_render(self, two_state_model):
        from repro.pepa import derive

        space = derive(two_state_model)
        dot = derivation_graph_dot(space)
        assert dot.startswith("digraph pepa")
        assert "switch_off" in dot and "switch_on" in dot
        assert "penwidth=2" in dot  # initial state highlighted

    def test_size_limit(self, file_model):
        from repro.pepa import derive

        space = derive(file_model)
        import pytest

        with pytest.raises(ValueError, match="refusing"):
            derivation_graph_dot(space, max_states=1)
