"""Unit tests for the static well-formedness checks."""

import pytest

from repro.exceptions import WellFormednessError
from repro.pepa import assert_well_formed, check_model, parse_model


class TestCleanModels:
    def test_file_model_is_clean(self, file_model):
        report = check_model(file_model)
        assert report.ok
        assert report.warnings == []

    def test_assert_passes(self, two_state_model):
        assert_well_formed(two_state_model)


class TestUndefinedConstants:
    def test_in_definition_body(self):
        model = parse_model("P = (a, 1).Missing; P")
        report = check_model(model)
        assert any("Missing" in e for e in report.errors)

    def test_in_system_equation(self):
        model = parse_model("P = (a, 1).P; P || Ghost")
        report = check_model(model)
        assert any("Ghost" in e for e in report.errors)

    def test_raise_if_failed(self):
        model = parse_model("P = (a, 1).Missing; P")
        with pytest.raises(WellFormednessError, match="Missing"):
            assert_well_formed(model)


class TestGuardedness:
    def test_direct_self_reference(self):
        model = parse_model("X = X; X")
        report = check_model(model)
        assert any("unguarded" in e for e in report.errors)

    def test_mutual_unguarded_cycle(self):
        model = parse_model("X = Y; Y = X; X")
        report = check_model(model)
        assert any("unguarded" in e for e in report.errors)

    def test_unguarded_through_choice(self):
        model = parse_model("X = (a, 1).X + X; X")
        report = check_model(model)
        assert any("unguarded" in e for e in report.errors)

    def test_guarded_recursion_is_fine(self):
        model = parse_model("X = (a, 1).X; X")
        assert check_model(model).ok

    def test_guarded_mutual_recursion_is_fine(self):
        model = parse_model("X = (a, 1).Y; Y = (b, 1).X; X")
        assert check_model(model).ok


class TestMixedChoice:
    def test_active_plus_passive_same_type(self):
        model = parse_model("P = (a, 1).P + (a, T).P; Q = (a, 1).Q; P <a> Q")
        report = check_model(model)
        assert any("active and passive" in e for e in report.errors)

    def test_active_plus_passive_different_types_ok(self):
        model = parse_model("P = (a, 1).P + (b, T).P; Q = (b, 1).Q; P <b> Q")
        assert check_model(model).ok


class TestCooperationSets:
    def test_foreign_action_warns(self):
        model = parse_model("P = (a, 1).P; Q = (b, 1).Q; P <c, a> Q")
        report = check_model(model)
        assert report.ok  # warning, not error
        assert any("'c'" in w for w in report.warnings)

    def test_one_sided_action_warns(self):
        model = parse_model("P = (a, 1).P; Q = (b, 1).Q; P <b> Q")
        report = check_model(model)
        assert any("'b'" in w for w in report.warnings)

    def test_wildcard_cooperation_never_warns(self):
        model = parse_model("P = (a, 1).P; Q = (a, T).Q; P <*> Q")
        report = check_model(model)
        assert report.warnings == []


class TestUnusedComponents:
    def test_unused_definition_warns(self):
        model = parse_model("P = (a, 1).P; Orphan = (b, 1).Orphan; P")
        report = check_model(model)
        assert any("Orphan" in w for w in report.warnings)

    def test_transitively_used_is_not_flagged(self):
        model = parse_model("P = (a, 1).Q; Q = (b, 1).P; P")
        report = check_model(model)
        assert report.warnings == []


class TestSequentialPositions:
    def test_concurrent_continuation_rejected(self):
        model = parse_model(
            """
            A = (x, 1).A;
            Par = A || A;
            P = (a, 1).Par;
            P
            """
        )
        report = check_model(model)
        assert any("concurrent" in e for e in report.errors)

    def test_sequential_alias_chain_accepted(self):
        model = parse_model("A = B; B = (x, 1).A; P = (a, 1).A; P")
        report = check_model(model)
        assert report.ok
