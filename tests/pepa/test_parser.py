"""Unit tests for the PEPA parser."""

import pytest

from repro.exceptions import PepaSyntaxError, WellFormednessError
from repro.pepa import (
    Cell,
    Choice,
    Const,
    Cooperation,
    Hiding,
    Prefix,
    parse_expression,
    parse_model,
    parse_rate,
)
from repro.pepa.rates import ActiveRate, PassiveRate


class TestExpressions:
    def test_constant(self):
        assert parse_expression("File") == Const("File")

    def test_prefix(self):
        expr = parse_expression("(read, 2.0).File")
        assert expr == Prefix("read", ActiveRate(2.0), Const("File"))

    def test_nested_prefix(self):
        expr = parse_expression("(a, 1).(b, 2).P")
        assert expr == Prefix("a", ActiveRate(1.0), Prefix("b", ActiveRate(2.0), Const("P")))

    def test_choice(self):
        expr = parse_expression("(a, 1).P + (b, 2).Q")
        assert isinstance(expr, Choice)
        assert expr.left.action == "a"
        assert expr.right.action == "b"

    def test_choice_is_left_associative(self):
        expr = parse_expression("(a,1).P + (b,1).P + (c,1).P")
        assert isinstance(expr, Choice) and isinstance(expr.left, Choice)

    def test_cooperation_with_set(self):
        expr = parse_expression("P <a, b> Q")
        assert expr == Cooperation(Const("P"), Const("Q"), frozenset({"a", "b"}))

    def test_empty_cooperation_forms(self):
        assert parse_expression("P || Q") == Cooperation(Const("P"), Const("Q"), frozenset())
        assert parse_expression("P <> Q") == Cooperation(Const("P"), Const("Q"), frozenset())

    def test_wildcard_cooperation(self):
        expr = parse_expression("P <*> Q")
        assert expr.actions == frozenset({"*"})

    def test_cooperation_left_associative(self):
        expr = parse_expression("P <a> Q <b> R")
        assert isinstance(expr, Cooperation)
        assert isinstance(expr.left, Cooperation)
        assert expr.actions == frozenset({"b"})

    def test_parenthesised_cooperation(self):
        expr = parse_expression("P <a> (Q <b> R)")
        assert isinstance(expr.right, Cooperation)
        assert expr.actions == frozenset({"a"})

    def test_hiding(self):
        expr = parse_expression("P/{a, b}")
        assert expr == Hiding(Const("P"), frozenset({"a", "b"}))

    def test_hiding_binds_tighter_than_cooperation(self):
        expr = parse_expression("P/{a} <b> Q")
        assert isinstance(expr, Cooperation)
        assert isinstance(expr.left, Hiding)

    def test_cells(self):
        assert parse_expression("File[_]") == Cell("File", None)
        assert parse_expression("File[]") == Cell("File", None)
        assert parse_expression("File[IM]") == Cell("File", Const("IM"))

    def test_cell_with_prefix_content(self):
        expr = parse_expression("File[(a, 1).P]")
        assert isinstance(expr, Cell) and isinstance(expr.content, Prefix)

    def test_prefix_continuation_parenthesised_choice(self):
        expr = parse_expression("(a, 1).((b, 1).P + (c, 1).Q)")
        assert isinstance(expr, Prefix) and isinstance(expr.continuation, Choice)

    def test_lowercase_component_rejected(self):
        with pytest.raises(PepaSyntaxError, match="upper-case"):
            parse_expression("file")

    def test_choice_of_composites_rejected(self):
        with pytest.raises(PepaSyntaxError, match="sequential"):
            parse_expression("(P <a> Q) + R")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PepaSyntaxError):
            parse_expression("P Q")


class TestRates:
    def test_literal(self):
        assert parse_rate("2.5") == ActiveRate(2.5)

    def test_passive_forms(self):
        assert parse_rate("T") == PassiveRate(1.0)
        assert parse_rate("infty") == PassiveRate(1.0)
        assert parse_rate("2*T") == PassiveRate(2.0)
        assert parse_rate("T*3") == PassiveRate(3.0)

    def test_arithmetic(self):
        assert parse_rate("1 + 2*3") == ActiveRate(7.0)
        assert parse_rate("(1 + 2)*3") == ActiveRate(9.0)
        assert parse_rate("10/4") == ActiveRate(2.5)

    def test_rate_constant_lookup(self):
        assert parse_rate("r*2", {"r": 1.5}) == ActiveRate(3.0)

    def test_undefined_rate_constant(self):
        with pytest.raises(PepaSyntaxError, match="undefined rate"):
            parse_rate("nope")

    def test_passive_addition_rejected(self):
        with pytest.raises(Exception):
            parse_rate("T + T")

    def test_zero_rate_rejected(self):
        with pytest.raises(Exception):
            parse_rate("0")

    def test_negative_rate_rejected(self):
        with pytest.raises(Exception):
            parse_rate("-1")


class TestModels:
    def test_full_model_roundtrip(self, file_model):
        assert "File" in file_model.environment.components
        assert file_model.environment.rates["r_r"] == 10.0
        assert isinstance(file_model.system, Cooperation)

    def test_rate_definitions_any_order(self):
        model = parse_model(
            """
            a = b * 2;
            b = 3;
            P = (go, a).P;
            P
            """
        )
        assert model.environment.rates["a"] == 6.0

    def test_cyclic_rate_definitions_rejected(self):
        with pytest.raises(WellFormednessError, match="cyclic"):
            parse_model("a = b; b = a; P = (go, a).P; P")

    def test_duplicate_component_rejected(self):
        with pytest.raises(WellFormednessError, match="twice"):
            parse_model("P = (a,1).P; P = (b,1).P; P")

    def test_duplicate_rate_rejected(self):
        with pytest.raises(PepaSyntaxError, match="twice"):
            parse_model("r = 1; r = 2; P = (a,r).P; P")

    def test_missing_system_equation(self):
        with pytest.raises(PepaSyntaxError, match="system equation"):
            parse_model("P = (a,1).P;")

    def test_two_system_equations_rejected(self):
        with pytest.raises(PepaSyntaxError, match="system equation"):
            parse_model("P = (a,1).P; P; P")

    def test_empty_model_rejected(self):
        with pytest.raises(PepaSyntaxError, match="empty"):
            parse_model("   ")

    def test_wildcard_resolved_in_system(self):
        model = parse_model(
            """
            P = (a, 1).P;
            Q = (a, T).Q;
            P <*> Q
            """
        )
        assert model.system.actions == frozenset({"a"})

    def test_comments_everywhere(self):
        model = parse_model(
            """
            // header comment
            r = 1.0; % percent comment
            P = (a, r).P; /* block */
            P
            """
        )
        assert model.environment.rates["r"] == 1.0

    def test_str_rendering_reparses(self, file_model):
        text = str(file_model)
        reparsed = parse_model(text)
        assert reparsed.environment.components.keys() == file_model.environment.components.keys()
