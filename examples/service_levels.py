"""Service-level analysis of the web model: beyond means.

The paper reports throughput and state probabilities; a design
environment gets asked sharper questions.  This example answers three
of them on the client/Tomcat model, using analysis machinery the
paper's Section 6 points to (ipc-style passage times, tuning guidance):

1. *What is the 95th percentile of the response time?* — passage-time
   quantiles through the absorbing-chain construction;
2. *Which rate should we tune to raise request throughput?* — the
   sensitivity profile (exact derivatives, not finite differences);
3. *How much server work does one request cost?* — accumulated rewards
   until absorption.

Run:  python examples/service_levels.py
"""

import numpy as np

from repro.ctmc.cumulative import reward_to_absorption
from repro.ctmc.density import passage_time_density, passage_time_moments, passage_time_quantile
from repro.pepa.ctmcgen import ctmc_of_model
from repro.pepa.sensitivity import sensitivity_profile
from repro.workloads import build_web_model

for cached in (False, True):
    label = "with resident-servlet cache" if cached else "baseline"
    model, _ = build_web_model(cached=cached)
    space, chain = ctmc_of_model(model)

    # response time: from the moment the client starts waiting until it
    # stops — source: first state whose label holds WaitForResponse
    # reached from GenerateRequest; targets: ProcessResponse states.
    wait = [i for i, l in enumerate(chain.labels) if "WaitForResponse" in l]
    done = [i for i, l in enumerate(chain.labels) if "ProcessResponse" in l]
    source = wait[0]

    mean, second = passage_time_moments(chain, source, done, 2)
    std = float(np.sqrt(second - mean**2))
    q50 = passage_time_quantile(chain, source, done, 0.50)
    q95 = passage_time_quantile(chain, source, done, 0.95)

    print("=" * 66)
    print(f"{label}: {chain.n_states} states")
    print(f"  response time: mean {mean:.3f} s, std {std:.3f} s")
    print(f"  median {q50:.3f} s, 95th percentile {q95:.3f} s")

    # density curve (printable sparkline)
    times = np.linspace(0.01, max(q95 * 1.5, 1.0), 30)
    density = passage_time_density(chain, source, done, times)
    peak = density.max() or 1.0
    bars = "".join("▁▂▃▄▅▆▇█"[min(7, int(8 * d / peak))] for d in density)
    print(f"  density 0..{times[-1]:.1f}s: {bars}")

    # which rate to tune for request throughput?
    profile = sensitivity_profile(space, chain, "request")
    top = list(profile.items())[:3]
    print("  tuning guide (d request-throughput / d rate-scale):")
    for action, value in top:
        print(f"    {action:>18}: {value:+.4f}")

    # server work per request: time spent in non-idle server states
    # until the client's wait ends
    busy = np.array([0.0 if "ServerIdle" in l else 1.0 for l in chain.labels])
    work = reward_to_absorption(chain, done, busy, source=source)
    print(f"  server busy-time per request: {work:.3f} s")

print("=" * 66)
print("the cache moves the whole response-time distribution left and")
print("shifts the tuning bottleneck from translate/compile to the")
print("client's own request rate.")
