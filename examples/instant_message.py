"""Figure 2 end-to-end: the instant-message diagram through the whole
Figure 4 tool chain, at the XMI level.

The script synthesises a Poseidon-style project file (structure +
layout), runs preprocess → MDR import → extract → solve → reflect →
postprocess, writes the reflected project next to the input, and prints
what each stage produced — a faithful walk along the boxes of the
paper's Figure 4.

Run:  python examples/instant_message.py
"""

from pathlib import Path

from repro.choreographer import Choreographer
from repro.uml.model import UmlModel
from repro.uml.xmi import add_synthetic_layout, extract_layout, preprocess, read_model, write_model
from repro.workloads import IM_RATES, build_instant_message_diagram

out_dir = Path(__file__).resolve().parent / "output"
out_dir.mkdir(exist_ok=True)

# ----------------------------------------------------------------------
# Stage 0: the "Poseidon project" — structure plus layout blocks
# ----------------------------------------------------------------------
model = UmlModel(name="instant-message-project")
model.add_activity_graph(build_instant_message_diagram())
poseidon_text = add_synthetic_layout(write_model(model))
project_path = out_dir / "instant_message.poseidon.xmi"
project_path.write_text(poseidon_text)
print(f"[0] Poseidon project written: {project_path}")
print(f"    layout blocks: {len(extract_layout(poseidon_text))}")

# ----------------------------------------------------------------------
# Stage 1: preprocessor strips layout so the document conforms to UML 1.4
# ----------------------------------------------------------------------
clean = preprocess(poseidon_text)
print(f"[1] preprocessed: {len(poseidon_text)} -> {len(clean)} chars "
      f"(layout stripped)")

# ----------------------------------------------------------------------
# Stages 2-5: MDR import, extraction, numerical solution, reflection
# ----------------------------------------------------------------------
platform = Choreographer()
reflected, activity_outcomes, _ = platform.process_xmi(poseidon_text, IM_RATES)
outcome = activity_outcomes[0]

print("[2] extracted PEPA net:")
for line in str(outcome.extraction.net).splitlines():
    print(f"    {line}")

print(f"[3] CTMC solved: {outcome.analysis.n_states} markings")
print("[4] result table (the .xmltable of Figure 4):")
for row in outcome.results:
    print(f"    {row.kind:9s} {row.subject:22s} {row.measure:10s} {row.value:.5f}")

reflected_path = out_dir / "instant_message.reflected.xmi"
reflected_path.write_text(reflected)
print(f"[5] reflected project written: {reflected_path} "
      f"(layout blocks preserved: {len(extract_layout(reflected))})")

# ----------------------------------------------------------------------
# Check: read the reflected file back and show the annotations
# ----------------------------------------------------------------------
restored = read_model(preprocess(reflected))
graph = restored.activity_graph("instant-message")
print()
print("activities as a Poseidon user would see them (Figure 7 analogue):")
for action in graph.actions():
    marker = " <<move>>" if action.is_move else ""
    print(f"  {action.name}{marker}: throughput = {action.tag('throughput')}")
