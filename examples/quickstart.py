"""Quickstart: the three levels of the library in one script.

1. a plain PEPA model, parsed and solved;
2. a PEPA net with a mobile token, parsed and solved;
3. a UML activity diagram with mobility, pushed through the full
   Choreographer pipeline (extract → solve → reflect).

Run:  python examples/quickstart.py
"""

from repro.choreographer import Choreographer
from repro.pepa import analyse, parse_model
from repro.pepanets import analyse_net, parse_net
from repro.uml.activity import ActivityGraph

# ----------------------------------------------------------------------
# 1. Plain PEPA: the paper's File protocol (Section 2.2)
# ----------------------------------------------------------------------
PEPA_SOURCE = """
r_o = 2.0; r_r = 10.0; r_w = 4.0; r_c = 1.0;
File = (openread, r_o).InStream + (openwrite, r_o).OutStream;
InStream = (read, r_r).InStream + (close, r_c).File;
OutStream = (write, r_w).OutStream + (close, r_c).File;
FileReader = (openread, T).Reading + (openwrite, T).Writing;
Reading = (read, T).Reading + (close, T).FileReader;
Writing = (write, T).Writing + (close, T).FileReader;
File <openread, openwrite, read, write, close> FileReader
"""

print("=" * 60)
print("1. PEPA: file protocol")
print("=" * 60)
result = analyse(parse_model(PEPA_SOURCE))
print(f"state space: {result.n_states} states")
for action, value in result.all_throughputs().items():
    print(f"  throughput({action}) = {value:.4f}/s")
print(f"  P(file open for reading) = {result.probability_of_local_state('InStream'):.4f}")

# ----------------------------------------------------------------------
# 2. PEPA net: a courier hopping between three sites
# ----------------------------------------------------------------------
NET_SOURCE = """
Courier = (deliver, 4.0).Courier + (hop, 2.0).Courier;

Edinburgh[Courier] = Courier[_];
Glasgow[_]         = Courier[_];
Stirling[_]        = Courier[_];

eg = (hop, 2.0) : Edinburgh -> Glasgow;
gs = (hop, 2.0) : Glasgow -> Stirling;
se = (hop, 2.0) : Stirling -> Edinburgh;
"""

print()
print("=" * 60)
print("2. PEPA net: mobile courier")
print("=" * 60)
net_result = analyse_net(parse_net(NET_SOURCE), reducible="error")
print(f"marking space: {net_result.n_states} markings")
print(f"  deliveries/s = {net_result.throughput('deliver'):.4f}")
print(f"  hops/s       = {net_result.throughput('hop'):.4f}")
for place, tokens in net_result.location_distribution().items():
    print(f"  mean couriers at {place}: {tokens:.4f}")

# ----------------------------------------------------------------------
# 3. Choreographer: a tiny mobility activity diagram
# ----------------------------------------------------------------------
print()
print("=" * 60)
print("3. Choreographer: UML -> PEPA net -> throughput annotations")
print("=" * 60)
g = ActivityGraph("hello-mobility")
init = g.add_initial()
compose = g.add_action("compose")
send = g.add_action("send", move=True)
deliver = g.add_action("deliver")
g.connect(init, compose)
g.connect(compose, send)
g.connect(send, deliver)
m0 = g.add_object("m: MSG", atloc="laptop")
m1 = g.add_object("m*: MSG", atloc="laptop")
m2 = g.add_object("m: MSG", atloc="phone")
g.connect(m0, compose)
g.connect(compose, m1)
g.connect(m1, send)
g.connect(send, m2)
g.connect(m2, deliver)

outcome = Choreographer().analyse_activity_diagram(
    g, {"compose": 2.0, "send": 5.0, "deliver": 10.0, "reset_m": 20.0}
)
print(outcome.report())
print()
print("annotated diagram tags:")
for action in g.actions():
    print(f"  {action.name}: throughput = {action.tag('throughput')}")
