"""Taming state-space explosion: the three tools this library ships.

The paper names "susceptibility to state-space explosion" as the price
of exact numerical solution.  This example measures the explosion on a
growing client/server system and then applies, in turn:

1. **population (counting) semantics** — exact aggregation of identical
   replicas (polynomial states instead of exponential);
2. **ordinary lumping** — exact aggregation of arbitrary symmetric
   structure;
3. **solver choice** — iterative methods when direct factorisation gets
   heavy.

Run:  python examples/scalability.py
"""

import time

from repro.ctmc import lump, steady_state, throughput
from repro.pepa import parse_expression, parse_model, population_ctmc
from repro.pepa.ctmcgen import ctmc_of_model
from repro.workloads import client_server_model, symmetric_branches_model

# ----------------------------------------------------------------------
# 1. The explosion, and the population cure
# ----------------------------------------------------------------------
print("=" * 68)
print("1. n clients sharing one server: unfolded vs population states")
print("=" * 68)
DEFS = parse_model(
    """
    Think = (think, 1.0).Ready;
    Ready = (request, 2.0).Wait;
    Wait  = (response, T).Think;
    Idle  = (request, T).Serve;
    Serve = (response, 5.0).Idle;
    Idle
    """
).environment

print(f"{'n':>4} {'unfolded':>10} {'population':>11} {'request/s':>10}")
for n in (4, 8, 10, 100):
    if n <= 10:
        space, chain = ctmc_of_model(client_server_model(n))
        unfolded = str(space.size)
        tp_unfolded = throughput(chain, "request")
    else:
        unfolded = f"~2^{n - 1}x{n + 2}"
        tp_unfolded = None
    states, pop_chain = population_ctmc(
        DEFS, "Think", n, parse_expression("Idle"), {"request", "response"}
    )
    tp = throughput(pop_chain, "request")
    if tp_unfolded is not None:
        assert abs(tp - tp_unfolded) < 1e-9, "population semantics must be exact"
    print(f"{n:>4} {unfolded:>10} {len(states):>11} {tp:>10.4f}")
print("(population throughput verified exact against the unfolded model)")

# ----------------------------------------------------------------------
# 2. Ordinary lumping on symmetric structure
# ----------------------------------------------------------------------
print()
print("=" * 68)
print("2. lumping a hub with n interchangeable branches")
print("=" * 68)
for n in (16, 256):
    _, chain = ctmc_of_model(symmetric_branches_model(n))
    lumped = lump(chain)
    pi = steady_state(lumped.chain)
    print(f"  n={n}: {chain.n_states} states -> {lumped.n_blocks} blocks; "
          f"P(hub) = {pi[lumped.block_of[chain.initial]]:.4f} "
          f"(exact: {3 / (3 + n):.4f})")

# ----------------------------------------------------------------------
# 3. Solver choice on the biggest unfolded instance
# ----------------------------------------------------------------------
print()
print("=" * 68)
print("3. solver timings on the unfolded 9-client chain")
print("=" * 68)
_, chain = ctmc_of_model(client_server_model(9))
print(f"chain: {chain.n_states} states")
reference = steady_state(chain, "direct")
for method in ("direct", "gmres", "bicgstab", "power"):
    start = time.perf_counter()
    pi = steady_state(chain, method)
    elapsed = time.perf_counter() - start
    error = abs(pi - reference).max()
    print(f"  {method:>9}: {elapsed * 1000:7.1f} ms   max|Δπ| = {error:.2e}")
