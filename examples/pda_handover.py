"""Figures 5-7: the PDA user on a moving train.

Reproduces the paper's worked example — throughput analysis of the
handover scenario — and then goes one step further than the paper:
a sweep over the handover success probability showing how the abort
and continue throughputs trade off (the paper fixes them equal).

Run:  python examples/pda_handover.py
"""

from repro.choreographer import Choreographer
from repro.workloads import PDA_RATES, build_pda_activity_diagram

platform = Choreographer()

# ----------------------------------------------------------------------
# The paper's configuration: success and failure equally likely
# ----------------------------------------------------------------------
outcome = platform.analyse_activity_diagram(build_pda_activity_diagram(), PDA_RATES)
print(outcome.report())
print()
abort = outcome.throughput_of("abort download")
cont = outcome.throughput_of("continue download")
print(f"handover outcomes: abort {abort:.5f}/s vs continue {cont:.5f}/s "
      f"(paper: equally likely -> equal)")

# ----------------------------------------------------------------------
# Extension: sweep the handover success probability
# ----------------------------------------------------------------------
print()
print("sweep: probability that the connection survives the handover")
print(f"{'p_success':>10} {'continue/s':>12} {'abort/s':>10} {'handover/s':>11}")
total_branch_rate = PDA_RATES["abort_download"] + PDA_RATES["continue_download"]
for p_success in (0.1, 0.25, 0.5, 0.75, 0.9):
    rates = dict(PDA_RATES)
    rates["continue_download"] = total_branch_rate * p_success
    rates["abort_download"] = total_branch_rate * (1.0 - p_success)
    swept = platform.analyse_activity_diagram(build_pda_activity_diagram(), rates)
    print(
        f"{p_success:>10.2f} "
        f"{swept.throughput_of('continue download'):>12.5f} "
        f"{swept.throughput_of('abort download'):>10.5f} "
        f"{swept.throughput_of('handover'):>11.5f}"
    )

print()
print("note: the handover rate itself is unchanged by the split — the choice")
print("between outcomes happens after the movement, as drawn in Figure 5.")
