"""Authoring a PEPA net directly in the textual syntax (Figure 3), then
analysing it three ways: exact numerical solution, stochastic
simulation with confidence intervals, and export to PRISM explicit
format for external model checking.

The model: two mobile agents patrol a small network of hosts, each
doing local work wherever it is; hosts have one visitor slot each, so
the agents implicitly queue for locations — a miniature of the
mobile-agent systems the paper's introduction motivates.

Run:  python examples/custom_net.py
"""

from pathlib import Path

from repro.ctmc.export import write_prism_files
from repro.pepanets import analyse_net, parse_net
from repro.sim import estimate_throughput, net_transition_fn, replicate

NET_SOURCE = """
// A mobile agent alternates local work with migration.
Agent = (work, 3.0).Agent + (migrate, 1.0).Agent;

// Three hosts; each can host one agent at a time (one cell each).
// Two agents start on HostA and HostB.
HostA[Agent] = Agent[_];
HostB[Agent] = Agent[_];
HostC[_]     = Agent[_];

// The migration topology is a ring: A -> B -> C -> A.
ab = (migrate, 1.0) : HostA -> HostB;
bc = (migrate, 1.0) : HostB -> HostC;
ca = (migrate, 1.0) : HostC -> HostA;
"""

net = parse_net(NET_SOURCE)
out_dir = Path(__file__).resolve().parent / "output"
out_dir.mkdir(exist_ok=True)

# ----------------------------------------------------------------------
# 1. Exact numerical solution
# ----------------------------------------------------------------------
result = analyse_net(net, reducible="error")
print(f"marking space: {result.n_states} markings")
print(f"exact work throughput:      {result.throughput('work'):.4f}/s")
print(f"exact migration throughput: {result.throughput('migrate'):.4f}/s")
print("where the agents are (mean occupancy):")
for place, tokens in result.location_distribution().items():
    print(f"  {place}: {tokens:.4f}")
print("note: a full host blocks incoming migration (no vacant cell), so at")
print("any moment only the agent behind the hole can move — the migration")
print("throughput equals one agent's rate, not two.")

# ----------------------------------------------------------------------
# 2. Stochastic simulation with confidence intervals
# ----------------------------------------------------------------------
print()
results = replicate(
    net_transition_fn(net), net.initial_marking(), t_end=400.0,
    n_replications=8, warmup=20.0, base_seed=2024,
)
for action in ("work", "migrate"):
    estimate = estimate_throughput(results, action)
    exact = result.throughput(action)
    mark = "covers exact" if estimate.covers(exact) else "MISSES exact"
    print(f"simulated {action}: {estimate}   [{mark} {exact:.4f}]")

# ----------------------------------------------------------------------
# 3. Export for PRISM (the integration surface of the paper's Section 6)
# ----------------------------------------------------------------------
paths = write_prism_files(result.chain, out_dir / "agents")
print()
print("PRISM explicit-format export:")
for path in paths:
    print(f"  {path} ({path.stat().st_size} bytes)")
