"""Figures 8/9 and the paper's closing experiment: the Tomcat
resident-servlet optimisation, "quantified ... from the user's point of
view in terms of the reduction in the delay spent waiting for the
response from the server".

The script:

1. analyses the client and server state diagrams (steady-state
   probabilities reflected onto states, as Choreographer does);
2. solves the composed model with and without the optimisation and
   reports the client's mean response-waiting delay per request;
3. sweeps the compile rate to show how the optimisation's payoff grows
   with compilation cost.

Run:  python examples/tomcat_optimisation.py
"""

import numpy as np

from repro.choreographer import Choreographer
from repro.ctmc.passage import mean_time_per_visit
from repro.pepa.measures import analyse
from repro.workloads import (
    TOMCAT_RATES,
    build_client_statechart,
    build_server_statechart,
    build_web_model,
)

platform = Choreographer()

# ----------------------------------------------------------------------
# 1. The state diagrams of Figures 8 and 9 with reflected probabilities
# ----------------------------------------------------------------------
outcome = platform.analyse_state_diagrams(
    [build_client_statechart(), build_server_statechart(cached=False)]
)
print(outcome.report())


def waiting_delay(cached: bool, rates: dict | None = None) -> tuple[float, float]:
    """(mean client waiting delay per request, request throughput)."""
    model, _ = build_web_model(cached=cached, rates=rates)
    analysis = analyse(model)
    wait_states = [
        i for i, label in enumerate(analysis.chain.labels) if "WaitForResponse" in label
    ]
    delay = mean_time_per_visit(analysis.chain, wait_states, analysis.pi)
    return delay, analysis.throughput("request")


# ----------------------------------------------------------------------
# 2. With and without the resident-servlet optimisation
# ----------------------------------------------------------------------
print()
print("=" * 64)
print("servlet-cache experiment (the paper's closing measurement)")
print("=" * 64)
base_delay, base_tp = waiting_delay(cached=False)
opt_delay, opt_tp = waiting_delay(cached=True)
print(f"without optimisation: waiting delay {base_delay:.4f} s/request, "
      f"throughput {base_tp:.4f} req/s")
print(f"with optimisation:    waiting delay {opt_delay:.4f} s/request, "
      f"throughput {opt_tp:.4f} req/s")
print(f"reduction in waiting delay: {base_delay / opt_delay:.1f}x")

# ----------------------------------------------------------------------
# 3. Payoff grows with compilation cost
# ----------------------------------------------------------------------
print()
print("sweep: compile rate (slower compile -> bigger payoff)")
print(f"{'compile rate':>12} {'baseline delay':>15} {'cached delay':>13} {'reduction':>10}")
for compile_rate in (4.0, 2.0, 1.0, 0.5, 0.25):
    override = {"compile": compile_rate}
    d0, _ = waiting_delay(cached=False, rates=override)
    d1, _ = waiting_delay(cached=True, rates=override)
    print(f"{compile_rate:>12.2f} {d0:>15.4f} {d1:>13.4f} {d0 / d1:>9.1f}x")

# ----------------------------------------------------------------------
# Analytic cross-check of the baseline delay
# ----------------------------------------------------------------------
r = TOMCAT_RATES
analytic = 1 / r["locatejsp"] + 1 / r["translate"] + 1 / r["compile"] \
    + 1 / r["execute"] + 1 / r["response"]
print()
print(f"analytic baseline delay (sum of stage means): {analytic:.4f} s "
      f"-- measured {base_delay:.4f} s")
assert np.isclose(analytic, base_delay, rtol=1e-6), "model vs closed form"
